//! Data-parallel helpers for the optimistic validation phase.
//!
//! Appendix G's first step validates every transaction of an epoch
//! *independently of all other transactions, that is, in parallel*. The
//! helper here is a chunked parallel map over scoped OS threads: the input is
//! split into contiguous chunks, one per worker, each worker writes its
//! results into its own slice of the output (no shared mutable state, no
//! locks), and `std::thread::scope` joins everything before returning — the
//! pattern the HPC guides recommend for embarrassingly parallel loops when a
//! work-stealing pool is not warranted.
//!
//! The implementation is hosted in `setchain_crypto::parallel` — the root of
//! the crate graph — so the Setchain servers' batched element and signature
//! validation can share it without a dependency cycle (`setchain-exec`
//! depends on `setchain`, not the other way around). This module re-exports
//! it under the historical `setchain_exec::parallel_map` path and keeps the
//! behavioural tests close to the execution layer that relies on them.

pub use setchain_crypto::parallel::{default_threads, parallel_map, MIN_PARALLEL_LEN};

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matches_sequential_map_on_small_input() {
        let items: Vec<u64> = (0..100).collect();
        let par = parallel_map(&items, 8, |x| x * 3);
        let seq: Vec<u64> = items.iter().map(|x| x * 3).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn matches_sequential_map_on_large_input() {
        let items: Vec<u64> = (0..10_000).collect();
        let par = parallel_map(&items, 4, |x| x.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let seq: Vec<u64> = items
            .iter()
            .map(|x| x.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn single_thread_and_empty_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 8, |x| *x).is_empty());
        let one = vec![5u32];
        assert_eq!(parallel_map(&one, 1, |x| x + 1), vec![6]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items: Vec<u32> = (0..300).collect();
        let par = parallel_map(&items, 1024, |x| x + 1);
        assert_eq!(par.len(), 300);
        assert_eq!(par[299], 300);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn threshold_is_exported() {
        // The re-exported threshold must still gate the sequential fallback.
        let just_below: Vec<u32> = (0..MIN_PARALLEL_LEN as u32 - 1).collect();
        assert_eq!(
            parallel_map(&just_below, 8, |x| x + 1).len(),
            just_below.len()
        );
    }

    proptest! {
        #[test]
        fn prop_parallel_equals_sequential(
            items in proptest::collection::vec(any::<u32>(), 0..2_000),
            threads in 1usize..16,
        ) {
            let par = parallel_map(&items, threads, |x| (*x as u64) * 7 + 1);
            let seq: Vec<u64> = items.iter().map(|x| (*x as u64) * 7 + 1).collect();
            prop_assert_eq!(par, seq);
        }
    }
}
