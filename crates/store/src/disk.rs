//! The persistent [`StateStore`] backend: an append-only segment log plus a
//! checkpointed element → epoch index.
//!
//! # Layout
//!
//! A store directory holds:
//!
//! - `seg-<start-epoch>.log` — segments of the epoch log. Each segment is a
//!   concatenation of frames (see [`crate::frame`]), one per epoch, strictly
//!   ordered; the file name records the first epoch it holds. A new segment
//!   starts once the active one exceeds the configured byte budget.
//! - `index.ckpt` — a periodic checkpoint of the element → epoch index
//!   (written atomically via a temp-file rename), so recovery of a long log
//!   can skip re-indexing the epochs the checkpoint already covers.
//!
//! # Recovery protocol
//!
//! [`DiskStore::open`] scans segments in epoch order, checksum-verifying
//! every frame and requiring exactly sequential epoch numbers. At the first
//! torn (incomplete) or corrupt frame it **truncates** that segment to the
//! last valid frame and deletes every later segment — the log's validity is
//! prefix-closed, so nothing after a bad frame can be trusted. A checkpoint
//! that claims more epochs than the recovered log is stale (the log was
//! truncated) and is discarded; the index is then rebuilt from the segment
//! scan alone. Either way, open ends with `tip()` equal to the last
//! durable, verifiable epoch, which is exactly the state a restarted
//! Setchain server replays.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::frame::{decode_frame, encode_frame, fnv64, FrameError};
use crate::{EpochRecord, StateStore, StoreStats};

/// Checkpoint magic: `"SIX1"` little-endian.
const CKPT_MAGIC: u32 = 0x3158_4953;
const CKPT_NAME: &str = "index.ckpt";
const CKPT_TMP_NAME: &str = "index.ckpt.tmp";

/// Where a stored epoch's frame lives.
#[derive(Clone, Copy, Debug)]
struct FrameLoc {
    /// Index into `DiskStore::segments`.
    segment: usize,
    /// Byte offset of the frame within its segment.
    offset: u64,
    /// Total frame length in bytes.
    len: u64,
}

/// One log segment.
#[derive(Clone, Debug)]
struct Segment {
    path: PathBuf,
    /// First epoch stored in this segment.
    start_epoch: u64,
    /// Current byte length.
    bytes: u64,
}

/// The persistent segment-log backend. See the module docs for the layout
/// and recovery protocol.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    segment_bytes: u64,
    checkpoint_every: u64,
    segments: Vec<Segment>,
    /// `frames[e - 1]` locates epoch `e`.
    frames: Vec<FrameLoc>,
    index: HashMap<u64, u64>,
    /// Open handle to the last segment, positioned at its end.
    active: Option<File>,
    appends_since_checkpoint: u64,
}

impl DiskStore {
    /// Opens (creating if necessary) the store in `dir`, running the
    /// recovery scan described in the module docs. `segment_bytes` is the
    /// rotation budget; `checkpoint_every` is the number of appends between
    /// index checkpoints (0 disables checkpointing).
    pub fn open(
        dir: impl AsRef<Path>,
        segment_bytes: u64,
        checkpoint_every: u64,
    ) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut segments = list_segments(&dir)?;
        let checkpoint = load_checkpoint(&dir.join(CKPT_NAME));
        let ckpt_tip = checkpoint.as_ref().map(|(tip, _)| *tip).unwrap_or(0);
        let mut scan = scan_segments(&mut segments, ckpt_tip)?;
        let index = match checkpoint {
            // The checkpoint covers a prefix of the recovered log: seed the
            // index from it, with the scan having indexed the rest.
            Some((tip, mut map)) if tip <= scan.tip => {
                map.extend(scan.index.drain());
                map
            }
            // Stale (claims epochs the log lost): discard it and rebuild
            // the index purely from the segments.
            Some(_) => {
                let _ = fs::remove_file(dir.join(CKPT_NAME));
                scan = scan_segments(&mut segments, 0)?;
                scan.index
            }
            // No checkpoint: the scan indexed everything already.
            None => scan.index,
        };
        let active = match segments.last() {
            Some(seg) => Some(OpenOptions::new().append(true).open(&seg.path)?),
            None => None,
        };
        Ok(DiskStore {
            dir,
            segment_bytes: segment_bytes.max(1),
            checkpoint_every,
            segments,
            frames: scan.frames,
            index,
            active,
            appends_since_checkpoint: 0,
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn segment_path(&self, start_epoch: u64) -> PathBuf {
        self.dir.join(format!("seg-{start_epoch:012}.log"))
    }

    /// Ensures an active segment with budget left exists for the next
    /// epoch, rotating if necessary.
    fn roll_segment(&mut self, next_epoch: u64) -> io::Result<()> {
        let needs_new = match self.segments.last() {
            Some(seg) => seg.bytes >= self.segment_bytes,
            None => true,
        };
        if needs_new {
            let path = self.segment_path(next_epoch);
            self.active = Some(
                OpenOptions::new()
                    .create_new(true)
                    .append(true)
                    .open(&path)?,
            );
            self.segments.push(Segment {
                path,
                start_epoch: next_epoch,
                bytes: 0,
            });
        }
        Ok(())
    }

    fn write_checkpoint(&self) -> io::Result<()> {
        let mut body = Vec::with_capacity(16 + self.index.len() * 16);
        body.extend_from_slice(&self.tip().to_le_bytes());
        body.extend_from_slice(&(self.index.len() as u64).to_le_bytes());
        // Sorted for deterministic bytes (HashMap order is seeded).
        let mut pairs: Vec<(u64, u64)> = self.index.iter().map(|(k, v)| (*k, *v)).collect();
        pairs.sort_unstable();
        for (id, epoch) in pairs {
            body.extend_from_slice(&id.to_le_bytes());
            body.extend_from_slice(&epoch.to_le_bytes());
        }
        let tmp = self.dir.join(CKPT_TMP_NAME);
        let mut file = File::create(&tmp)?;
        file.write_all(&CKPT_MAGIC.to_le_bytes())?;
        file.write_all(&body)?;
        file.write_all(&fnv64(&[&body]).to_le_bytes())?;
        file.flush()?;
        fs::rename(&tmp, self.dir.join(CKPT_NAME))
    }
}

impl StateStore for DiskStore {
    fn append_epoch(&mut self, record: &EpochRecord) -> io::Result<()> {
        if record.epoch != self.tip() + 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "epoch {} out of order (tip is {})",
                    record.epoch,
                    self.tip()
                ),
            ));
        }
        self.roll_segment(record.epoch)?;
        let frame = encode_frame(record);
        let file = self.active.as_mut().expect("roll_segment opened a file");
        file.write_all(&frame)?;
        file.flush()?;
        let seg_idx = self.segments.len() - 1;
        let seg = &mut self.segments[seg_idx];
        self.frames.push(FrameLoc {
            segment: seg_idx,
            offset: seg.bytes,
            len: frame.len() as u64,
        });
        seg.bytes += frame.len() as u64;
        for id in record.element_ids() {
            self.index.insert(id, record.epoch);
        }
        self.appends_since_checkpoint += 1;
        if self.checkpoint_every > 0 && self.appends_since_checkpoint >= self.checkpoint_every {
            self.write_checkpoint()?;
            self.appends_since_checkpoint = 0;
        }
        Ok(())
    }

    fn tip(&self) -> u64 {
        self.frames.len() as u64
    }

    fn load_epoch(&self, epoch: u64) -> io::Result<Option<EpochRecord>> {
        if epoch == 0 || epoch > self.tip() {
            return Ok(None);
        }
        let loc = self.frames[(epoch - 1) as usize];
        let mut file = File::open(&self.segments[loc.segment].path)?;
        file.seek(SeekFrom::Start(loc.offset))?;
        let mut buf = vec![0u8; loc.len as usize];
        file.read_exact(&mut buf)?;
        let (record, _) = decode_frame(&buf).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("stored epoch {epoch} unreadable: {e}"),
            )
        })?;
        if record.epoch != epoch {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("stored frame claims epoch {}, wanted {epoch}", record.epoch),
            ));
        }
        Ok(Some(record))
    }

    fn epoch_of(&self, element_id: u64) -> Option<u64> {
        self.index.get(&element_id).copied()
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            epochs: self.tip(),
            bytes: self.segments.iter().map(|s| s.bytes).sum(),
            segments: self.segments.len() as u64,
            indexed_elements: self.index.len() as u64,
        }
    }
}

/// What a recovery scan of the segments produced.
struct ScanResult {
    tip: u64,
    frames: Vec<FrameLoc>,
    /// Element index for the epochs the scan indexed (those above the
    /// checkpoint tip it was given).
    index: HashMap<u64, u64>,
}

/// Lists `seg-*.log` files sorted by their start epoch.
fn list_segments(dir: &Path) -> io::Result<Vec<Segment>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(start) = name
            .strip_prefix("seg-")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        segments.push(Segment {
            path: entry.path(),
            start_epoch: start,
            bytes: entry.metadata()?.len(),
        });
    }
    segments.sort_by_key(|s| s.start_epoch);
    Ok(segments)
}

/// Scans segments in order, truncating at the first torn or corrupt frame
/// and deleting everything after it. Epochs at or below `skip_index_below`
/// are not element-indexed (a checkpoint is assumed to cover them).
fn scan_segments(segments: &mut Vec<Segment>, skip_index_below: u64) -> io::Result<ScanResult> {
    let mut frames = Vec::new();
    let mut index = HashMap::new();
    let mut expect: u64 = 1;
    let mut keep = segments.len();
    for (seg_idx, seg) in segments.iter_mut().enumerate() {
        // A segment whose name disagrees with the next expected epoch means
        // a gap (lost file) — nothing after it can be sequenced.
        if seg.start_epoch != expect {
            keep = seg_idx;
            break;
        }
        let data = fs::read(&seg.path)?;
        let mut offset = 0usize;
        let mut valid_until = 0usize;
        let mut clean = true;
        while offset < data.len() {
            match decode_frame(&data[offset..]) {
                Ok((record, len)) if record.epoch == expect => {
                    frames.push(FrameLoc {
                        segment: seg_idx,
                        offset: offset as u64,
                        len: len as u64,
                    });
                    if record.epoch > skip_index_below {
                        for id in record.element_ids() {
                            index.insert(id, record.epoch);
                        }
                    }
                    expect += 1;
                    offset += len;
                    valid_until = offset;
                }
                // Out-of-sequence epoch, torn tail, or corruption: the
                // valid prefix ends here.
                Ok(_) | Err(FrameError::Incomplete) | Err(FrameError::Corrupt(_)) => {
                    clean = false;
                    break;
                }
            }
        }
        if !clean {
            if valid_until == 0 {
                // No valid frame in this segment at all: drop the file.
                fs::remove_file(&seg.path)?;
                keep = seg_idx;
            } else {
                let file = OpenOptions::new().write(true).open(&seg.path)?;
                file.set_len(valid_until as u64)?;
                seg.bytes = valid_until as u64;
                keep = seg_idx + 1;
            }
            break;
        }
        seg.bytes = data.len() as u64;
    }
    for seg in segments.drain(keep..) {
        let _ = fs::remove_file(&seg.path);
    }
    Ok(ScanResult {
        tip: expect - 1,
        frames,
        index,
    })
}

/// Reads the index checkpoint, returning its tip and element map. Any
/// structural or checksum problem reads as "no checkpoint".
fn load_checkpoint(path: &Path) -> Option<(u64, HashMap<u64, u64>)> {
    let data = fs::read(path).ok()?;
    if data.len() < 4 + 16 + 8 {
        return None;
    }
    if u32::from_le_bytes(data[..4].try_into().ok()?) != CKPT_MAGIC {
        return None;
    }
    let body = &data[4..data.len() - 8];
    let stored = u64::from_le_bytes(data[data.len() - 8..].try_into().ok()?);
    if fnv64(&[body]) != stored {
        return None;
    }
    let tip = u64::from_le_bytes(body[..8].try_into().ok()?);
    let count = u64::from_le_bytes(body[8..16].try_into().ok()?) as usize;
    let pairs = &body[16..];
    if pairs.len() != count.checked_mul(16)? {
        return None;
    }
    let mut map = HashMap::with_capacity(count);
    for pair in pairs.chunks_exact(16) {
        let id = u64::from_le_bytes(pair[..8].try_into().ok()?);
        let epoch = u64::from_le_bytes(pair[8..].try_into().ok()?);
        map.insert(id, epoch);
    }
    Some((tip, map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{element_id, record};
    use crate::MemStore;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(label: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let base = option_env!("CARGO_TARGET_TMPDIR")
            .map(PathBuf::from)
            .unwrap_or_else(std::env::temp_dir);
        base.join(format!(
            "setchain-store-{label}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ))
    }

    struct TempDir(PathBuf);
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn open(dir: &Path) -> DiskStore {
        DiskStore::open(dir, 1 << 20, 0).expect("open store")
    }

    #[test]
    fn reopen_recovers_everything() {
        let tmp = TempDir(temp_dir("reopen"));
        {
            let mut store = open(&tmp.0);
            for e in 1..=10u64 {
                store.append_epoch(&record(e, 5, 3)).unwrap();
            }
            assert_eq!(store.tip(), 10);
        }
        let store = open(&tmp.0);
        assert_eq!(store.tip(), 10);
        for e in 1..=10u64 {
            assert_eq!(store.load_epoch(e).unwrap(), Some(record(e, 5, 3)));
            assert_eq!(store.epoch_of(element_id(e, 4)), Some(e));
        }
        assert_eq!(store.load_epoch(11).unwrap(), None);
        assert_eq!(store.epoch_of(42), None);
        assert_eq!(store.stats().indexed_elements, 50);
    }

    #[test]
    fn rotation_splits_segments_and_survives_reopen() {
        let tmp = TempDir(temp_dir("rotate"));
        {
            // Tiny budget: every epoch rotates into its own segment.
            let mut store = DiskStore::open(&tmp.0, 1, 0).unwrap();
            for e in 1..=6u64 {
                store.append_epoch(&record(e, 2, 2)).unwrap();
            }
            assert_eq!(store.stats().segments, 6);
        }
        let store = DiskStore::open(&tmp.0, 1, 0).unwrap();
        assert_eq!(store.tip(), 6);
        assert_eq!(store.stats().segments, 6);
        for e in 1..=6u64 {
            assert_eq!(store.load_epoch(e).unwrap(), Some(record(e, 2, 2)));
        }
    }

    #[test]
    fn torn_tail_truncates_to_the_valid_prefix() {
        let tmp = TempDir(temp_dir("torn"));
        let seg_path;
        {
            let mut store = open(&tmp.0);
            for e in 1..=4u64 {
                store.append_epoch(&record(e, 3, 2)).unwrap();
            }
            seg_path = store.segments[0].path.clone();
        }
        // Simulate a crash mid-append: half a frame at the tail.
        let half: Vec<u8> = encode_frame(&record(5, 3, 2))[..20].to_vec();
        OpenOptions::new()
            .append(true)
            .open(&seg_path)
            .unwrap()
            .write_all(&half)
            .unwrap();
        let mut store = open(&tmp.0);
        assert_eq!(store.tip(), 4, "torn tail dropped, prefix kept");
        for e in 1..=4u64 {
            assert_eq!(store.load_epoch(e).unwrap(), Some(record(e, 3, 2)));
        }
        // The store keeps appending cleanly after recovery.
        store.append_epoch(&record(5, 1, 2)).unwrap();
        assert_eq!(store.tip(), 5);
        drop(store);
        assert_eq!(open(&tmp.0).tip(), 5);
    }

    #[test]
    fn corrupt_byte_cuts_the_log_there() {
        let tmp = TempDir(temp_dir("corrupt"));
        let (seg_path, second_offset);
        {
            let mut store = open(&tmp.0);
            for e in 1..=5u64 {
                store.append_epoch(&record(e, 3, 2)).unwrap();
            }
            seg_path = store.segments[0].path.clone();
            second_offset = store.frames[1].offset;
        }
        // Flip a byte inside epoch 2's frame: epochs 2..=5 become
        // untrustworthy, epoch 1 survives.
        let mut data = fs::read(&seg_path).unwrap();
        data[second_offset as usize + 30] ^= 0xFF;
        fs::write(&seg_path, &data).unwrap();
        let store = open(&tmp.0);
        assert_eq!(store.tip(), 1);
        assert_eq!(store.load_epoch(1).unwrap(), Some(record(1, 3, 2)));
        assert_eq!(store.epoch_of(element_id(2, 0)), None);
    }

    #[test]
    fn fully_corrupt_first_segment_recovers_empty() {
        let tmp = TempDir(temp_dir("allbad"));
        {
            let mut store = open(&tmp.0);
            store.append_epoch(&record(1, 2, 2)).unwrap();
        }
        let seg = tmp.0.join("seg-000000000001.log");
        fs::write(&seg, b"garbage that is not a frame").unwrap();
        let mut store = open(&tmp.0);
        assert_eq!(store.tip(), 0);
        assert!(!seg.exists(), "unusable segment removed");
        store.append_epoch(&record(1, 2, 2)).unwrap();
        assert_eq!(store.tip(), 1);
    }

    #[test]
    fn missing_middle_segment_drops_later_ones() {
        let tmp = TempDir(temp_dir("gap"));
        {
            let mut store = DiskStore::open(&tmp.0, 1, 0).unwrap();
            for e in 1..=4u64 {
                store.append_epoch(&record(e, 2, 2)).unwrap();
            }
        }
        fs::remove_file(tmp.0.join("seg-000000000002.log")).unwrap();
        let store = DiskStore::open(&tmp.0, 1, 0).unwrap();
        assert_eq!(store.tip(), 1, "epochs after the gap are unreachable");
        assert_eq!(store.stats().segments, 1);
    }

    #[test]
    fn checkpoint_accelerated_reopen_matches_full_rebuild() {
        let tmp = TempDir(temp_dir("ckpt"));
        {
            let mut store = DiskStore::open(&tmp.0, 1 << 20, 4).unwrap();
            for e in 1..=10u64 {
                store.append_epoch(&record(e, 3, 2)).unwrap();
            }
        }
        assert!(
            tmp.0.join(CKPT_NAME).exists(),
            "periodic checkpoint written"
        );
        let with_ckpt = DiskStore::open(&tmp.0, 1 << 20, 4).unwrap();
        let no_ckpt = {
            fs::remove_file(tmp.0.join(CKPT_NAME)).unwrap();
            DiskStore::open(&tmp.0, 1 << 20, 0).unwrap()
        };
        assert_eq!(with_ckpt.tip(), no_ckpt.tip());
        for e in 1..=10u64 {
            for i in 0..3usize {
                assert_eq!(
                    with_ckpt.epoch_of(element_id(e, i)),
                    Some(e),
                    "checkpointed index agrees"
                );
                assert_eq!(no_ckpt.epoch_of(element_id(e, i)), Some(e));
            }
        }
    }

    #[test]
    fn stale_checkpoint_is_discarded() {
        let tmp = TempDir(temp_dir("stale"));
        {
            let mut store = DiskStore::open(&tmp.0, 1 << 20, 2).unwrap();
            for e in 1..=8u64 {
                store.append_epoch(&record(e, 3, 2)).unwrap();
            }
        }
        // Truncate the log to epoch 1 while the checkpoint claims 8.
        let seg = tmp.0.join("seg-000000000001.log");
        let first_len = {
            let data = fs::read(&seg).unwrap();
            decode_frame(&data).unwrap().1
        };
        OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(first_len as u64)
            .unwrap();
        let store = DiskStore::open(&tmp.0, 1 << 20, 2).unwrap();
        assert_eq!(store.tip(), 1);
        assert_eq!(store.epoch_of(element_id(1, 0)), Some(1));
        assert_eq!(
            store.epoch_of(element_id(5, 0)),
            None,
            "stale checkpoint entries gone"
        );
        assert!(!tmp.0.join(CKPT_NAME).exists(), "stale checkpoint removed");
    }

    #[test]
    fn garbage_checkpoint_is_ignored() {
        let tmp = TempDir(temp_dir("badckpt"));
        {
            let mut store = open(&tmp.0);
            for e in 1..=3u64 {
                store.append_epoch(&record(e, 2, 2)).unwrap();
            }
        }
        fs::write(tmp.0.join(CKPT_NAME), b"not a checkpoint").unwrap();
        let store = open(&tmp.0);
        assert_eq!(store.tip(), 3);
        assert_eq!(store.epoch_of(element_id(3, 1)), Some(3));
    }

    #[test]
    fn disk_matches_the_mem_oracle() {
        let tmp = TempDir(temp_dir("diff"));
        let mut disk = DiskStore::open(&tmp.0, 256, 3).unwrap();
        let mut mem = MemStore::new();
        for e in 1..=20u64 {
            let rec = record(e, (e % 7) as usize, 2 + (e % 2) as usize);
            disk.append_epoch(&rec).unwrap();
            mem.append_epoch(&rec).unwrap();
        }
        assert_eq!(disk.tip(), mem.tip());
        assert_eq!(disk.stats().indexed_elements, mem.stats().indexed_elements);
        for e in 0..=21u64 {
            assert_eq!(disk.load_epoch(e).unwrap(), mem.load_epoch(e).unwrap());
        }
        for e in 1..=20u64 {
            for i in 0..7usize {
                assert_eq!(
                    disk.epoch_of(element_id(e, i)),
                    mem.epoch_of(element_id(e, i))
                );
            }
        }
    }
}
