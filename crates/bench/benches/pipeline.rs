//! Criterion bench over the end-to-end add→epoch pipeline: committed
//! elements per wall-clock second through vanilla, compresschain and
//! hashchain deployments. The same harness backs the `pipeline` binary that
//! writes `BENCH_pr2.json`; this bench is the interactive view of it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use setchain_bench::pipeline::{run_pipeline, PipelineConfig};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for (algorithm, batch) in setchain_bench::pipeline::grid() {
        let config = PipelineConfig::quick(algorithm, batch);
        // One warm run to learn the committed-element count, declared as the
        // group throughput so the report shows adds/sec directly.
        let probe = run_pipeline(&config);
        group.throughput(Throughput::Elements(probe.committed.max(1)));
        group.bench_with_input(
            BenchmarkId::from_parameter(config.label()),
            &config,
            |b, config| {
                b.iter(|| {
                    let result = run_pipeline(config);
                    assert!(result.committed > 0, "{} committed nothing", config.label());
                    result.committed
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
