//! Algorithm **Hashchain**: the paper's primary contribution.
//!
//! Batches are hashed; only the fixed-size (139-byte) signed hash-batch
//! `⟨h, s, v⟩` is appended to the ledger, so consensus bandwidth no longer
//! scales with batch contents. The price is *hash reversal*: hashes are
//! irreversible, so a server that sees a hash-batch it does not know asks the
//! signer for the original batch (`Request_batch`). A hash consolidates into
//! an epoch only once hash-batches from `f + 1` distinct servers are on the
//! ledger — at least one of them is correct and can serve the batch.
//!
//! The block-processing loop of the paper's pseudocode performs a blocking
//! `Request_batch` with a bounded wait. In this event-driven implementation
//! the same semantics are obtained with a queue: transactions of finalized
//! blocks are processed strictly in ledger order, and processing pauses while
//! a batch request is outstanding, resuming when the response arrives or the
//! request times out (in which case the hash-batch is skipped, exactly like
//! the pseudocode's `continue`). This keeps epoch numbering identical on all
//! correct servers.
//!
//! The "Hashchain light" ablation of Fig. 2 (left) disables hash reversal and
//! hash-batch validation (all servers assumed correct); batch availability is
//! then modelled by a [`SharedBatchRegistry`] standing in for out-of-band
//! data dissemination.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;
use setchain_crypto::{Digest512, KeyPair, KeyRegistry, ProcessId, Sha512};
use setchain_ledger::{Application, Block};
use setchain_simnet::{SimTime, TimerToken};

use crate::app::SetchainApp;
use crate::byzantine::ServerByzMode;
use crate::collector::{Batch, Collector};
use crate::config::SetchainConfig;
use crate::element::Element;
use crate::messages::SetchainMsg;
use crate::proofs::EpochProof;
use crate::server::{Ctx, ServerCore, ServerStats};
use crate::state::SetchainState;
use crate::tx::{HashBatch, SetchainTx};
use crate::Algorithm;

/// Timer token for the collector timeout tick.
const COLLECTOR_TICK: TimerToken = 1;
/// Timer token for batch-request timeouts.
const REQUEST_TICK: TimerToken = 2;

/// Canonical hash of a batch: binds element identities/metadata and the
/// included proofs. CPU cost is charged separately against the full batch
/// wire size, so hashing the compact representation here does not distort the
/// performance model.
pub fn batch_hash(elements: &[Element], proofs: &[EpochProof]) -> Digest512 {
    let mut h = Sha512::new();
    h.update(b"setchain-batch");
    h.update(&(elements.len() as u64).to_le_bytes());
    // One packed update per element (same field order as the original
    // per-field updates, so the digest format is unchanged): batch hashing
    // runs at every flush, every recovery response and every push, and the
    // hasher's buffered-update bookkeeping dominates 4-8 byte updates.
    let mut packed = [0u8; 36];
    for e in elements {
        packed[..8].copy_from_slice(&e.id.0.to_le_bytes());
        packed[8..16].copy_from_slice(&e.client.0.to_le_bytes());
        packed[16..20].copy_from_slice(&e.size.to_le_bytes());
        packed[20..28].copy_from_slice(&e.content_seed.to_le_bytes());
        packed[28..36].copy_from_slice(&e.auth.to_le_bytes());
        h.update(&packed);
    }
    h.update(&(proofs.len() as u64).to_le_bytes());
    let mut packed = [0u8; 16];
    for p in proofs {
        packed[..8].copy_from_slice(&p.epoch.to_le_bytes());
        packed[8..16].copy_from_slice(&p.signer.0.to_le_bytes());
        h.update(&packed);
        h.update(&p.signature.bytes);
    }
    h.finalize()
}

/// Shared out-of-band batch availability used by the "Hashchain light"
/// ablation (see the module documentation).
///
/// Batches are stored behind `Arc`, so a `get` is a refcount bump — the
/// hash-reversal recovery hot path never deep-clones batch contents.
#[derive(Clone, Default)]
pub struct SharedBatchRegistry {
    inner: Arc<Mutex<HashMap<Digest512, Arc<Batch>>>>,
}

impl SharedBatchRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a batch under its hash. Accepts an owned [`Batch`] or an
    /// already-shared `Arc<Batch>` (which is stored without copying).
    pub fn register(&self, hash: Digest512, batch: impl Into<Arc<Batch>>) {
        self.inner
            .lock()
            .entry(hash)
            .or_insert_with(|| batch.into());
    }

    /// Looks up a batch by hash. The returned `Arc` shares the stored
    /// contents; no element vector is cloned.
    pub fn get(&self, hash: &Digest512) -> Option<Arc<Batch>> {
        self.inner.lock().get(hash).map(Arc::clone)
    }

    /// Number of registered batches.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True if no batch is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An outstanding `Request_batch`.
#[derive(Debug)]
struct PendingRequest {
    hash: Digest512,
    asked: Vec<ProcessId>,
    deadline: SimTime,
}

/// The Hashchain server application.
pub struct HashchainApp {
    core: ServerCore,
    collector: Collector,
    /// `hash_to_batch`: batches whose contents this server knows. Stored
    /// behind `Arc` so repeated queue processing (one pass per hash-batch
    /// signer) shares the contents instead of cloning the element vector.
    hash_to_batch: HashMap<Digest512, Arc<Batch>>,
    /// `hash_to_signers`: servers whose hash-batches for a hash have been
    /// observed on the ledger.
    hash_to_signers: HashMap<Digest512, HashSet<ProcessId>>,
    /// Hashes this server has already signed and appended a hash-batch for.
    my_signed: HashSet<Digest512>,
    /// Hashes that have already been consolidated into an epoch.
    consolidated: HashSet<Digest512>,
    /// Hash-batches from finalized blocks awaiting processing, in ledger
    /// order.
    block_queue: VecDeque<HashBatch>,
    /// Outstanding batch request for the queue head, if any (pauses queue
    /// processing until the response arrives or the request times out).
    waiting: Option<PendingRequest>,
    /// Hashes for which a prefetch request has already been sent, with the
    /// time it was sent. Prefetching overlaps the request round trips of all
    /// unknown batches in a block instead of serialising them, which matters
    /// under WAN latency (Fig. 3c); consolidation still happens strictly in
    /// ledger order through `block_queue`.
    prefetched: HashMap<Digest512, SimTime>,
    /// Light-mode data availability.
    shared_registry: Option<SharedBatchRegistry>,
}

impl HashchainApp {
    /// Creates a Hashchain server (full protocol, with hash reversal).
    pub fn new(
        keys: KeyPair,
        registry: KeyRegistry,
        config: SetchainConfig,
        trace: crate::trace::SetchainTrace,
        byz: ServerByzMode,
    ) -> Self {
        let collector = Collector::new(config.collector_limit);
        HashchainApp {
            core: ServerCore::new(keys, registry, config, trace, byz),
            collector,
            hash_to_batch: HashMap::new(),
            hash_to_signers: HashMap::new(),
            my_signed: HashSet::new(),
            consolidated: HashSet::new(),
            block_queue: VecDeque::new(),
            waiting: None,
            prefetched: HashMap::new(),
            shared_registry: None,
        }
    }

    /// Creates a "Hashchain light" server: requires a configuration with
    /// `hash_reversal` disabled and a shared batch registry standing in for
    /// out-of-band availability.
    pub fn new_light(
        keys: KeyPair,
        registry: KeyRegistry,
        config: SetchainConfig,
        trace: crate::trace::SetchainTrace,
        shared: SharedBatchRegistry,
    ) -> Self {
        assert!(
            !config.hash_reversal,
            "light mode requires a config built with SetchainConfig::light_hashchain()"
        );
        let mut app = Self::new(keys, registry, config, trace, ServerByzMode::Correct);
        app.shared_registry = Some(shared);
        app
    }

    /// The Setchain state of this server.
    pub fn state(&self) -> &SetchainState {
        &self.core.state
    }

    /// Server counters.
    pub fn stats(&self) -> ServerStats {
        self.core.stats
    }

    /// Number of batches whose contents this server knows.
    pub fn known_batches(&self) -> usize {
        self.hash_to_batch.len()
    }

    fn handle_add(&mut self, element: Element, ctx: &mut Ctx<'_, '_, '_>) {
        if self.core.accept_add(&element, ctx) {
            self.collector.add_element(element);
            self.maybe_flush(ctx);
        }
    }

    fn maybe_flush(&mut self, ctx: &mut Ctx<'_, '_, '_>) {
        if self.collector.is_ready() {
            self.flush(ctx);
        }
    }

    /// `upon isReady(batch)`: hash the batch, register it, and append the
    /// signed hash-batch to the ledger.
    fn flush(&mut self, ctx: &mut Ctx<'_, '_, '_>) {
        let batch = self.collector.flush(ctx.now());
        let hash = batch_hash(&batch.elements, &batch.proofs);
        ctx.consume_cpu(self.core.config.costs.hash_cost(batch.wire_size()));
        // Register_batch(h, batch): keep the contents so other servers can
        // request them. The registry shares the same `Arc` — no copy.
        let batch = Arc::new(batch);
        if let Some(shared) = &self.shared_registry {
            shared.register(hash, Arc::clone(&batch));
        }
        self.hash_to_batch.insert(hash, Arc::clone(&batch));
        ctx.consume_cpu(self.core.config.costs.sign);
        let hb = self.core.make_hash_batch(hash);
        self.my_signed.insert(hash);
        self.core.stats.batches_flushed += 1;
        let tx = SetchainTx::HashBatch(hb);
        let tx_id = setchain_ledger::TxData::tx_id(&tx);
        for e in &batch.elements {
            self.core.trace.record_tx_assignment(e.id, tx_id);
        }
        ctx.append(tx);
        // Push-based dissemination variant: ship the batch contents to every
        // other server out of band, so that when the hash-batch lands in a
        // block they already hold the contents and skip `Request_batch`.
        // The batch is cloned into the message once and Arc-shared across
        // all recipients by `broadcast_app`.
        if self.core.config.push_batches {
            let me = self.core.id();
            let peers = (0..self.core.config.servers)
                .map(ProcessId::server)
                .filter(|p| *p != me);
            ctx.broadcast_app(
                peers,
                SetchainMsg::PushBatch {
                    hash,
                    elements: batch.elements.clone(),
                    proofs: batch.proofs.clone(),
                },
            );
        }
    }

    /// Looks up the batch contents for `hash`, consulting the shared registry
    /// in light mode. The returned `Arc` is a refcount bump, not a copy of
    /// the batch contents.
    fn lookup_batch(&mut self, hash: &Digest512) -> Option<Arc<Batch>> {
        if let Some(b) = self.hash_to_batch.get(hash) {
            return Some(Arc::clone(b));
        }
        if let Some(shared) = &self.shared_registry {
            if let Some(b) = shared.get(hash) {
                self.hash_to_batch.insert(*hash, Arc::clone(&b));
                return Some(b);
            }
        }
        None
    }

    /// Processes queued hash-batches in ledger order, pausing when a batch
    /// request is outstanding.
    fn process_queue(&mut self, ctx: &mut Ctx<'_, '_, '_>) {
        loop {
            if self.waiting.is_some() {
                return;
            }
            let Some(hb) = self.block_queue.front().copied() else {
                return;
            };
            if let Some(batch) = self.lookup_batch(&hb.hash) {
                self.block_queue.pop_front();
                self.handle_hash_batch(hb, Some(batch), ctx);
                continue;
            }
            if !self.core.config.hash_reversal {
                // Light mode without contents anywhere: count the signer but
                // consolidate an empty epoch.
                self.block_queue.pop_front();
                self.handle_hash_batch(hb, None, ctx);
                continue;
            }
            // Request_batch(h) from the signer of the hash-batch — unless a
            // prefetch for it is already in flight, in which case we only
            // wait for it. The prefetch gets a bounded total wait of two
            // request timeouts counted from the time it was *sent* (not from
            // the time its hash-batch reached the queue head): under a signer
            // that never answers — a server refusing batch service — the
            // stalls for all hash-batches prefetched together then overlap
            // instead of serialising, while a merely slow-but-correct signer
            // still gets the same patience the direct-request path grants.
            if let Some(&sent_at) = self.prefetched.get(&hb.hash) {
                let deadline =
                    sent_at + self.core.config.request_timeout + self.core.config.request_timeout;
                if ctx.now() < deadline {
                    self.waiting = Some(PendingRequest {
                        hash: hb.hash,
                        asked: vec![hb.signer],
                        deadline,
                    });
                    ctx.set_app_timer(deadline - ctx.now(), REQUEST_TICK);
                    return;
                }
                // The prefetch has been outstanding for the full allowance:
                // treat it as a failed request so we fall back to another
                // signer or skip the hash-batch (the pseudocode's `continue`)
                // instead of stalling the queue on the same unresponsive
                // server again.
                self.prefetched.remove(&hb.hash);
                self.waiting = Some(PendingRequest {
                    hash: hb.hash,
                    asked: vec![hb.signer],
                    deadline: ctx.now(),
                });
                self.fail_request(ctx);
                return;
            }
            self.send_request(hb.hash, hb.signer, ctx);
            return;
        }
    }

    /// Sends a prefetch request for a hash whose contents are unknown, so the
    /// round trip overlaps with the processing of earlier queue entries.
    fn prefetch(&mut self, hash: Digest512, signer: ProcessId, ctx: &mut Ctx<'_, '_, '_>) {
        if self.hash_to_batch.contains_key(&hash)
            || self.prefetched.contains_key(&hash)
            || signer == self.core.id()
        {
            return;
        }
        self.core.stats.batch_requests_sent += 1;
        ctx.send_app(signer, SetchainMsg::RequestBatch { hash });
        self.prefetched.insert(hash, ctx.now());
    }

    fn send_request(&mut self, hash: Digest512, to: ProcessId, ctx: &mut Ctx<'_, '_, '_>) {
        self.core.stats.batch_requests_sent += 1;
        ctx.send_app(to, SetchainMsg::RequestBatch { hash });
        self.prefetched.insert(hash, ctx.now());
        let deadline = ctx.now() + self.core.config.request_timeout;
        let asked = match &mut self.waiting {
            Some(pending) if pending.hash == hash => {
                pending.asked.push(to);
                pending.deadline = deadline;
                ctx.set_app_timer(self.core.config.request_timeout, REQUEST_TICK);
                return;
            }
            _ => vec![to],
        };
        self.waiting = Some(PendingRequest {
            hash,
            asked,
            deadline,
        });
        ctx.set_app_timer(self.core.config.request_timeout, REQUEST_TICK);
    }

    /// Gives up on the current request (timeout or bad response): either
    /// retries with another signer or skips the hash-batch, mirroring the
    /// pseudocode's `continue`.
    fn fail_request(&mut self, ctx: &mut Ctx<'_, '_, '_>) {
        let Some(pending) = self.waiting.take() else {
            return;
        };
        let hash = pending.hash;
        self.prefetched.remove(&hash);
        // Candidate servers we have not asked yet: other observed signers of
        // this hash (they all claim to have the batch).
        let mut candidates: Vec<ProcessId> = self
            .hash_to_signers
            .get(&hash)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        candidates.extend(
            self.block_queue
                .iter()
                .filter(|hb| hb.hash == hash)
                .map(|hb| hb.signer),
        );
        candidates.retain(|c| !pending.asked.contains(c) && *c != self.core.id());
        candidates.dedup();
        if pending.asked.len() < self.core.config.max_request_retries {
            if let Some(next) = candidates.first().copied() {
                self.waiting = Some(pending);
                self.send_request(hash, next, ctx);
                return;
            }
        }
        // Give up: skip the hash-batch at the head of the queue.
        self.core.stats.batch_requests_failed += 1;
        if self
            .block_queue
            .front()
            .map(|hb| hb.hash == hash)
            .unwrap_or(false)
        {
            self.block_queue.pop_front();
        }
        self.process_queue(ctx);
    }

    /// Processes one hash-batch whose position in the ledger order has been
    /// reached. `batch` is `None` only in light mode when contents are
    /// unavailable.
    fn handle_hash_batch(
        &mut self,
        hb: HashBatch,
        batch: Option<Arc<Batch>>,
        ctx: &mut Ctx<'_, '_, '_>,
    ) {
        let now = ctx.now();
        let hash = hb.hash;
        let validate = self.core.config.hash_reversal;

        if let Some(batch) = &batch {
            // If we had to recover the batch (we are not its origin and have
            // not signed it yet), sign the hash and append our own hash-batch
            // so the f+1 consolidation quorum can form. In the designated-
            // signers variant only the configured signer set counter-signs;
            // the remaining servers still track signers and consolidate.
            let designated = self
                .core
                .config
                .is_designated(self.core.id().server_index());
            if designated && !self.my_signed.contains(&hash) {
                ctx.consume_cpu(self.core.config.costs.sign);
                let own = self.core.make_hash_batch(hash);
                self.my_signed.insert(hash);
                ctx.append(SetchainTx::HashBatch(own));
            }
            // Valid epoch-proofs of the batch.
            for p in &batch.proofs {
                self.core.ingest_proof(*p, now, ctx);
            }
            // Valid elements join the_set immediately (they join history only
            // at consolidation); no candidate vector is materialized here.
            self.core
                .admit_batch_elements(&batch.elements, validate, ctx);
        }

        // Track the signer and consolidate at f + 1.
        let signers = self.hash_to_signers.entry(hash).or_default();
        signers.insert(hb.signer);
        let enough = signers.len() >= self.core.config.proof_quorum();
        if enough && !self.consolidated.contains(&hash) {
            self.consolidated.insert(hash);
            let g = match &batch {
                Some(b) => self
                    .core
                    .extract_epoch_candidates(&b.elements, validate, ctx),
                None => Vec::new(),
            };
            let (_, proof) = self.core.create_epoch(g, now, ctx);
            // Epoch-proofs are only emitted by the designated signer set (all
            // servers unless the 2f+1 variant is configured); every server
            // still records the epoch locally.
            if self
                .core
                .config
                .is_designated(self.core.id().server_index())
            {
                self.collector.add_proof(proof);
                self.maybe_flush(ctx);
            }
        }
    }
}

impl SetchainApp for HashchainApp {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Hashchain
    }

    fn state(&self) -> &SetchainState {
        &self.core.state
    }

    fn stats(&self) -> ServerStats {
        self.core.stats
    }

    fn shard_stats(&self) -> Vec<crate::server::ShardStats> {
        self.core.shard_stats()
    }

    fn config(&self) -> &SetchainConfig {
        &self.core.config
    }

    fn core(&self) -> &ServerCore {
        &self.core
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl Application for HashchainApp {
    type Tx = SetchainTx;
    type Msg = SetchainMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, '_, '_>) {
        ctx.set_app_timer(self.core.config.collector_timeout, COLLECTOR_TICK);
        // After a restart (retained state) probe peers for missed epochs;
        // a cold start is a no-op.
        self.core.maybe_request_catchup(ctx);
    }

    fn check_tx(&self, tx: &SetchainTx) -> bool {
        match tx {
            SetchainTx::HashBatch(hb) => {
                hb.signer.is_server() && hb.signer.server_index() < self.core.config.servers
            }
            _ => false,
        }
    }

    fn finalize_block(&mut self, block: &Block<SetchainTx>, ctx: &mut Ctx<'_, '_, '_>) {
        for tx in &block.txs {
            let SetchainTx::HashBatch(hb) = tx else {
                continue;
            };
            if self.core.config.hash_reversal {
                // valid_hash(h, s_w, w)
                ctx.consume_cpu(self.core.config.costs.verify_signature);
                if !self.core.hash_batch_valid(hb) {
                    continue;
                }
                // Start recovering unknown batch contents right away so the
                // round trips overlap instead of serialising per hash-batch.
                self.prefetch(hb.hash, hb.signer, ctx);
            }
            self.block_queue.push_back(*hb);
        }
        self.process_queue(ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: SetchainMsg, ctx: &mut Ctx<'_, '_, '_>) {
        match msg {
            SetchainMsg::Add(e) => {
                if self.core.admit_source(from, 1, ctx) {
                    self.handle_add(e, ctx);
                }
            }
            SetchainMsg::AddBatch(es) => {
                if self.core.admit_source(from, es.len() as u64, ctx) {
                    for e in es {
                        self.handle_add(e, ctx);
                    }
                }
            }
            SetchainMsg::BatchedAdd(batch) => {
                // The quota gate runs first: a shed batch costs zero root
                // verification.
                if !self
                    .core
                    .admit_source(from, batch.elements.len() as u64, ctx)
                {
                    return;
                }
                // One root-cache probe / MAC check authenticates the whole
                // batch; the per-element admission probes inside
                // `handle_add` then hit the warmed cache.
                let valid = self.core.verify_batched_add(&batch, ctx);
                if from.is_server() {
                    // Peer-forwarded envelope: verifying it warmed this
                    // server's caches, so recovered batch contents (push
                    // or hash reversal) validate as pure cache hits.
                } else if valid {
                    if self.core.byz != ServerByzMode::DropClientAdds {
                        self.core.gossip_batched_add(&batch, ctx);
                    }
                    for e in batch.elements {
                        self.handle_add(e, ctx);
                    }
                } else {
                    self.core.stats.adds_rejected_invalid += batch.elements.len() as u64;
                }
            }
            SetchainMsg::RequestBatch { hash } => {
                if self.core.byz == ServerByzMode::RefuseBatchService {
                    return;
                }
                if let Some(batch) = self.hash_to_batch.get(&hash) {
                    self.core.stats.batch_requests_served += 1;
                    ctx.send_app(
                        from,
                        SetchainMsg::BatchResponse {
                            hash,
                            elements: batch.elements.clone(),
                            proofs: batch.proofs.clone(),
                        },
                    );
                }
            }
            SetchainMsg::BatchResponse {
                hash,
                elements,
                proofs,
            } => {
                let head_waiting = self
                    .waiting
                    .as_ref()
                    .map(|p| p.hash == hash)
                    .unwrap_or(false);
                let expected = head_waiting || self.prefetched.contains_key(&hash);
                if !expected || self.hash_to_batch.contains_key(&hash) {
                    return;
                }
                let batch = Batch { elements, proofs };
                ctx.consume_cpu(self.core.config.costs.hash_cost(batch.wire_size()));
                if batch_hash(&batch.elements, &batch.proofs) == hash {
                    self.hash_to_batch.insert(hash, Arc::new(batch));
                    self.prefetched.remove(&hash);
                    if head_waiting {
                        self.waiting = None;
                        self.process_queue(ctx);
                    }
                } else if head_waiting {
                    // The signer is lying about the contents: retry elsewhere.
                    self.fail_request(ctx);
                } else {
                    // A bad prefetch answer: forget it so the head-of-queue
                    // path can re-request from another signer later.
                    self.prefetched.remove(&hash);
                }
            }
            SetchainMsg::PushBatch {
                hash,
                elements,
                proofs,
            } => {
                // Push-based dissemination: accept the contents only if they
                // really hash to the claimed value (a Byzantine pusher cannot
                // plant wrong contents for a hash).
                if self.hash_to_batch.contains_key(&hash) {
                    return;
                }
                let batch = Batch { elements, proofs };
                ctx.consume_cpu(self.core.config.costs.hash_cost(batch.wire_size()));
                if batch_hash(&batch.elements, &batch.proofs) != hash {
                    return;
                }
                self.hash_to_batch.insert(hash, Arc::new(batch));
                self.prefetched.remove(&hash);
                let head_waiting = self
                    .waiting
                    .as_ref()
                    .map(|p| p.hash == hash)
                    .unwrap_or(false);
                if head_waiting {
                    self.waiting = None;
                    self.process_queue(ctx);
                }
            }
            other => {
                let _ = self.core.handle_get(from, &other, ctx);
            }
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx<'_, '_, '_>) {
        match token {
            COLLECTOR_TICK => {
                if self
                    .collector
                    .is_timed_out(ctx.now(), self.core.config.collector_timeout)
                {
                    self.flush(ctx);
                }
                ctx.set_app_timer(self.core.config.collector_timeout, COLLECTOR_TICK);
            }
            REQUEST_TICK => {
                let expired = self
                    .waiting
                    .as_ref()
                    .map(|p| ctx.now() >= p.deadline)
                    .unwrap_or(false);
                if expired {
                    self.fail_request(ctx);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{Element, ElementId};
    use crate::proofs::make_epoch_proof;
    use setchain_crypto::KeyRegistry;

    fn registry() -> KeyRegistry {
        KeyRegistry::bootstrap(31, 4, 2)
    }

    fn elements(reg: &KeyRegistry, range: std::ops::Range<u64>) -> Vec<Element> {
        let keys = reg.lookup(ProcessId::client(0)).unwrap();
        range
            .map(|i| Element::new(&keys, ElementId::new(0, i), 438, i * 31 + 1))
            .collect()
    }

    #[test]
    fn batch_hash_is_deterministic_and_content_sensitive() {
        let reg = registry();
        let es = elements(&reg, 0..20);
        let server = reg.lookup(ProcessId::server(0)).unwrap();
        let proof = make_epoch_proof(&server, 1, &es[..5]);
        let a = batch_hash(&es, &[proof]);
        let b = batch_hash(&es, &[proof]);
        assert_eq!(a, b);
        // Dropping an element, reordering, or dropping the proof all change
        // the hash: the hash commits to the exact batch contents.
        assert_ne!(a, batch_hash(&es[..19], &[proof]));
        let mut reordered = es.clone();
        reordered.swap(0, 1);
        assert_ne!(a, batch_hash(&reordered, &[proof]));
        assert_ne!(a, batch_hash(&es, &[]));
    }

    #[test]
    fn batch_hash_distinguishes_elements_from_proofs_boundary() {
        // An empty batch and a batch with only proofs must not collide with
        // each other or with element-only batches.
        let reg = registry();
        let es = elements(&reg, 0..3);
        let server = reg.lookup(ProcessId::server(1)).unwrap();
        let proof = make_epoch_proof(&server, 2, &es);
        let empty = batch_hash(&[], &[]);
        let only_elements = batch_hash(&es, &[]);
        let only_proofs = batch_hash(&[], &[proof]);
        assert_ne!(empty, only_elements);
        assert_ne!(empty, only_proofs);
        assert_ne!(only_elements, only_proofs);
    }

    #[test]
    fn shared_registry_stores_first_writer_wins() {
        let reg = registry();
        let shared = SharedBatchRegistry::new();
        assert!(shared.is_empty());
        let es = elements(&reg, 0..4);
        let hash = batch_hash(&es, &[]);
        shared.register(
            hash,
            Batch {
                elements: es.clone(),
                proofs: vec![],
            },
        );
        assert_eq!(shared.len(), 1);
        assert_eq!(shared.get(&hash).unwrap().elements.len(), 4);
        // Re-registering under the same hash does not overwrite.
        shared.register(
            hash,
            Batch {
                elements: vec![],
                proofs: vec![],
            },
        );
        assert_eq!(shared.get(&hash).unwrap().elements.len(), 4);
        assert!(shared.get(&batch_hash(&es[..2], &[])).is_none());
        // Clones share the same storage.
        let alias = shared.clone();
        assert_eq!(alias.len(), 1);
    }

    #[test]
    fn light_mode_requires_light_config() {
        let reg = registry();
        let keys = reg.lookup(ProcessId::server(0)).unwrap();
        let config = SetchainConfig::new(4).light_hashchain();
        let app = HashchainApp::new_light(
            keys,
            reg.clone(),
            config,
            crate::trace::SetchainTrace::new(),
            SharedBatchRegistry::new(),
        );
        assert_eq!(app.known_batches(), 0);
        assert_eq!(app.state().epoch(), 0);
    }

    #[test]
    #[should_panic(expected = "light mode requires")]
    fn light_mode_with_full_config_panics() {
        let reg = registry();
        let keys = reg.lookup(ProcessId::server(0)).unwrap();
        let _ = HashchainApp::new_light(
            keys,
            reg.clone(),
            SetchainConfig::new(4),
            crate::trace::SetchainTrace::new(),
            SharedBatchRegistry::new(),
        );
    }
}
