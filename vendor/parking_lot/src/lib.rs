//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API: `lock()`
//! / `read()` / `write()` return guards directly instead of `Result`s.
//! Poisoning is deliberately ignored (parking_lot has no poisoning either) by
//! recovering the inner guard from a poisoned lock.
//!
//! Slower than real parking_lot under contention, but the workspace only uses
//! these for coarse, uncontended bookkeeping (trace sinks, shared registries).

use std::sync;

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7));
        *l.write() = 8;
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                thread::spawn(move || *l.read())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 8);
        }
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
