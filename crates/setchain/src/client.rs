//! Light-client verification of epochs.
//!
//! The whole point of epoch-proofs is that a client interacting with a
//! *single*, possibly Byzantine, server can still convince itself that an
//! epoch is correct: it asks for the epoch contents and the proofs the server
//! holds for it, and accepts if at least `f + 1` proofs from distinct servers
//! verify against the contents — at least one of them comes from a correct
//! server.

use std::collections::HashSet;

use setchain_crypto::{KeyRegistry, ProcessId};
use setchain_simnet::SimDuration;

use crate::element::{Element, ElementId};
use crate::messages::SetchainMsg;
use crate::proofs::{verify_epoch_proof, EpochProof};

/// Per-missing-proof wait used to compute the
/// [`NotEnoughProofs`](EpochVerification::NotEnoughProofs) retry-after hint.
///
/// Each missing proof costs roughly one more gossip/block round, so the hint
/// scales linearly: an epoch one proof short of quorum is worth re-auditing
/// sooner than one with no proofs at all.
pub const RETRY_AFTER_PER_MISSING_PROOF: SimDuration = SimDuration(250_000); // 250 ms

/// Outcome of verifying an epoch from a single server's response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EpochVerification {
    /// The epoch is backed by at least `f + 1` valid proofs from distinct
    /// servers: it is correct even if the answering server is Byzantine.
    Verified {
        /// Number of distinct valid signers found.
        valid_proofs: usize,
    },
    /// Fewer than `f + 1` valid proofs. The epoch may simply not be fully
    /// proven yet — proofs spread through ledger blocks — so this verdict is
    /// *retryable*, and [`retry_after`](Self::retry_after) carries a
    /// machine-usable wait before re-auditing the epoch (or asking a
    /// different server). The retrying session layer
    /// (`setchain-workload`'s `RequestClient`) consumes this hint directly.
    NotEnoughProofs {
        /// Number of distinct valid signers found.
        valid_proofs: usize,
        /// Number required (`f + 1`).
        required: usize,
        /// Suggested wait before re-requesting this epoch:
        /// [`RETRY_AFTER_PER_MISSING_PROOF`] per missing proof.
        retry_after: SimDuration,
    },
}

impl EpochVerification {
    /// True if the epoch verified.
    pub fn is_verified(&self) -> bool {
        matches!(self, EpochVerification::Verified { .. })
    }

    /// The suggested wait before re-auditing, for retryable verdicts
    /// (`None` once verified — there is nothing left to retry).
    pub fn retry_after(&self) -> Option<SimDuration> {
        match self {
            EpochVerification::Verified { .. } => None,
            EpochVerification::NotEnoughProofs { retry_after, .. } => Some(*retry_after),
        }
    }
}

/// Verifies an epoch against a set of proofs.
///
/// `servers` is the deployment size `n` and `f` the assumed maximum number of
/// Byzantine servers; proofs from outside the server set, with invalid
/// signatures, for a different epoch number, or duplicated signers are all
/// ignored.
pub fn verify_epoch(
    registry: &KeyRegistry,
    servers: usize,
    f: usize,
    epoch: u64,
    elements: &[Element],
    proofs: &[EpochProof],
) -> EpochVerification {
    let mut valid_signers: HashSet<ProcessId> = HashSet::new();
    for proof in proofs {
        if proof.epoch != epoch {
            continue;
        }
        if verify_epoch_proof(registry, servers, proof, elements) {
            valid_signers.insert(proof.signer);
        }
    }
    let required = f + 1;
    if valid_signers.len() >= required {
        EpochVerification::Verified {
            valid_proofs: valid_signers.len(),
        }
    } else {
        let missing = (required - valid_signers.len()) as u64;
        EpochVerification::NotEnoughProofs {
            valid_proofs: valid_signers.len(),
            required,
            retry_after: RETRY_AFTER_PER_MISSING_PROOF * missing,
        }
    }
}

/// A light client: tracks the elements it added and verifies epochs from
/// single-server `get_epoch` responses.
#[derive(Clone)]
pub struct LightClient {
    registry: KeyRegistry,
    servers: usize,
    f: usize,
    next_request: u64,
    added: HashSet<ElementId>,
}

impl LightClient {
    /// Creates a light client for a deployment of `servers` servers with
    /// fault bound `f`.
    pub fn new(registry: KeyRegistry, servers: usize, f: usize) -> Self {
        LightClient {
            registry,
            servers,
            f,
            next_request: 0,
            added: HashSet::new(),
        }
    }

    /// Builds the `add` message for an element, remembering its id so that
    /// inclusion can be confirmed later.
    pub fn add(&mut self, element: Element) -> SetchainMsg {
        self.added.insert(element.id);
        SetchainMsg::Add(element)
    }

    /// Builds the batch-authenticated `add` message for an already-sealed
    /// batch ([`crate::AuthedBatch::seal`]), remembering every element id so
    /// that inclusion can be confirmed later.
    pub fn add_batch(&mut self, batch: crate::AuthedBatch) -> SetchainMsg {
        self.added.extend(batch.elements.iter().map(|e| e.id));
        SetchainMsg::BatchedAdd(batch)
    }

    /// Builds a `get` request.
    pub fn get(&mut self) -> SetchainMsg {
        let request_id = self.next_request;
        self.next_request += 1;
        SetchainMsg::Get { request_id }
    }

    /// Builds a `get_epoch` request.
    pub fn get_epoch(&mut self, epoch: u64) -> SetchainMsg {
        let request_id = self.next_request;
        self.next_request += 1;
        SetchainMsg::GetEpoch { request_id, epoch }
    }

    /// Ids of elements this client has added.
    pub fn added(&self) -> &HashSet<ElementId> {
        &self.added
    }

    /// Verifies an `EpochResponse` from a single server: checks the proofs
    /// and reports which of this client's elements the epoch confirms.
    pub fn verify_response(
        &self,
        msg: &SetchainMsg,
    ) -> Option<(EpochVerification, Vec<ElementId>)> {
        let SetchainMsg::EpochResponse {
            epoch,
            elements,
            proofs,
            ..
        } = msg
        else {
            return None;
        };
        let verification = verify_epoch(
            &self.registry,
            self.servers,
            self.f,
            *epoch,
            elements,
            proofs,
        );
        let mine = if verification.is_verified() {
            elements
                .iter()
                .map(|e| e.id)
                .filter(|id| self.added.contains(id))
                .collect()
        } else {
            Vec::new()
        };
        Some((verification, mine))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{Element, ElementId};
    use crate::proofs::make_epoch_proof;
    use setchain_crypto::Signature;

    fn setup(n: usize) -> (KeyRegistry, Vec<Element>) {
        let reg = KeyRegistry::bootstrap(21, n, 2);
        let client = reg.lookup(ProcessId::client(0)).unwrap();
        let elements: Vec<Element> = (0..8)
            .map(|i| Element::new(&client, ElementId::new(0, i), 438, i))
            .collect();
        (reg, elements)
    }

    fn proofs_from(
        reg: &KeyRegistry,
        signers: &[usize],
        epoch: u64,
        elements: &[Element],
    ) -> Vec<EpochProof> {
        signers
            .iter()
            .map(|&i| make_epoch_proof(&reg.lookup(ProcessId::server(i)).unwrap(), epoch, elements))
            .collect()
    }

    #[test]
    fn quorum_of_valid_proofs_verifies() {
        let (reg, elements) = setup(4);
        let proofs = proofs_from(&reg, &[0, 1], 1, &elements);
        let v = verify_epoch(&reg, 4, 1, 1, &elements, &proofs);
        assert_eq!(v, EpochVerification::Verified { valid_proofs: 2 });
        assert!(v.is_verified());
    }

    #[test]
    fn insufficient_or_duplicate_proofs_do_not_verify() {
        let (reg, elements) = setup(4);
        let one = proofs_from(&reg, &[0], 1, &elements);
        let verdict = verify_epoch(&reg, 4, 1, 1, &elements, &one);
        assert_eq!(
            verdict,
            EpochVerification::NotEnoughProofs {
                valid_proofs: 1,
                required: 2,
                retry_after: RETRY_AFTER_PER_MISSING_PROOF,
            }
        );
        // One proof short of quorum: the retry-after hint is one base unit;
        // a proofless epoch is hinted proportionally further out.
        assert_eq!(verdict.retry_after(), Some(RETRY_AFTER_PER_MISSING_PROOF));
        let none = verify_epoch(&reg, 4, 1, 1, &elements, &[]);
        assert_eq!(
            none.retry_after(),
            Some(RETRY_AFTER_PER_MISSING_PROOF * 2),
            "hint scales with missing proofs"
        );
        // The same signer repeated does not count twice.
        let dup = proofs_from(&reg, &[0, 0, 0], 1, &elements);
        assert!(!verify_epoch(&reg, 4, 1, 1, &elements, &dup).is_verified());
    }

    #[test]
    fn forged_wrong_epoch_and_outsider_proofs_ignored() {
        let (reg, elements) = setup(4);
        let mut proofs = proofs_from(&reg, &[0], 1, &elements);
        // Forged signature.
        let mut forged = proofs[0];
        forged.signer = ProcessId::server(1);
        forged.signature = Signature::forged(ProcessId::server(1));
        proofs.push(forged);
        // Proof for another epoch.
        proofs.extend(proofs_from(&reg, &[2], 2, &elements));
        // Proof over different contents.
        proofs.push(make_epoch_proof(
            &reg.lookup(ProcessId::server(3)).unwrap(),
            1,
            &elements[..4],
        ));
        assert!(!verify_epoch(&reg, 4, 1, 1, &elements, &proofs).is_verified());
    }

    #[test]
    fn byzantine_server_cannot_fake_an_epoch_alone() {
        // f = 1: a single Byzantine server's proof (even if its signature is
        // technically valid) is not enough, because f + 1 = 2 distinct
        // signers are required.
        let (reg, elements) = setup(4);
        let fabricated: Vec<Element> = elements[..3].to_vec();
        let proofs = proofs_from(&reg, &[2], 1, &fabricated);
        assert!(!verify_epoch(&reg, 4, 1, 1, &fabricated, &proofs).is_verified());
    }

    #[test]
    fn light_client_workflow() {
        let (reg, elements) = setup(4);
        let mut client = LightClient::new(reg.clone(), 4, 1);
        // Client adds the first three elements.
        for e in &elements[..3] {
            let msg = client.add(*e);
            assert!(matches!(msg, SetchainMsg::Add(_)));
        }
        assert_eq!(client.added().len(), 3);
        let get = client.get();
        assert!(matches!(get, SetchainMsg::Get { request_id: 0 }));
        let get_epoch = client.get_epoch(1);
        assert!(matches!(get_epoch, SetchainMsg::GetEpoch { epoch: 1, .. }));

        // Server responds with the epoch containing all 8 elements and 2
        // valid proofs.
        let proofs = proofs_from(&reg, &[1, 3], 1, &elements);
        let response = SetchainMsg::EpochResponse {
            request_id: 1,
            epoch: 1,
            elements: elements.clone(),
            proofs,
        };
        let (verification, mine) = client.verify_response(&response).unwrap();
        assert!(verification.is_verified());
        assert_eq!(mine.len(), 3);

        // A response without a quorum confirms nothing.
        let weak = SetchainMsg::EpochResponse {
            request_id: 2,
            epoch: 1,
            elements: elements.clone(),
            proofs: proofs_from(&reg, &[1], 1, &elements),
        };
        let (verification, mine) = client.verify_response(&weak).unwrap();
        assert!(!verification.is_verified());
        assert!(mine.is_empty());

        // Non-epoch responses are ignored.
        assert!(client
            .verify_response(&SetchainMsg::Get { request_id: 9 })
            .is_none());
    }
}
