//! Crash-recovery tests for the persistent epoch store (`setchain-store`).
//!
//! The contract under test: a deployment killed mid-run and reopened over
//! the same store directories replays every server to the exact committed
//! prefix — identical element sets *and* identical signed epoch digests —
//! of an uninterrupted run with the same seed; a restarted node recovers
//! through its store without paging peers; bounded-memory eviction changes
//! no observable result; and a torn segment tail truncates cleanly instead
//! of poisoning recovery.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use setchain::{Algorithm, ElementId, StoreConfig};
use setchain_simnet::SimTime;
use setchain_workload::{Deployment, DeploymentBuilder};

/// Unique store root per test run, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let base = option_env!("CARGO_TARGET_TMPDIR")
            .map(PathBuf::from)
            .unwrap_or_else(std::env::temp_dir);
        let dir = base.join(format!(
            "setchain-recovery-{label}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &str {
        self.0.to_str().unwrap()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const SERVERS: usize = 4;

/// The determinism-harness deployment shape: 4 servers, 400 el/s for 3 s,
/// 12 s window, seed 71.
fn builder(algorithm: Algorithm, shards: usize) -> DeploymentBuilder {
    Deployment::builder(algorithm)
        .servers(SERVERS)
        .rate(400.0)
        .collector(32)
        .injection_secs(3)
        .max_run_secs(12)
        .shards(shards)
        .seed(71)
}

/// Per-server epoch fingerprints: `(digest bytes, element ids)` per epoch,
/// in epoch order. Digests are compared byte-for-byte — the signed digest
/// is what epoch-proofs bind, so recovery must reproduce it exactly.
type EpochPrints = Vec<Vec<([u8; 64], BTreeSet<ElementId>)>>;

fn epoch_prints(deployment: &Deployment) -> EpochPrints {
    (0..SERVERS)
        .map(|i| {
            let state = deployment.server(i).state();
            (1..=state.epoch())
                .map(|e| {
                    let digest = state.epoch_digest(e).expect("epoch in range").0;
                    let ids = state
                        .epoch_elements(e)
                        .expect("epoch resident")
                        .iter()
                        .map(|el| el.id)
                        .collect();
                    (digest, ids)
                })
                .collect()
        })
        .collect()
}

#[test]
fn killed_runs_replay_to_the_exact_committed_prefix_for_every_variant() {
    for algorithm in Algorithm::ALL {
        // Reference: an uninterrupted in-memory run of the same seed.
        let mut reference = builder(algorithm, 1).build();
        reference.sim.run_until(SimTime::from_secs(12));
        let reference_prints = epoch_prints(&reference);
        drop(reference);

        // Store-backed run killed mid-flight at 9 s: dropping the
        // deployment discards all in-RAM state; only the segment logs
        // survive. 9 s is past the first commits of every variant but
        // before the drain completes, so the tail is genuinely torn off.
        let tmp = TempDir::new("kill");
        let mut killed = builder(algorithm, 1)
            .store(StoreConfig::new(tmp.path()))
            .build();
        killed.sim.run_until(SimTime::from_secs(9));
        let persisted: Vec<u64> = (0..SERVERS)
            .map(|i| killed.server(i).stats().epochs_persisted)
            .collect();
        drop(killed);

        // Reopen over the same directories: building the deployment opens
        // each server's store and replays it — no simulated time has
        // passed, so everything below is pure local recovery.
        let reopened = builder(algorithm, 1)
            .store(StoreConfig::new(tmp.path()))
            .build();
        for i in 0..SERVERS {
            let state = reopened.server(i).state();
            assert_eq!(
                state.epoch(),
                persisted[i],
                "{algorithm:?} server {i}: replayed tip != persisted frontier"
            );
            assert!(
                state.epoch() > 0,
                "{algorithm:?} server {i}: nothing persisted by 9s"
            );
            let prints = &reference_prints[i];
            assert!(
                (state.epoch() as usize) <= prints.len(),
                "{algorithm:?} server {i}: recovered past the reference run"
            );
            for e in 1..=state.epoch() {
                let (ref_digest, ref_ids) = &prints[e as usize - 1];
                assert_eq!(
                    &state.epoch_digest(e).expect("replayed").0,
                    ref_digest,
                    "{algorithm:?} server {i} epoch {e}: digest diverged"
                );
                let ids: BTreeSet<ElementId> = state
                    .epoch_elements(e)
                    .expect("replayed")
                    .iter()
                    .map(|el| el.id)
                    .collect();
                assert_eq!(
                    &ids, ref_ids,
                    "{algorithm:?} server {i} epoch {e}: elements diverged"
                );
                // Replay restores the stored quorum: the epoch is
                // committed without any re-verification or peer traffic.
                assert!(
                    state.proof_count(e) >= reopened.config.proof_quorum(),
                    "{algorithm:?} server {i} epoch {e}: quorum not replayed"
                );
            }
        }
    }
}

/// Enabling the store must not perturb the simulation: store I/O happens on
/// the host, outside simulated time, so a store-backed run produces the
/// bit-identical schedule and committed results of an in-memory run.
#[test]
fn store_backed_runs_are_schedule_identical_to_in_memory_runs() {
    let mut plain = builder(Algorithm::Hashchain, 1).build();
    plain.sim.run_until(SimTime::from_secs(12));

    let tmp = TempDir::new("identical");
    let mut stored = builder(Algorithm::Hashchain, 1)
        .store(StoreConfig::new(tmp.path()))
        .build();
    stored.sim.run_until(SimTime::from_secs(12));

    assert_eq!(
        plain.sim.events_processed(),
        stored.sim.events_processed(),
        "store-backed run processed a different event schedule"
    );
    assert_eq!(
        plain.sim.messages_deferred(),
        stored.sim.messages_deferred()
    );
    assert_eq!(plain.trace.added_count(), stored.trace.added_count());
    assert_eq!(
        plain.trace.committed_count_by(SimTime::from_secs(12)),
        stored.trace.committed_count_by(SimTime::from_secs(12))
    );
    assert_eq!(epoch_prints(&plain), epoch_prints(&stored));
    let persisted: u64 = (0..SERVERS)
        .map(|i| stored.server(i).stats().epochs_persisted)
        .sum();
    assert!(persisted > 0, "nothing reached the store");
}

/// The PR 7 restart path, store-first: a sharded deployment restarted over
/// its store directories recovers every server locally — the `on_start`
/// catch-up probes find no peer ahead, so zero epochs arrive via peer
/// catch-up.
#[test]
fn sharded_restart_recovers_through_the_store_without_peer_catchup() {
    let tmp = TempDir::new("shards");
    let mut first = builder(Algorithm::Hashchain, 4)
        .store(StoreConfig::new(tmp.path()))
        .build();
    first.sim.run_until(SimTime::from_secs(12));
    let prints = epoch_prints(&first);
    let tips: Vec<u64> = (0..SERVERS)
        .map(|i| first.server(i).stats().epochs_persisted)
        .collect();
    assert!(tips.iter().all(|&t| t > 0), "every server persisted epochs");
    drop(first);

    // Restart: same directories, no injection. Run a couple of simulated
    // seconds so every server's `on_start` restart probe fires and any
    // would-be catch-up traffic completes.
    let mut restarted = builder(Algorithm::Hashchain, 4)
        .store(StoreConfig::new(tmp.path()))
        .injection_secs(0)
        .build();
    restarted.sim.run_until(SimTime::from_secs(2));
    for i in 0..SERVERS {
        let stats = restarted.server(i).stats();
        assert_eq!(
            stats.epochs_replayed, 0,
            "server {i} paged peers instead of recovering from its store"
        );
        let state = restarted.server(i).state();
        assert_eq!(state.epoch(), tips[i], "server {i} recovered tip");
        for e in 1..=state.epoch() {
            assert_eq!(
                state.epoch_digest(e).expect("recovered").0,
                prints[i][e as usize - 1].0,
                "server {i} epoch {e}: digest diverged across restart"
            );
        }
    }
}

/// Bounded-memory mode: with a small retention window, durably stored
/// epochs are evicted from RAM mid-run — and nothing observable changes.
/// Schedules, added/committed counts, logical set sizes and every signed
/// digest match the in-memory reference; evicted contents remain readable.
#[test]
fn eviction_bounds_memory_without_changing_results() {
    let mut plain = builder(Algorithm::Hashchain, 1).build();
    plain.sim.run_until(SimTime::from_secs(12));
    let reference_prints = epoch_prints(&plain);

    let tmp = TempDir::new("evict");
    let mut evicting = builder(Algorithm::Hashchain, 1)
        .store(StoreConfig::new(tmp.path()).with_retain_epochs(1))
        .build();
    evicting.sim.run_until(SimTime::from_secs(12));

    assert_eq!(
        plain.sim.events_processed(),
        evicting.sim.events_processed(),
        "eviction leaked into the event schedule"
    );
    assert_eq!(
        plain.trace.committed_count_by(SimTime::from_secs(12)),
        evicting.trace.committed_count_by(SimTime::from_secs(12))
    );
    let evicted: u64 = (0..SERVERS)
        .map(|i| evicting.server(i).stats().elements_evicted)
        .sum();
    assert!(evicted > 0, "retention window never evicted anything");
    for (i, prints) in reference_prints.iter().enumerate().take(SERVERS) {
        let state = evicting.server(i).state();
        let reference = plain.server(i).state();
        assert_eq!(state.epoch(), reference.epoch(), "server {i} tip");
        assert_eq!(
            state.the_set_len(),
            reference.the_set_len(),
            "server {i}: eviction changed the logical set size"
        );
        // Digests are never evicted; they must match for *every* epoch,
        // including the evicted prefix.
        for (e, (ref_digest, _)) in prints.iter().enumerate() {
            assert_eq!(
                &state.epoch_digest(e as u64 + 1).expect("digest resident").0,
                ref_digest,
                "server {i} epoch {}: digest diverged under eviction",
                e + 1
            );
        }
        assert!(
            state.evicted_epochs() > 0,
            "server {i}: retention window 1 should have evicted"
        );
        let stats = evicting.server(i).stats();
        assert!(stats.store_bytes > 0, "server {i}: store bytes unreported");
    }
}

/// A torn tail — a partial frame appended by a crash mid-write — must be
/// truncated on reopen: recovery lands on the last whole record, never
/// panics, never invents state.
#[test]
fn torn_segment_tail_is_truncated_on_reopen() {
    let tmp = TempDir::new("torn");
    let mut run = builder(Algorithm::Vanilla, 1)
        .store(StoreConfig::new(tmp.path()))
        .build();
    run.sim.run_until(SimTime::from_secs(9));
    let tip = run.server(0).stats().epochs_persisted;
    assert!(tip > 0);
    drop(run);

    // Append garbage — a plausible frame header claiming a payload that
    // never made it to disk — to server 0's newest segment.
    let server_dir = std::path::Path::new(tmp.path()).join("server-0");
    let mut segments: Vec<PathBuf> = std::fs::read_dir(&server_dir)
        .unwrap()
        .filter_map(|e| {
            let path = e.unwrap().path();
            (path.extension().map(|x| x == "log"))
                .unwrap_or(false)
                .then_some(path)
        })
        .collect();
    segments.sort();
    let last = segments.last().expect("at least one segment");
    let mut bytes = std::fs::read(last).unwrap();
    bytes.extend_from_slice(&0x3147_4553u32.to_le_bytes()); // frame magic
    bytes.extend_from_slice(&1_000_000u32.to_le_bytes()); // torn payload len
    bytes.extend_from_slice(&[0xAB; 11]);
    std::fs::write(last, bytes).unwrap();

    let reopened = builder(Algorithm::Vanilla, 1)
        .store(StoreConfig::new(tmp.path()))
        .build();
    assert_eq!(
        reopened.server(0).state().epoch(),
        tip,
        "torn tail should truncate back to the persisted frontier"
    );
}
