//! Adversarial workload suite (PR 10): each overload preset as a
//! deterministic schedule against a quota-protected deployment.
//!
//! The properties pinned down here are the overload-protection contract:
//!
//! * **Honest isolation** — quotas are per-client, and the adversary is its
//!   own registered identity, so its flooding exhausts only its own bucket:
//!   every honest add still confirms (commits into a proven epoch) within
//!   the run's drain window, and no honest client is ever told to back off.
//! * **Full attribution** — nothing is shed silently: every dropped element
//!   shows up in the per-cause counters, and the server-side totals agree
//!   between the quota state and the server stats.
//! * **Determinism** — the quota is integer arithmetic over simulated time
//!   and the attack driver draws only from its own seeded RNG, so same-seed
//!   attack runs replay bit-for-bit; and a quota that never sheds sends no
//!   messages and consumes nothing, so a quota-on honest run is
//!   schedule-identical to the pre-quota pipeline.

use std::collections::BTreeSet;

use setchain::{Algorithm, ElementId, QuotaConfig};
use setchain_simnet::SimTime;
use setchain_workload::{Adversary, Deployment};

/// Simulated horizon of every run: injection (and the attack) stop at 3 s,
/// the rest is drain time for batches, blocks and proof quorums.
const RUN_SECS: u64 = 14;

/// A small quota-protected deployment: 4 servers, 100 el/s per honest
/// client — far below the default 2 000 el/s bucket, so honest traffic is
/// never shed — and plenty of drain time.
fn protected_deployment(adversary: Option<Adversary>, seed: u64) -> Deployment {
    let mut builder = Deployment::builder(Algorithm::Hashchain)
        .servers(4)
        .rate(400.0)
        .collector(32)
        .injection_secs(3)
        .max_run_secs(RUN_SECS)
        .seed(seed)
        .quota(QuotaConfig::new());
    if let Some(preset) = adversary {
        builder = builder.adversary(preset);
    }
    builder.build()
}

fn run(deployment: &mut Deployment) {
    deployment.sim.run_until(SimTime::from_secs(RUN_SECS));
}

/// Sum of quota sheds over all servers, cross-checked between the quota
/// state's per-cause counters and the server stats — the "fully attributed"
/// half of the acceptance criteria.
fn attributed_sheds(deployment: &Deployment) -> u64 {
    let mut total = 0;
    for i in 0..4 {
        let server = deployment.server(i);
        let from_stats = server.stats().adds_rejected_quota;
        let from_quota = server
            .quota()
            .map(|q| q.shed_rate() + q.shed_pending())
            .unwrap_or(0);
        assert_eq!(
            from_stats, from_quota,
            "server {i}: quota-state sheds and stats disagree"
        );
        total += from_stats;
    }
    total
}

#[test]
fn every_preset_keeps_honest_clients_whole() {
    for preset in Adversary::ALL {
        let mut deployment = protected_deployment(Some(preset), 5001);
        run(&mut deployment);

        let added = deployment.trace.added_count();
        let committed = deployment
            .trace
            .honest_committed_count_by(SimTime::from_secs(RUN_SECS));
        assert!(added > 0, "{preset}: honest clients injected nothing");
        assert_eq!(
            committed, added,
            "{preset}: honest adds failed to confirm within the drain window"
        );
        assert_eq!(
            deployment.honest_rejections(),
            0,
            "{preset}: an honest client was told to back off"
        );

        let sheds = attributed_sheds(&deployment);
        let adversary = deployment.adversary().expect("attack client installed");
        assert!(adversary.sent() > 0, "{preset}: the attack never fired");
        match preset {
            // High-rate presets must actually trip the rate limit — and the
            // attacker observes its sheds as `Rejected` replies (one per
            // refused submission, so replies count messages, sheds count
            // elements).
            Adversary::FloodClient | Adversary::HotKeySkew | Adversary::ReplayStorm => {
                assert!(sheds > 0, "{preset}: the quota never shed anything");
                assert!(
                    adversary.rejected_replies() > 0,
                    "{preset}: the attacker never saw a Rejected reply"
                );
            }
            // Mass onboarding: one network source registering hundreds of
            // fresh signing identities. Its 200 el/s fits the source's own
            // bucket (nothing sheds), quota state — keyed by the
            // authenticated network source, not the element signer — stays
            // at exactly two entries on the target (its honest client and
            // the attack process), and every fresh signer costs the server
            // a cold admission probe.
            Adversary::ChurnStorm => {
                assert_eq!(sheds, 0, "churn stays under its source's bucket");
                let target = deployment.server(0);
                let clients = target.quota().expect("quota enabled").clients();
                assert_eq!(clients, 2, "churn must not bloat source-keyed quota state");
                let misses: u64 = target
                    .core()
                    .admission_caches()
                    .iter()
                    .map(|c| c.misses())
                    .sum();
                assert!(
                    misses >= adversary.sent(),
                    "{} fresh signers should each miss the admission cache \
                     (misses={misses})",
                    adversary.sent()
                );
            }
            _ => unreachable!("ALL covers every preset"),
        }
    }
}

#[test]
fn flood_goodput_stays_within_envelope_of_attack_free_twin() {
    // The bench grid's acceptance envelope, in the simulated domain: the
    // honest workload is seeded independently of the adversary, so the twin
    // runs inject identical elements, and per-client quotas keep the flood
    // from displacing any of them — honest goodput under attack is not just
    // within 25% of the attack-free twin, it is element-for-element equal.
    let mut attacked = protected_deployment(Some(Adversary::FloodClient), 5002);
    let mut calm = protected_deployment(None, 5002);
    run(&mut attacked);
    run(&mut calm);

    let horizon = SimTime::from_secs(RUN_SECS);
    assert_eq!(attacked.trace.added_count(), calm.trace.added_count());
    let under_attack = attacked.trace.honest_committed_count_by(horizon);
    let attack_free = calm.trace.honest_committed_count_by(horizon);
    assert_eq!(attack_free, calm.trace.added_count());
    assert_eq!(
        under_attack, attack_free,
        "the flood displaced honest commits"
    );
    assert!(
        under_attack as f64 >= 0.75 * attack_free as f64,
        "goodput envelope violated: {under_attack} vs {attack_free}"
    );
    assert!(attributed_sheds(&attacked) > 0);
    assert_eq!(attributed_sheds(&calm), 0);
}

/// Fingerprint of an attack run: enough to detect any divergence — event
/// counts, honest totals, per-cause sheds, the attacker's own view, and
/// every server's full epoch history.
#[derive(Debug, PartialEq, Eq)]
struct AttackFingerprint {
    events_processed: u64,
    added: usize,
    committed: usize,
    sheds: Vec<(u64, u64)>,
    attacker_sent: u64,
    attacker_rejected: u64,
    epochs: Vec<Vec<BTreeSet<ElementId>>>,
}

fn attack_fingerprint(preset: Adversary, seed: u64) -> AttackFingerprint {
    let mut deployment = protected_deployment(Some(preset), seed);
    run(&mut deployment);
    let adversary = deployment.adversary().expect("attack client installed");
    let (attacker_sent, attacker_rejected) = (adversary.sent(), adversary.rejected_replies());
    let epochs = (0..4)
        .map(|i| {
            let state = deployment.server(i).state();
            (1..=state.epoch())
                .map(|e| {
                    state
                        .epoch_elements(e)
                        .expect("epoch in range")
                        .iter()
                        .map(|el| el.id)
                        .collect()
                })
                .collect()
        })
        .collect();
    AttackFingerprint {
        events_processed: deployment.sim.events_processed(),
        added: deployment.trace.added_count(),
        committed: deployment
            .trace
            .honest_committed_count_by(SimTime::from_secs(RUN_SECS)),
        sheds: (0..4)
            .map(|i| {
                let q = deployment.server(i).quota().expect("quota enabled");
                (q.shed_rate(), q.shed_pending())
            })
            .collect(),
        attacker_sent,
        attacker_rejected,
        epochs,
    }
}

#[test]
fn same_seed_attack_runs_are_bit_identical() {
    for preset in [Adversary::FloodClient, Adversary::ReplayStorm] {
        let first = attack_fingerprint(preset, 5003);
        let second = attack_fingerprint(preset, 5003);
        assert_eq!(
            first, second,
            "{preset}: an attack schedule must replay bit-for-bit under the same seed"
        );
        assert!(first.attacker_sent > 0);
    }
}

#[test]
fn quota_on_honest_run_is_schedule_identical_to_quota_off() {
    // The off-by-default contract, from the other side: a quota that never
    // sheds probes pure state — no message, no CPU charge, no RNG draw — so
    // turning quotas on under an honest workload must not move a single
    // event. This is what keeps every pre-quota deterministic suite and
    // bench baseline byte-identical.
    let build = |quota: bool| {
        let mut builder = Deployment::builder(Algorithm::Hashchain)
            .servers(4)
            .rate(400.0)
            .collector(32)
            .injection_secs(3)
            .max_run_secs(RUN_SECS)
            .seed(5004);
        if quota {
            builder = builder.quota(QuotaConfig::new());
        }
        builder.build()
    };
    let mut with_quota = build(true);
    let mut without = build(false);
    run(&mut with_quota);
    run(&mut without);

    assert_eq!(
        with_quota.sim.events_processed(),
        without.sim.events_processed(),
        "quota probes perturbed the event schedule"
    );
    assert_eq!(with_quota.trace.added_count(), without.trace.added_count());
    let horizon = SimTime::from_secs(RUN_SECS);
    assert_eq!(
        with_quota.trace.honest_committed_count_by(horizon),
        without.trace.honest_committed_count_by(horizon)
    );
    assert_eq!(attributed_sheds(&with_quota), 0);
    for i in 0..4 {
        assert!(
            with_quota
                .server(i)
                .state()
                .check_consistent_with(without.server(i).state()),
            "server {i}: quota-on state diverged from quota-off"
        );
    }
}
