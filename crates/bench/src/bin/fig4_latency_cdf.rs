//! Regenerates Fig. 4 (latency CDF per stage).
fn main() {
    let ctx = setchain_bench::ExperimentCtx::from_env();
    println!("scale = {} (SETCHAIN_SCALE)", ctx.scale);
    setchain_bench::figures::fig4_latency_cdf(&ctx);
}
