//! Parameter sweeps: running many independent scenarios, one OS thread each
//! (bounded by the available parallelism).
//!
//! Each scenario is an independent deterministic simulation with no shared
//! mutable state, so the outer loop is embarrassingly parallel — the pattern
//! recommended by the HPC guides (parallelize the outer, independent work;
//! keep the inner simulation single-threaded and allocation-light).

use std::num::NonZeroUsize;
use std::thread;

use crossbeam::channel;

use crate::runner::{run_scenario, RunResult};
use crate::scenario::Scenario;

/// Runs every scenario and returns the results in the input order.
///
/// `parallelism` bounds the number of worker threads; `None` uses the number
/// of available CPUs.
pub fn run_scenarios(scenarios: &[Scenario], parallelism: Option<usize>) -> Vec<RunResult> {
    if scenarios.is_empty() {
        return Vec::new();
    }
    let workers = parallelism
        .or_else(|| thread::available_parallelism().ok().map(NonZeroUsize::get))
        .unwrap_or(1)
        .clamp(1, scenarios.len());

    let (task_tx, task_rx) = channel::unbounded::<(usize, Scenario)>();
    let (result_tx, result_rx) = channel::unbounded::<(usize, RunResult)>();
    for (i, s) in scenarios.iter().enumerate() {
        task_tx.send((i, s.clone())).expect("queueing tasks");
    }
    drop(task_tx);

    thread::scope(|scope| {
        for _ in 0..workers {
            let task_rx = task_rx.clone();
            let result_tx = result_tx.clone();
            scope.spawn(move || {
                while let Ok((i, scenario)) = task_rx.recv() {
                    let result = run_scenario(&scenario);
                    if result_tx.send((i, result)).is_err() {
                        return;
                    }
                }
            });
        }
        drop(result_tx);
        let mut collected: Vec<(usize, RunResult)> = result_rx.iter().collect();
        collected.sort_by_key(|(i, _)| *i);
        collected.into_iter().map(|(_, r)| r).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use setchain::Algorithm;

    #[test]
    fn empty_input_returns_empty() {
        assert!(run_scenarios(&[], None).is_empty());
    }

    #[test]
    fn results_come_back_in_input_order() {
        let scenarios: Vec<Scenario> = [Algorithm::Hashchain, Algorithm::Compresschain]
            .iter()
            .map(|&a| {
                Scenario::base(a)
                    .with_servers(4)
                    .with_rate(100.0)
                    .with_collector(25)
                    .with_injection_secs(2)
                    .with_max_run_secs(20)
            })
            .collect();
        let results = run_scenarios(&scenarios, Some(2));
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].scenario.algorithm, Algorithm::Hashchain);
        assert_eq!(results[1].scenario.algorithm, Algorithm::Compresschain);
        for r in &results {
            assert!(r.added > 0);
        }
    }
}
