//! Configuration shared by the three Setchain algorithms.

use serde::{Deserialize, Serialize};
use setchain_simnet::SimDuration;

/// CPU cost model for the work Setchain servers perform.
///
/// The discrete-event simulator does not execute on the paper's hardware, so
/// cryptographic and compression work is charged as simulated CPU time using
/// these per-operation costs (calibrated to a mid-range Xeon: SHA-512 at
/// ~500 MB/s, ed25519 sign/verify in the tens of microseconds, Brotli at
/// ~100 MB/s). The costs are configuration so ablation benches can study
/// their impact.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CostModel {
    /// Validating one element (client authenticator check).
    pub validate_element: SimDuration,
    /// Producing one signature (epoch-proof or hash-batch).
    pub sign: SimDuration,
    /// Verifying one signature.
    pub verify_signature: SimDuration,
    /// Hashing 1 KiB of batch data.
    pub hash_per_kib: SimDuration,
    /// Compressing 1 KiB of batch data.
    pub compress_per_kib: SimDuration,
    /// Decompressing 1 KiB of batch data.
    pub decompress_per_kib: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            validate_element: SimDuration::from_micros(5),
            sign: SimDuration::from_micros(30),
            verify_signature: SimDuration::from_micros(60),
            hash_per_kib: SimDuration::from_micros(2),
            compress_per_kib: SimDuration::from_micros(10),
            decompress_per_kib: SimDuration::from_micros(5),
        }
    }
}

impl CostModel {
    /// Cost of hashing `bytes` of data.
    pub fn hash_cost(&self, bytes: usize) -> SimDuration {
        SimDuration::from_micros(self.hash_per_kib.as_micros() * (bytes as u64).div_ceil(1024))
    }

    /// Cost of compressing `bytes` of data.
    pub fn compress_cost(&self, bytes: usize) -> SimDuration {
        SimDuration::from_micros(self.compress_per_kib.as_micros() * (bytes as u64).div_ceil(1024))
    }

    /// Cost of decompressing into `bytes` of data.
    pub fn decompress_cost(&self, bytes: usize) -> SimDuration {
        SimDuration::from_micros(
            self.decompress_per_kib.as_micros() * (bytes as u64).div_ceil(1024),
        )
    }

    /// Cost of validating `count` elements.
    pub fn validate_cost(&self, count: usize) -> SimDuration {
        SimDuration::from_micros(self.validate_element.as_micros() * count as u64)
    }
}

/// How client submissions are authenticated server-side.
///
/// `#[non_exhaustive]`: further authentication schemes (e.g. aggregated
/// signatures) may be added; match with a wildcard arm.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AuthMode {
    /// Every element carries its own 8-byte MAC and servers verify each one
    /// (the paper's evaluated scheme, and the default).
    #[default]
    PerElement,
    /// Clients Merkle-batch their adds and MAC only the batch root
    /// ([`crate::AuthedBatch`]); servers verify once per batch and derive
    /// per-element validity from Merkle membership. Plain per-element adds
    /// keep working — this mode changes what the *workload drivers* send
    /// and adds the batch verification path, it removes nothing.
    BatchRoot,
}

/// Configuration of the persistent epoch store (see `setchain-store`).
///
/// When present on a [`SetchainConfig`], every server opens a
/// [`DiskStore`](setchain_store::DiskStore) under `dir/server-<index>`,
/// appends each epoch once it reaches its `f + 1` proof quorum, and on
/// restart replays the log back to the exact committed set before asking
/// peers for anything. Absent (the default), servers keep the pure in-RAM
/// path, byte-for-byte unchanged.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StoreConfig {
    /// Root directory of the store; each server uses `dir/server-<index>`.
    pub dir: String,
    /// Segment rotation budget in bytes (`#[serde(default)]`: 8 MiB).
    #[serde(default = "default_segment_bytes")]
    pub segment_bytes: u64,
    /// Bounded-memory mode: keep only the most recent `k` persisted epochs'
    /// elements resident in `the_set`/`history`, evicting older ones to the
    /// store with on-demand readback. `None` (the default) keeps everything
    /// in RAM alongside the log.
    #[serde(default)]
    pub retain_epochs: Option<u64>,
    /// Appends between element-index checkpoints; 0 disables checkpointing
    /// (`#[serde(default)]`: 64).
    #[serde(default = "default_checkpoint_every")]
    pub checkpoint_every: u64,
}

/// Serde default for [`StoreConfig::segment_bytes`].
fn default_segment_bytes() -> u64 {
    8 << 20
}

/// Serde default for [`StoreConfig::checkpoint_every`].
fn default_checkpoint_every() -> u64 {
    64
}

impl StoreConfig {
    /// A store rooted at `dir` with default segment budget and checkpoint
    /// cadence and no eviction.
    pub fn new(dir: impl Into<String>) -> Self {
        StoreConfig {
            dir: dir.into(),
            segment_bytes: default_segment_bytes(),
            retain_epochs: None,
            checkpoint_every: default_checkpoint_every(),
        }
    }

    /// Sets the segment rotation budget.
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes;
        self
    }

    /// Enables bounded-memory mode, retaining only the `k` most recent
    /// persisted epochs in RAM.
    pub fn with_retain_epochs(mut self, k: u64) -> Self {
        self.retain_epochs = Some(k);
        self
    }

    /// Sets the index checkpoint cadence (0 disables).
    pub fn with_checkpoint_every(mut self, appends: u64) -> Self {
        self.checkpoint_every = appends;
        self
    }
}

/// Per-client admission quotas (see [`crate::quota`]).
///
/// When present on a [`SetchainConfig`], every server runs a deterministic
/// token bucket per client in front of the whole admission path: elements
/// arriving from a client beyond its sustained `rate_per_sec` (with `burst`
/// of headroom) or while the client already has `max_pending` elements
/// awaiting an epoch are shed *before* any authenticator or batch-root
/// verification, and the client is told to back off with a
/// [`Rejected`](crate::SetchainMsg::Rejected) reply carrying a `retry_after`
/// hint. Absent (the default), admission is unmetered and the pipeline is
/// byte-for-byte the pre-quota path.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct QuotaConfig {
    /// Sustained admission rate per client, elements/second
    /// (`#[serde(default)]`: 2 000).
    #[serde(default = "default_rate_per_sec")]
    pub rate_per_sec: u64,
    /// Bucket capacity: how many elements a client may submit in one burst
    /// above the sustained rate (`#[serde(default)]`: 4 000).
    #[serde(default = "default_burst")]
    pub burst: u64,
    /// Maximum elements a client may have admitted but not yet stamped into
    /// an epoch; 0 disables the pending cap (`#[serde(default)]`: 50 000).
    #[serde(default = "default_max_pending")]
    pub max_pending: u64,
}

/// Serde default for [`QuotaConfig::rate_per_sec`].
fn default_rate_per_sec() -> u64 {
    2_000
}

/// Serde default for [`QuotaConfig::burst`].
fn default_burst() -> u64 {
    4_000
}

/// Serde default for [`QuotaConfig::max_pending`].
fn default_max_pending() -> u64 {
    50_000
}

impl Default for QuotaConfig {
    fn default() -> Self {
        QuotaConfig {
            rate_per_sec: default_rate_per_sec(),
            burst: default_burst(),
            max_pending: default_max_pending(),
        }
    }
}

impl QuotaConfig {
    /// A quota with the default rate, burst and pending cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the sustained per-client admission rate (elements/second).
    pub fn with_rate(mut self, per_sec: u64) -> Self {
        assert!(per_sec >= 1, "quota rate must be positive");
        self.rate_per_sec = per_sec;
        self
    }

    /// Sets the burst capacity (elements above the sustained rate).
    pub fn with_burst(mut self, burst: u64) -> Self {
        assert!(burst >= 1, "quota burst must be positive");
        self.burst = burst;
        self
    }

    /// Sets the per-client pending-element cap (0 disables it).
    pub fn with_max_pending(mut self, max_pending: u64) -> Self {
        self.max_pending = max_pending;
        self
    }
}

/// Configuration of a Setchain deployment (shared by all servers of a run).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SetchainConfig {
    /// Number of Setchain servers (the paper's `server_count`).
    pub servers: usize,
    /// Maximum number of Byzantine Setchain servers assumed (`f < n/2`).
    /// Epoch verification requires `f + 1` consistent proofs and Hashchain
    /// consolidation requires `f + 1` hash-batch signers.
    pub f: usize,
    /// Collector size: the batch is flushed when it holds this many entries
    /// (the paper's `collector_limit`: 100 or 500).
    pub collector_limit: usize,
    /// Collector timeout: a non-empty batch is flushed after this long even
    /// if the size threshold was not reached.
    pub collector_timeout: SimDuration,
    /// Timeout for a Hashchain `Request_batch` round trip before the request
    /// is retried with another signer (or the hash-batch is skipped).
    pub request_timeout: SimDuration,
    /// Maximum number of servers asked for a batch before giving up.
    pub max_request_retries: usize,
    /// Whether Hashchain runs the hash-reversal service ("Hashchain" vs
    /// "Hashchain light" in Fig. 2 left).
    pub hash_reversal: bool,
    /// Whether Compresschain decompresses and validates batches on block
    /// delivery ("Compresschain" vs "Compresschain light" in Fig. 2 left).
    pub decompress_validate: bool,
    /// Hashchain variant from the paper's discussion of the hash-reversal
    /// bottleneck: when `Some(k)`, only the first `k` servers (typically
    /// `2f + 1`) counter-sign hash-batches and emit epoch-proofs, instead of
    /// all `n`. Must satisfy `k >= f + 1` so consolidation and commitment
    /// remain possible with `f` Byzantine servers. `None` (the default) is
    /// the paper's evaluated algorithm where every server signs.
    pub designated_signers: Option<usize>,
    /// Hashchain variant from the paper's discussion: when true, a server
    /// that flushes a batch proactively pushes the batch contents to all
    /// other servers ("alternative distributed batch-sharing mechanism"), so
    /// hash reversal rarely needs a `Request_batch` round trip.
    pub push_batches: bool,
    /// How client submissions are authenticated (`#[serde(default)]`:
    /// configurations written before batch authentication existed read back
    /// as [`AuthMode::PerElement`]).
    #[serde(default)]
    pub auth_mode: AuthMode,
    /// Number of admission shards per server (see [`crate::shard`]): the
    /// element-id space is partitioned by a deterministic consistent-hash
    /// ring into this many independent admission caches, validation
    /// pipelines and `the_set` partitions. Purely host-side organization —
    /// verdicts, schedules and epoch digests are identical for every value
    /// — so `1` (the unsharded pipeline) is the standing correctness
    /// oracle. `#[serde(default = ...)]`: configurations written before
    /// sharding existed read back unsharded.
    #[serde(default = "default_shards")]
    pub shards: usize,
    /// Persistent epoch storage; `None` (the default, and what
    /// configurations written before the store existed read back as) keeps
    /// the pure in-RAM path.
    #[serde(default)]
    pub store: Option<StoreConfig>,
    /// Per-client admission quotas; `None` (the default, and what
    /// configurations written before overload protection existed read back
    /// as) leaves admission unmetered — the exact pre-quota path.
    #[serde(default)]
    pub quota: Option<QuotaConfig>,
    /// CPU cost model.
    pub costs: CostModel,
}

/// Serde default for [`SetchainConfig::shards`]: pre-sharding
/// configurations deserialize to the unsharded pipeline, not to zero
/// shards.
fn default_shards() -> usize {
    1
}

impl SetchainConfig {
    /// Default configuration for `n` servers: `f = ⌊(n-1)/2⌋`, collector
    /// limit 100, collector timeout 200 ms, full (non-light) algorithms.
    pub fn new(servers: usize) -> Self {
        assert!(servers >= 1, "at least one server required");
        SetchainConfig {
            servers,
            f: (servers.saturating_sub(1)) / 2,
            collector_limit: 100,
            collector_timeout: SimDuration::from_millis(200),
            request_timeout: SimDuration::from_millis(2_000),
            max_request_retries: 3,
            hash_reversal: true,
            decompress_validate: true,
            designated_signers: None,
            push_batches: false,
            auth_mode: AuthMode::default(),
            shards: default_shards(),
            store: None,
            quota: None,
            costs: CostModel::default(),
        }
    }

    /// Sets the collector limit (paper values: 100 or 500).
    pub fn with_collector_limit(mut self, limit: usize) -> Self {
        assert!(limit >= 1, "collector limit must be positive");
        self.collector_limit = limit;
        self
    }

    /// Sets the Setchain fault bound `f` explicitly.
    pub fn with_f(mut self, f: usize) -> Self {
        assert!(f < self.servers, "need f < n");
        self.f = f;
        self
    }

    /// Disables hash-reversal and hash-batch validation (Hashchain light).
    pub fn light_hashchain(mut self) -> Self {
        self.hash_reversal = false;
        self
    }

    /// Disables decompression and validation on delivery (Compresschain
    /// light).
    pub fn light_compresschain(mut self) -> Self {
        self.decompress_validate = false;
        self
    }

    /// Restricts hash-batch counter-signing and epoch-proof emission to the
    /// first `k` servers (the paper suggests `2f + 1`).
    pub fn with_designated_signers(mut self, k: usize) -> Self {
        assert!(
            k > self.f && k <= self.servers,
            "designated signer set must satisfy f < k <= n"
        );
        self.designated_signers = Some(k);
        self
    }

    /// Enables push-based batch dissemination for Hashchain.
    pub fn with_push_batches(mut self) -> Self {
        self.push_batches = true;
        self
    }

    /// Sets the submission authentication mode (default
    /// [`AuthMode::PerElement`]).
    pub fn with_auth_mode(mut self, mode: AuthMode) -> Self {
        self.auth_mode = mode;
        self
    }

    /// Sets the number of admission shards per server (default 1, the
    /// unsharded pipeline).
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard required");
        self.shards = shards;
        self
    }

    /// Enables persistent epoch storage (default off: pure in-RAM state).
    pub fn with_store(mut self, store: StoreConfig) -> Self {
        self.store = Some(store);
        self
    }

    /// Enables per-client admission quotas (default off: unmetered
    /// admission, the exact pre-quota path).
    pub fn with_quota(mut self, quota: QuotaConfig) -> Self {
        self.quota = Some(quota);
        self
    }

    /// Number of proofs/signers required to trust an epoch (`f + 1`).
    pub fn proof_quorum(&self) -> usize {
        self.f + 1
    }

    /// True if the server with this index participates in hash-batch
    /// counter-signing and epoch-proof emission (always true unless a
    /// designated signer set is configured).
    pub fn is_designated(&self, server_index: usize) -> bool {
        match self.designated_signers {
            Some(k) => server_index < k,
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_fault_bound_is_minority() {
        assert_eq!(SetchainConfig::new(4).f, 1);
        assert_eq!(SetchainConfig::new(7).f, 3);
        assert_eq!(SetchainConfig::new(10).f, 4);
        assert_eq!(SetchainConfig::new(10).proof_quorum(), 5);
    }

    #[test]
    fn builder_methods() {
        let cfg = SetchainConfig::new(10)
            .with_collector_limit(500)
            .with_f(3)
            .light_hashchain()
            .light_compresschain();
        assert_eq!(cfg.collector_limit, 500);
        assert_eq!(cfg.f, 3);
        assert!(!cfg.hash_reversal);
        assert!(!cfg.decompress_validate);
    }

    #[test]
    fn cost_model_scales_with_size() {
        let costs = CostModel::default();
        assert_eq!(costs.hash_cost(1024).as_micros(), 2);
        assert_eq!(costs.hash_cost(4096).as_micros(), 8);
        assert_eq!(costs.hash_cost(1).as_micros(), 2); // rounds up to one KiB
        assert_eq!(costs.validate_cost(100).as_micros(), 500);
        assert!(costs.compress_cost(10_000) > costs.decompress_cost(10_000));
    }

    #[test]
    fn auth_mode_defaults_to_per_element() {
        let cfg = SetchainConfig::new(4);
        assert_eq!(cfg.auth_mode, AuthMode::PerElement);
        assert_eq!(AuthMode::default(), AuthMode::PerElement);
        let cfg = cfg.with_auth_mode(AuthMode::BatchRoot);
        assert_eq!(cfg.auth_mode, AuthMode::BatchRoot);
    }

    #[test]
    fn designated_signers_and_push_batches() {
        let cfg = SetchainConfig::new(10); // f = 4
        assert!(cfg.is_designated(0));
        assert!(cfg.is_designated(9));
        assert!(!cfg.push_batches);
        let cfg = cfg.with_designated_signers(9).with_push_batches();
        assert!(cfg.is_designated(8));
        assert!(!cfg.is_designated(9));
        assert!(cfg.push_batches);
        assert_eq!(cfg.designated_signers, Some(9));
    }

    #[test]
    fn shards_default_to_the_unsharded_pipeline() {
        let cfg = SetchainConfig::new(4);
        assert_eq!(cfg.shards, 1);
        let cfg = cfg.with_shards(4);
        assert_eq!(cfg.shards, 4);
        // The serde default mirrors the constructor: pre-sharding
        // configurations (no `shards` key) must read back as the unsharded
        // pipeline, never as zero shards.
        assert_eq!(default_shards(), 1);
    }

    #[test]
    fn store_defaults_to_in_memory() {
        let cfg = SetchainConfig::new(4);
        assert!(cfg.store.is_none(), "no store unless configured");
        let cfg = cfg.with_store(StoreConfig::new("/tmp/setchain"));
        let store = cfg.store.expect("configured");
        assert_eq!(store.dir, "/tmp/setchain");
        // The serde defaults mirror the constructor, so pre-store
        // configurations (no `store` key) and sparse store configurations
        // both read back with working values.
        assert_eq!(store.segment_bytes, default_segment_bytes());
        assert_eq!(store.retain_epochs, None);
        assert_eq!(store.checkpoint_every, default_checkpoint_every());
        let tuned = StoreConfig::new("d")
            .with_segment_bytes(1024)
            .with_retain_epochs(8)
            .with_checkpoint_every(0);
        assert_eq!(tuned.segment_bytes, 1024);
        assert_eq!(tuned.retain_epochs, Some(8));
        assert_eq!(tuned.checkpoint_every, 0);
    }

    #[test]
    fn quota_defaults_to_unmetered_admission() {
        let cfg = SetchainConfig::new(4);
        assert!(cfg.quota.is_none(), "no quota unless configured");
        let cfg = cfg.with_quota(QuotaConfig::new());
        let quota = cfg.quota.expect("configured");
        // The serde defaults mirror the constructor, so pre-quota
        // configurations (no `quota` key) and sparse quota configurations
        // both read back with working values.
        assert_eq!(quota.rate_per_sec, default_rate_per_sec());
        assert_eq!(quota.burst, default_burst());
        assert_eq!(quota.max_pending, default_max_pending());
        let tuned = QuotaConfig::new()
            .with_rate(100)
            .with_burst(10)
            .with_max_pending(0);
        assert_eq!(tuned.rate_per_sec, 100);
        assert_eq!(tuned.burst, 10);
        assert_eq!(tuned.max_pending, 0);
    }

    #[test]
    #[should_panic(expected = "quota rate must be positive")]
    fn zero_quota_rate_panics() {
        let _ = QuotaConfig::new().with_rate(0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = SetchainConfig::new(4).with_shards(0);
    }

    #[test]
    #[should_panic(expected = "f < k <= n")]
    fn too_small_designated_set_panics() {
        // f = 4 for 10 servers; k must exceed f.
        let _ = SetchainConfig::new(10).with_designated_signers(4);
    }

    #[test]
    #[should_panic(expected = "f < n")]
    fn invalid_f_panics() {
        let _ = SetchainConfig::new(4).with_f(4);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        let _ = SetchainConfig::new(0);
    }
}
