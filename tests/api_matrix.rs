//! The variant-agnostic API matrix test: the *same* scripted client session
//! runs against all three Setchain algorithms through the `SetchainApp`
//! trait, and every variant must expose the same distributed object — the
//! identical committed element set, the same confirmed client adds, and
//! verified epochs for all of them.
//!
//! This is the executable form of the paper's framing: Vanilla,
//! Compresschain and Hashchain are three implementations of *one* Setchain,
//! differing in throughput, never in semantics.

use std::collections::BTreeSet;

use setchain::{Algorithm, AuthMode, ElementId};
use setchain_simnet::SimTime;
use setchain_workload::{Deployment, SessionOutcome};

const SIM_SECS: u64 = 30;

/// What one variant produced for the shared script.
struct VariantRun {
    algorithm: Algorithm,
    /// Ids committed into epochs by server 0 (background load + session).
    committed: BTreeSet<ElementId>,
    /// The session's add receipts.
    session_ids: BTreeSet<ElementId>,
    /// The session's typed outcome.
    outcome: SessionOutcome,
}

/// Runs the identical scripted session against one algorithm. Nothing in
/// this function names a variant: the algorithm arrives as data and is
/// resolved once, inside the deployment's `AppFactory`.
///
/// Under [`AuthMode::BatchRoot`] the injection clients seal every tick into
/// one root-MACed batch, and the session submits its five adds as a single
/// Merkle-batched `add_batch` instead of five per-element `add`s.
fn drive(algorithm: Algorithm, auth: AuthMode) -> VariantRun {
    let mut deployment = Deployment::builder(algorithm)
        .label(format!("api matrix {algorithm}"))
        .servers(4)
        .rate(200.0)
        .collector(25)
        .injection_secs(4)
        .max_run_secs(SIM_SECS)
        .auth_mode(auth)
        .seed(99)
        .build();

    let mut session = deployment.client_session(400, 0xAB1E);
    let session_ids: BTreeSet<ElementId> = match auth {
        AuthMode::BatchRoot => {
            let receipt = session.add_batch(
                SimTime::from_millis(700),
                0,
                (0..5u64).map(|i| (438, 77 + i)),
            );
            receipt.ids.iter().copied().collect()
        }
        _ => (0..5)
            .map(|i| {
                session
                    .add(
                        SimTime::from_millis(700 + i * 120),
                        (i % 4) as usize,
                        438,
                        77 + i,
                    )
                    .id
            })
            .collect(),
    };
    session.get(SimTime::from_secs(22), 3);
    session.get_epochs(SimTime::from_secs(23), 3, 1..=30);
    session.install(&mut deployment);

    deployment.sim.run_until(SimTime::from_secs(SIM_SECS));

    // Collect the committed element set through the trait-backed handle.
    let state = deployment.server(0).state();
    let committed: BTreeSet<ElementId> = (1..=state.epoch())
        .flat_map(|e| {
            state
                .epoch_elements(e)
                .expect("epoch in range")
                .iter()
                .map(|el| el.id)
                .collect::<Vec<_>>()
        })
        .collect();

    // The handle reports the algorithm it actually runs.
    for i in 0..4 {
        assert_eq!(deployment.server(i).algorithm(), algorithm);
        assert_eq!(deployment.server(i).app().config().servers, 4);
    }

    let outcome = session.outcome(&deployment);
    VariantRun {
        algorithm,
        committed,
        session_ids,
        outcome,
    }
}

#[test]
fn same_session_same_object_across_all_three_variants() {
    check_matrix(AuthMode::PerElement);
}

/// The same matrix under batch-root authentication: one MAC per injected
/// batch instead of per-element verification must not change the object —
/// all three variants still commit the identical element set, and the
/// session's Merkle-batched adds are all confirmed.
#[test]
fn same_session_same_object_under_batch_root_authentication() {
    check_matrix(AuthMode::BatchRoot);
}

fn check_matrix(auth: AuthMode) {
    let runs: Vec<VariantRun> = Algorithm::ALL
        .into_iter()
        .map(|algorithm| drive(algorithm, auth))
        .collect();

    for run in &runs {
        let algorithm = run.algorithm;
        // Liveness: the deployment committed real work and every one of the
        // session's adds reached an epoch.
        assert!(
            run.committed.len() > 500,
            "{algorithm}: committed too little ({})",
            run.committed.len()
        );
        assert!(
            run.session_ids.is_subset(&run.committed),
            "{algorithm}: session adds missing from committed epochs"
        );
        // The session observed the object through a single server: a state
        // summary, verified epochs, and confirmation of all five adds.
        assert_eq!(run.outcome.snapshots.len(), 1, "{algorithm}");
        assert!(run.outcome.snapshots[0].snapshot.epochs_with_quorum > 0);
        assert!(
            run.outcome.verified_count() > 0,
            "{algorithm}: no epoch verified with f+1 proofs"
        );
        let expected: std::collections::HashSet<ElementId> =
            run.session_ids.iter().copied().collect();
        assert_eq!(
            run.outcome.confirmed_ids(),
            expected,
            "{algorithm}: confirmed adds differ from what the session sent"
        );
    }

    // The paper's claim, executable: all variants committed the *identical*
    // element set for the identical workload. (The partition into epochs
    // legitimately differs — Vanilla stamps per block, the batched
    // algorithms per batch — the *set* may not.)
    let reference = &runs[0];
    for other in &runs[1..] {
        assert_eq!(
            reference.committed, other.committed,
            "{} and {} disagree on the committed element set",
            reference.algorithm, other.algorithm
        );
    }
}
