//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace's benches use (`criterion_group!`,
//! `criterion_main!`, benchmark groups, `bench_function`/`bench_with_input`,
//! `Throughput`, `BenchmarkId`) with a plain warmup-then-measure timing loop
//! instead of criterion's statistical machinery. Each benchmark reports the
//! mean wall-clock time per iteration and, when a throughput was declared,
//! the derived rate.
//!
//! The point is to keep the bench harness compiling, runnable, and honest
//! enough to catch order-of-magnitude regressions in CI smoke runs; serious
//! measurement should swap in the real crate (one line in the workspace
//! manifest).

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spent measuring each benchmark (after warmup).
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// Top-level harness handle; one per `criterion_group!` run.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        run_one(&id.to_string(), None, &mut f);
    }
}

/// Declared work-per-iteration, used to derive a rate from the mean time.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted and ignored: the shim sizes its sample by wall-clock budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted and ignored, like `sample_size`.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.throughput, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// `function/parameter` benchmark identifier.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    /// Parameter-only id, like the real crate's `BenchmarkId::from_parameter`.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Passed to the benchmark closure; `iter` runs the measured routine.
pub struct Bencher {
    /// Total time spent inside `iter` bodies this batch.
    elapsed: Duration,
    /// Iterations the harness asks for in the current batch.
    iterations: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, f: &mut F) {
    // Warmup: grow the batch size until one batch costs ~the warmup budget.
    let mut iterations: u64 = 1;
    loop {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iterations,
        };
        f(&mut b);
        if b.elapsed >= WARMUP_BUDGET || iterations >= 1 << 20 {
            break;
        }
        iterations *= 2;
    }

    // Measure: run batches until the measurement budget is spent. The batch
    // cap (and the zero-elapsed break) bound the loop even if the closure
    // never calls `b.iter`, which would otherwise contribute zero time per
    // pass and spin forever.
    let mut total = Duration::ZERO;
    let mut count: u64 = 0;
    for _ in 0..10_000 {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iterations,
        };
        f(&mut b);
        total += b.elapsed;
        count += iterations;
        if total >= MEASURE_BUDGET || b.elapsed.is_zero() {
            break;
        }
    }

    let mean = total.as_secs_f64() / count.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) => format!("  ({}/s)", human_bytes(bytes as f64 / mean)),
        Some(Throughput::Elements(n)) => format!("  ({:.3e} elem/s)", n as f64 / mean),
        None => String::new(),
    };
    println!("bench {label:<50} {:>12}/iter{rate}", human_time(mean));
}

fn human_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn human_bytes(rate: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut rate = rate;
    let mut unit = 0;
    while rate >= 1024.0 && unit < UNITS.len() - 1 {
        rate /= 1024.0;
        unit += 1;
    }
    format!("{rate:.2} {}", UNITS[unit])
}

/// `criterion_group!(name, bench_fn, ...)`: bundles bench functions into one
/// callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// `criterion_main!(group, ...)`: the bench binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` (and cargo's harness probing) pass
            // flags like --test/--list; a smoke-run of every benchmark is
            // wrong there, so only benchmark on a bare invocation.
            let bench_args: Vec<String> = std::env::args().skip(1).collect();
            if bench_args.iter().any(|a| a == "--test" || a == "--list") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loop_runs_the_routine() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        let mut runs = 0u64;
        group.throughput(Throughput::Elements(1));
        group.bench_function("counter", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn id_and_units_format() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(human_time(2.5), "2.500 s");
        assert_eq!(human_time(2.5e-3), "2.500 ms");
        assert_eq!(human_time(2.5e-7), "250.0 ns");
        assert_eq!(human_bytes(2048.0), "2.00 KiB");
    }
}
