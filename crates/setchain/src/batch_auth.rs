//! Batch-level authentication: one MAC over the Merkle root of a whole
//! submission instead of one MAC per element.
//!
//! Per-element validation costs two SHA-256 compressions per element (the
//! HMAC over its 20-byte authenticator message, with the key schedule
//! precomputed) — the validation floor the PR 5 perf notes call irreducible
//! *per element*. Batch authentication moves the authenticator up one level:
//! the client builds a Merkle tree over its batch, MACs the root once
//! ([`AuthedBatch::seal`]), and a server verifies the whole batch by
//! recomputing the root and checking one MAC ([`AuthedBatch::verify`]).
//! Per-element validity then follows from Merkle membership.
//!
//! The tree does **not** use one leaf per element: with 36-byte packed
//! identities a leaf-per-element tree costs ~3 compressions per element —
//! *more* than the per-element MACs it replaces, because every leaf and
//! every internal node is its own compression. Instead [`BATCH_CHUNK`]
//! packed identities share one leaf: hashing a 288-byte leaf costs 5
//! compressions (0.625/element) and the internal nodes add ~0.25/element,
//! ~0.875 compressions per element overall — about 2.3× cheaper than
//! per-element MACs, and re-gossiped batches are recognised by root without
//! hashing anything at all (see `AdmissionCache`).
//!
//! The root MAC binds the owning client, the element count and the root
//! (see `setchain_crypto::mac_batch_root`), so a replayed root MAC cannot
//! authenticate swapped, reordered, truncated or extended contents: any
//! such change moves the recomputed root away from the MAC'd one.

use setchain_crypto::{
    mac_batch_root, verify_batch_root, Digest256, HmacSha256Key, MerkleProof, MerkleTree, ProcessId,
};

use crate::element::Element;

/// Elements per Merkle leaf. Eight 36-byte packed identities fill a 288-byte
/// leaf — the sweet spot where leaf hashing amortises to well under one
/// SHA-256 compression per element while proofs stay one small chunk plus a
/// logarithmic path.
pub const BATCH_CHUNK: usize = 8;

/// The byte string hashed into one Merkle leaf: the packed identities of up
/// to [`BATCH_CHUNK`] consecutive elements.
fn chunk_bytes(chunk: &[Element]) -> Vec<u8> {
    let mut leaf = Vec::with_capacity(chunk.len() * Element::PACKED_LEN);
    for e in chunk {
        leaf.extend_from_slice(&e.pack());
    }
    leaf
}

/// Builds the chunked Merkle tree over `elements` in the given order.
pub fn batch_tree(elements: &[Element]) -> MerkleTree {
    let leaves: Vec<Vec<u8>> = elements.chunks(BATCH_CHUNK).map(chunk_bytes).collect();
    MerkleTree::build(&leaves)
}

/// The chunked Merkle root of `elements` in the given order — what one
/// batch MAC authenticates.
pub fn batch_root(elements: &[Element]) -> Digest256 {
    batch_tree(elements).root()
}

/// A client-sealed, batch-authenticated submission: the elements, the
/// chunked Merkle root over them, and one root MAC under the client's key.
///
/// Verification is all-or-nothing by design: tampering with *any* element
/// (or the order, or the count) changes the recomputed root and invalidates
/// the whole batch. That is the contract that lets servers derive
/// per-element validity from one MAC check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuthedBatch {
    /// The client that sealed (and thereby vouches for) the batch.
    pub client: ProcessId,
    /// The elements, in the order the tree was built over.
    pub elements: Vec<Element>,
    /// The chunked Merkle root of `elements`.
    pub root: Digest256,
    /// First 8 bytes of `HMAC-SHA-256(client_secret, domain ‖ client ‖
    /// count ‖ root)`.
    pub mac: u64,
}

impl AuthedBatch {
    /// Seals `elements` under `client`'s key schedule: builds the chunked
    /// tree and MACs its root once. The elements themselves are shipped
    /// as-is; their individual authenticators are untouched.
    pub fn seal(key: &HmacSha256Key, client: ProcessId, elements: Vec<Element>) -> Self {
        let root = batch_root(&elements);
        let mac = mac_batch_root(key, client, elements.len() as u64, &root);
        AuthedBatch {
            client,
            elements,
            root,
            mac,
        }
    }

    /// Verifies the whole batch under the claimed client's key schedule:
    /// every element must claim `self.client` (a non-server) and pass the
    /// size sanity check, the recomputed root must equal the MAC'd one, and
    /// the root MAC must verify. Empty batches never verify — there is
    /// nothing they could authenticate.
    ///
    /// The caller resolves `key` from the *claimed* client's registered
    /// key, exactly as per-element validation does; an unregistered client
    /// has no key and its batches are rejected before this call.
    pub fn verify(&self, key: &HmacSha256Key) -> bool {
        if self.elements.is_empty() || self.client.is_server() {
            return false;
        }
        if !self
            .elements
            .iter()
            .all(|e| e.client == self.client && e.size_in_bounds())
        {
            return false;
        }
        if batch_root(&self.elements) != self.root {
            return false;
        }
        verify_batch_root(
            key,
            self.client,
            self.elements.len() as u64,
            &self.root,
            self.mac,
        )
    }

    /// Total wire size of the batch payload: the elements plus the 32-byte
    /// root and the 8-byte MAC.
    pub fn wire_size(&self) -> usize {
        32 + 8 + self.elements.iter().map(|e| e.wire_size()).sum::<usize>()
    }
}

/// An inclusion proof for one element against a chunked batch (or epoch)
/// root: the leaf chunk the element lives in, the element's offset inside
/// it, and the Merkle path from that leaf to the root.
///
/// The verifier needs only the proof and the root — never the full element
/// list. The chunk rides along because leaves hash [`BATCH_CHUNK`] packed
/// identities at a time; it is at most `BATCH_CHUNK` elements, independent
/// of the batch size.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ElementProof {
    /// The elements of the leaf chunk containing the proven element.
    pub chunk: Vec<Element>,
    /// The proven element's offset within `chunk`.
    pub offset: usize,
    /// Merkle inclusion proof for the chunk leaf.
    pub leaf_proof: MerkleProof,
}

impl ElementProof {
    /// The element this proof speaks for.
    pub fn element(&self) -> Element {
        self.chunk[self.offset]
    }

    /// Verifies that `element` sits at this proof's position under `root`.
    pub fn verify(&self, element: &Element, root: &Digest256) -> bool {
        self.offset < self.chunk.len()
            && self.chunk.len() <= BATCH_CHUNK
            && self.chunk[self.offset] == *element
            && self.leaf_proof.verify(chunk_bytes(&self.chunk), root)
    }
}

/// Builds the inclusion proof for `elements[index]` against `tree`, which
/// must have been built over the same slice (see [`batch_tree`]). Panics if
/// `index` is out of range or the tree shape does not match.
pub fn prove_element(tree: &MerkleTree, elements: &[Element], index: usize) -> ElementProof {
    assert!(index < elements.len(), "element index out of range");
    assert_eq!(
        tree.len(),
        elements.len().div_ceil(BATCH_CHUNK),
        "tree was not built over these elements"
    );
    let leaf = index / BATCH_CHUNK;
    let start = leaf * BATCH_CHUNK;
    let chunk = elements[start..elements.len().min(start + BATCH_CHUNK)].to_vec();
    ElementProof {
        chunk,
        offset: index - start,
        leaf_proof: tree.prove(leaf),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setchain_crypto::{KeyRegistry, ProcessId};

    fn registry() -> KeyRegistry {
        KeyRegistry::bootstrap(11, 4, 3)
    }

    fn sealed_batch(reg: &KeyRegistry, client: usize, n: usize) -> (AuthedBatch, HmacSha256Key) {
        let keys = reg.lookup(ProcessId::client(client)).unwrap();
        let mut gen = crate::element::ElementGenerator::new(keys);
        let elements: Vec<Element> = (0..n).map(|i| gen.next_element(438, i as u64)).collect();
        let key = gen.auth_key().clone();
        (AuthedBatch::seal(&key, keys.id, elements), key)
    }

    #[test]
    fn sealed_batches_verify_at_many_sizes() {
        let reg = registry();
        for n in [1usize, 2, 7, 8, 9, 16, 63, 64, 65, 256] {
            let (batch, key) = sealed_batch(&reg, 0, n);
            assert!(batch.verify(&key), "n={n}");
            assert_eq!(batch.elements.len(), n);
        }
    }

    #[test]
    fn any_tampering_invalidates_the_whole_batch() {
        let reg = registry();
        let (batch, key) = sealed_batch(&reg, 0, 20);

        // Tamper one element (any field): the recomputed root moves.
        for i in [0usize, 7, 19] {
            let mut b = batch.clone();
            b.elements[i].content_seed ^= 1;
            assert!(!b.verify(&key), "tampered element {i} must kill the batch");
        }
        // Reorder: the root is order-sensitive.
        let mut swapped = batch.clone();
        swapped.elements.swap(0, 19);
        assert!(!swapped.verify(&key));
        // Truncate / extend: the count (and root) no longer match the MAC.
        let mut truncated = batch.clone();
        truncated.elements.pop();
        assert!(!truncated.verify(&key));
        let mut extended = batch.clone();
        let extra = extended.elements[0];
        extended.elements.push(extra);
        assert!(!extended.verify(&key));
        // Forge the MAC or the root directly.
        let mut forged = batch.clone();
        forged.mac ^= 1;
        assert!(!forged.verify(&key));
        let mut wrong_root = batch.clone();
        wrong_root.root = batch_root(&[]);
        assert!(!wrong_root.verify(&key));
    }

    #[test]
    fn replayed_root_with_swapped_elements_is_rejected() {
        // The root-replay attack the threat notes describe: keep the sealed
        // (root, mac) pair but substitute different element contents. The
        // recomputed root no longer matches the MAC'd one.
        let reg = registry();
        let keys = reg.lookup(ProcessId::client(0)).unwrap();
        let mut gen = crate::element::ElementGenerator::new(keys);
        // Two disjoint, individually valid 16-element batches from the same
        // client; only the first is sealed.
        let first: Vec<Element> = (0..16).map(|i| gen.next_element(438, i)).collect();
        let other: Vec<Element> = (16..32).map(|i| gen.next_element(438, i)).collect();
        let key = gen.auth_key().clone();
        let batch = AuthedBatch::seal(&key, keys.id, first);
        let mut replayed = batch.clone();
        replayed.elements = other;
        assert!(!replayed.verify(&key));
    }

    #[test]
    fn wrong_owner_or_key_is_rejected() {
        let reg = registry();
        let (batch, key) = sealed_batch(&reg, 0, 8);
        // Verified under someone else's key schedule.
        let other = reg.lookup(ProcessId::client(1)).unwrap();
        let other_key = HmacSha256Key::new(&other.secret.0);
        assert!(!batch.verify(&other_key));
        // Claimed for someone else: the elements' client field disagrees.
        let mut stolen = batch.clone();
        stolen.client = ProcessId::client(1);
        assert!(!stolen.verify(&key));
        assert!(!stolen.verify(&other_key));
        // A server cannot own a batch.
        let mut server_owned = batch.clone();
        server_owned.client = ProcessId::server(0);
        for e in &mut server_owned.elements {
            e.client = ProcessId::server(0);
        }
        assert!(!server_owned.verify(&key));
    }

    #[test]
    fn empty_batches_never_verify() {
        let reg = registry();
        let keys = reg.lookup(ProcessId::client(0)).unwrap();
        let key = HmacSha256Key::new(&keys.secret.0);
        let batch = AuthedBatch::seal(&key, keys.id, Vec::new());
        assert!(!batch.verify(&key));
    }

    #[test]
    fn element_proofs_verify_against_the_batch_root() {
        let reg = registry();
        for n in [1usize, 8, 9, 20, 65] {
            let (batch, _) = sealed_batch(&reg, 2, n);
            let tree = batch_tree(&batch.elements);
            assert_eq!(tree.root(), batch.root);
            for (i, e) in batch.elements.iter().enumerate() {
                let proof = prove_element(&tree, &batch.elements, i);
                assert_eq!(proof.element(), *e);
                assert!(proof.verify(e, &batch.root), "n={n} i={i}");
                assert!(proof.chunk.len() <= BATCH_CHUNK);
                // The proof speaks only for its own element.
                let other = batch.elements[(i + 1) % n];
                if other != *e {
                    assert!(!proof.verify(&other, &batch.root));
                }
            }
        }
    }

    #[test]
    fn element_proofs_fail_against_a_different_root() {
        let reg = registry();
        let (batch, _) = sealed_batch(&reg, 2, 12);
        let (other, _) = sealed_batch(&reg, 1, 12);
        let tree = batch_tree(&batch.elements);
        let proof = prove_element(&tree, &batch.elements, 3);
        assert!(!proof.verify(&batch.elements[3], &other.root));
        // A tampered chunk cannot sneak a foreign element in.
        let mut tampered = proof.clone();
        tampered.chunk[3] = other.elements[3];
        assert!(!tampered.verify(&other.elements[3], &batch.root));
    }

    #[test]
    fn batch_root_is_chunk_boundary_sensitive() {
        // Roots at n and n+1 elements differ even when the shared prefix is
        // identical: the count changes the leaf layout.
        let reg = registry();
        let (batch, _) = sealed_batch(&reg, 1, 9);
        let prefix_root = batch_root(&batch.elements[..8]);
        assert_ne!(prefix_root, batch.root);
        assert_ne!(batch_root(&batch.elements[..1]), prefix_root);
    }
}
