//! The per-server element admission cache.
//!
//! Every server must check each element's client authenticator (an HMAC)
//! before admitting it — the validation floor of the whole pipeline. An
//! element reaches a server many times (its own client `add`, peer batches,
//! block processing, re-gossip), so the verdict is memoized: the HMAC is
//! recomputed once per server, and every later arrival is a cache probe.
//!
//! The cache is keyed on the element id and guarded by the full identity
//! tuple `(client, size, content seed, mac)`: a hit requires *all* of them
//! to match the cached entry, so a Byzantine peer re-sending a tampered
//! element under a known id — same id, different contents or forged mac —
//! never inherits a cached `valid` verdict, and a re-gossip of a previously
//! rejected element stays rejected without ever whitelisting forgeries.
//!
//! What is deliberately **not** cached: verdicts that depend on a client
//! being absent from the PKI registry. Those can flip when the client
//! registers later, so the caller must re-derive them (see
//! [`ServerCore::element_valid`](crate::ServerCore::element_valid)).

use setchain_crypto::{Digest256, FxHashMap, ProcessId};

use crate::element::{Element, ElementId};

/// One memoized admission verdict: the exact identity of the element that
/// was validated, plus the verdict. 29 bytes per element, bounded by the
/// number of distinct element ids a server observes.
#[derive(Clone, Copy, Debug)]
struct AdmissionEntry {
    client: ProcessId,
    size: u32,
    content_seed: u64,
    auth: u64,
    verdict: bool,
}

impl AdmissionEntry {
    #[inline]
    fn matches(&self, e: &Element) -> bool {
        // The mac comparison comes first: it is the discriminating field
        // for tampered re-sends (a fabricated element under a known id
        // almost always carries a different authenticator).
        self.auth == e.auth
            && self.client == e.client
            && self.size == e.size
            && self.content_seed == e.content_seed
    }
}

/// One memoized batch-root verdict: the sealed batch's full identity —
/// owner, root MAC and the exact element list the root was verified over —
/// plus the verdict. The element list must be stored (not just the root):
/// equality against the probe is what proves the re-gossiped contents are
/// byte-identical to what was verified, without hashing anything. A
/// replayed root with swapped elements fails the comparison and falls
/// through to a fresh (failing) verification.
#[derive(Clone, Debug)]
struct RootEntry {
    client: ProcessId,
    mac: u64,
    elements: Vec<Element>,
    verdict: bool,
}

impl RootEntry {
    #[inline]
    fn matches(&self, batch: &crate::batch_auth::AuthedBatch) -> bool {
        self.mac == batch.mac && self.client == batch.client && self.elements == batch.elements
    }
}

/// Memoized admission verdicts for one server (see the module docs).
#[derive(Default)]
pub struct AdmissionCache {
    entries: FxHashMap<ElementId, AdmissionEntry>,
    roots: FxHashMap<Digest256, RootEntry>,
    hits: u64,
    misses: u64,
    root_hits: u64,
    root_misses: u64,
}

impl AdmissionCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Probes that were answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Probes that required a fresh authenticator check (first sight of an
    /// element, or an id re-sent with different contents).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The cached verdict for exactly this element, if present. A `None`
    /// means the caller must validate and then [`record`](Self::record).
    #[inline]
    pub fn lookup(&mut self, e: &Element) -> Option<bool> {
        match self.entries.get(&e.id) {
            Some(entry) if entry.matches(e) => {
                self.hits += 1;
                Some(entry.verdict)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records the verdict for this exact element, replacing whatever was
    /// cached under its id.
    #[inline]
    pub fn record(&mut self, e: &Element, verdict: bool) {
        self.entries.insert(
            e.id,
            AdmissionEntry {
                client: e.client,
                size: e.size,
                content_seed: e.content_seed,
                auth: e.auth,
                verdict,
            },
        );
    }

    /// Pre-sizes the cache for `additional` upcoming insertions — called
    /// with the observed miss count of a batch before its verdicts are
    /// recorded, so bulk validation does not rehash the table mid-batch.
    pub fn reserve(&mut self, additional: usize) {
        self.entries.reserve(additional);
    }

    /// The cached verdict for exactly this sealed batch, if present: same
    /// root, same owner, same MAC *and* the identical element list. On a
    /// hit, a re-gossiped batch is admitted (or re-rejected) with zero
    /// hashing — the dominant case once a batch has been verified by its
    /// first receiving server and forwarded to the peers.
    #[inline]
    pub fn lookup_root(&mut self, batch: &crate::batch_auth::AuthedBatch) -> Option<bool> {
        match self.roots.get(&batch.root) {
            Some(entry) if entry.matches(batch) => {
                self.root_hits += 1;
                Some(entry.verdict)
            }
            _ => {
                self.root_misses += 1;
                None
            }
        }
    }

    /// Records the verdict for this exact sealed batch, replacing whatever
    /// was cached under its root.
    pub fn record_root(&mut self, batch: &crate::batch_auth::AuthedBatch, verdict: bool) {
        self.roots.insert(
            batch.root,
            RootEntry {
                client: batch.client,
                mac: batch.mac,
                elements: batch.elements.clone(),
                verdict,
            },
        );
    }

    /// Number of cached batch-root verdicts.
    pub fn root_len(&self) -> usize {
        self.roots.len()
    }

    /// Batch probes answered from the root cache.
    pub fn root_hits(&self) -> u64 {
        self.root_hits
    }

    /// Batch probes that required a fresh root verification.
    pub fn root_misses(&self) -> u64 {
        self.root_misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setchain_crypto::KeyRegistry;

    fn client_element(seq: u64) -> Element {
        let reg = KeyRegistry::bootstrap(3, 2, 2);
        let keys = reg.lookup(ProcessId::client(0)).unwrap();
        Element::new(&keys, ElementId::new(0, seq), 438, seq)
    }

    #[test]
    fn lookup_miss_then_hit_roundtrip() {
        let mut cache = AdmissionCache::new();
        let e = client_element(1);
        assert!(cache.is_empty());
        assert_eq!(cache.lookup(&e), None);
        cache.record(&e, true);
        assert_eq!(cache.lookup(&e), Some(true));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn any_identity_field_change_misses() {
        let mut cache = AdmissionCache::new();
        let e = client_element(2);
        cache.record(&e, true);
        for tamper in [
            |e: &mut Element| e.auth ^= 1,
            |e: &mut Element| e.size += 1,
            |e: &mut Element| e.content_seed ^= 0xFF,
            |e: &mut Element| e.client = ProcessId::client(1),
        ] {
            let mut t = e;
            tamper(&mut t);
            assert_eq!(cache.lookup(&t), None, "tampered field must not hit");
        }
        // The genuine element still hits.
        assert_eq!(cache.lookup(&e), Some(true));
    }

    #[test]
    fn rejected_verdicts_are_cached_and_stay_rejected() {
        let mut cache = AdmissionCache::new();
        let forged = Element::forged(ProcessId::client(0), ElementId::new(0, 9), 200);
        cache.record(&forged, false);
        // Re-gossip of the same forged element: cached rejection, no
        // whitelisting.
        assert_eq!(cache.lookup(&forged), Some(false));
    }

    #[test]
    fn root_cache_hits_only_on_the_identical_sealed_batch() {
        use crate::batch_auth::AuthedBatch;
        use setchain_crypto::HmacSha256Key;

        let reg = KeyRegistry::bootstrap(3, 2, 2);
        let keys = reg.lookup(ProcessId::client(0)).unwrap();
        let key = HmacSha256Key::new(&keys.secret.0);
        let elements: Vec<Element> = (0..10)
            .map(|i| Element::new(&keys, ElementId::new(0, i), 438, i))
            .collect();
        let batch = AuthedBatch::seal(&key, keys.id, elements);

        let mut cache = AdmissionCache::new();
        assert_eq!(cache.lookup_root(&batch), None);
        cache.record_root(&batch, true);
        assert_eq!(cache.root_len(), 1);
        assert_eq!(
            cache.lookup_root(&batch),
            Some(true),
            "exact re-gossip hits"
        );

        // Same (root, mac) replayed with swapped elements: the element list
        // comparison fails, so the probe misses and the caller re-verifies.
        let mut swapped = batch.clone();
        swapped.elements.swap(0, 9);
        assert_eq!(cache.lookup_root(&swapped), None);
        // Tampered contents under the cached root likewise miss.
        let mut tampered = batch.clone();
        tampered.elements[0].auth ^= 1;
        assert_eq!(cache.lookup_root(&tampered), None);
        // A different claimed owner or MAC misses too.
        let mut stolen = batch.clone();
        stolen.client = ProcessId::client(1);
        assert_eq!(cache.lookup_root(&stolen), None);
        let mut forged = batch.clone();
        forged.mac ^= 1;
        assert_eq!(cache.lookup_root(&forged), None);

        assert_eq!(cache.root_hits(), 1);
        assert_eq!(cache.root_misses(), 5);

        // Rejections are cached the same way.
        cache.record_root(&forged, false);
        assert_eq!(cache.lookup_root(&forged), Some(false));
    }

    #[test]
    fn reserve_is_observable_only_through_capacity() {
        let mut cache = AdmissionCache::new();
        cache.reserve(1000);
        assert!(cache.is_empty());
        let e = client_element(3);
        cache.record(&e, true);
        assert_eq!(cache.lookup(&e), Some(true));
    }
}
