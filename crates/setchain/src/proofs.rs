//! Epoch-proofs: server signatures over the hash of an epoch.
//!
//! An epoch-proof for epoch `i` is `Sign_v(Hash(i, history[i]))`. Proofs are
//! disseminated through the ledger (directly in Vanilla, inside batches in
//! Compresschain and Hashchain) and a client that collects `f + 1` consistent
//! proofs for an epoch knows at least one correct server vouches for it
//! (Property 8, Valid-Epoch).

use serde::{Deserialize, Serialize};
use setchain_crypto::{
    sign, sign_with, verify, Digest256, Digest512, HmacSha512Key, KeyPair, KeyRegistry, ProcessId,
    Sha512, Signature,
};

use crate::batch_auth::{batch_root, batch_tree, prove_element, ElementProof};
use crate::element::{Element, ElementId};

/// Wire length of an epoch-proof, as reported in the paper's evaluation
/// (139 bytes).
pub const EPOCH_PROOF_WIRE_LEN: usize = 139;

/// An epoch-proof `⟨i, p, v⟩`: epoch number, signature, signer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EpochProof {
    /// The epoch this proof vouches for.
    pub epoch: u64,
    /// The signing server.
    pub signer: ProcessId,
    /// Signature over `Hash(epoch, elements)`.
    pub signature: Signature,
}

/// Serializable summary of a proof (used in experiment reports).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EpochProofSummary {
    /// Epoch number.
    pub epoch: u64,
    /// Signer id.
    pub signer: u64,
}

impl EpochProof {
    /// Wire length (fixed, per the paper).
    pub fn wire_size(&self) -> usize {
        EPOCH_PROOF_WIRE_LEN
    }

    /// Summary for reports.
    pub fn summary(&self) -> EpochProofSummary {
        EpochProofSummary {
            epoch: self.epoch,
            signer: self.signer.0,
        }
    }
}

/// The epoch's elements in the canonical order the epoch digest commits to:
/// ascending id (epochs are deduplicated by id when they are formed, so the
/// order is total).
fn canonical_order(elements: &[Element]) -> Vec<Element> {
    let mut sorted = elements.to_vec();
    sorted.sort_by_key(|e| e.id);
    sorted
}

/// The chunked Merkle root over the epoch's elements in canonical (ascending
/// id) order — the commitment the epoch digest is built from, and the root
/// element→epoch inclusion proofs verify against (see
/// [`prove_epoch_inclusion`]).
pub fn epoch_root(elements: &[Element]) -> Digest256 {
    batch_root(&canonical_order(elements))
}

/// Canonical hash of an epoch: `Hash(i, history[i])`, computed as
/// `SHA-512(domain ‖ epoch ‖ count ‖ epoch_root(history[i]))`.
///
/// Elements are committed in ascending id order so that the digest does not
/// depend on the incidental order a server stored them in. Routing the
/// element bytes through the chunked Merkle root (rather than hashing them
/// into the SHA-512 stream directly) is what lets a light client verify a
/// *single element's* membership against `f + 1` signed digests from the
/// `(epoch, count, root)` triple and a logarithmic proof — it never needs
/// the epoch's element set (see [`EpochInclusionProof`]).
pub fn epoch_hash(epoch: u64, elements: &[Element]) -> Digest512 {
    epoch_hash_for_root(epoch, elements.len() as u64, &epoch_root(elements))
}

/// [`epoch_hash`] from the already-known commitment triple. This is the
/// light-client side of the split: given `(epoch, count, root)` it
/// reconstructs the exact digest the servers signed, without the elements.
pub fn epoch_hash_for_root(epoch: u64, count: u64, root: &Digest256) -> Digest512 {
    let mut h = Sha512::new();
    h.update(b"setchain-epoch");
    h.update(&epoch.to_le_bytes());
    h.update(&count.to_le_bytes());
    h.update(root.as_bytes());
    h.finalize()
}

/// A self-contained element→epoch membership proof: the epoch's commitment
/// triple plus the Merkle path of one element. Together with `f + 1`
/// epoch-proofs this convinces a light client that the element is in the
/// epoch — the epoch's element set is never shipped or inspected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpochInclusionProof {
    /// The epoch the element is claimed to be in.
    pub epoch: u64,
    /// Number of elements in that epoch (bound into the signed digest).
    pub count: u64,
    /// The epoch's chunked Merkle root (bound into the signed digest).
    pub root: Digest256,
    /// Merkle membership of the element under `root`.
    pub element: ElementProof,
}

impl EpochInclusionProof {
    /// Verifies the full chain `element → root → signed digest → f + 1
    /// distinct server signatures`: the element sits under the claimed
    /// root, and at least `f + 1` of the supplied epoch-proofs are valid
    /// signatures by distinct servers over the digest this proof's triple
    /// reconstructs — so at least one correct server vouches for exactly
    /// this commitment.
    pub fn verify(
        &self,
        registry: &KeyRegistry,
        servers: usize,
        f: usize,
        element: &Element,
        proofs: &[EpochProof],
    ) -> bool {
        if !self.element.verify(element, &self.root) {
            return false;
        }
        let digest = epoch_hash_for_root(self.epoch, self.count, &self.root);
        let mut signers = std::collections::HashSet::new();
        for proof in proofs {
            if proof.epoch == self.epoch
                && verify_epoch_proof_digest(registry, servers, proof, &digest)
            {
                signers.insert(proof.signer);
            }
        }
        signers.len() > f
    }
}

/// Builds the element→epoch inclusion proof for the element with `id` from
/// the epoch's full element set (the prover side: a server, or a session
/// that fetched the epoch). Returns `None` if no element with that id is in
/// the epoch.
pub fn prove_epoch_inclusion(
    epoch: u64,
    elements: &[Element],
    id: ElementId,
) -> Option<EpochInclusionProof> {
    let sorted = canonical_order(elements);
    let index = sorted.binary_search_by_key(&id, |e| e.id).ok()?;
    let tree = batch_tree(&sorted);
    Some(EpochInclusionProof {
        epoch,
        count: sorted.len() as u64,
        root: tree.root(),
        element: prove_element(&tree, &sorted, index),
    })
}

/// Creates the epoch-proof `p_v(i) = Sign_v(Hash(i, elements))`.
pub fn make_epoch_proof(keys: &KeyPair, epoch: u64, elements: &[Element]) -> EpochProof {
    make_epoch_proof_for_digest(keys, epoch, &epoch_hash(epoch, elements))
}

/// Creates an epoch-proof over an already-computed epoch digest.
///
/// Servers cache the digest of every epoch they record
/// ([`crate::SetchainState::epoch_digest`]), so signing and verifying proofs
/// does not re-hash the epoch's elements at every site.
pub fn make_epoch_proof_for_digest(keys: &KeyPair, epoch: u64, digest: &Digest512) -> EpochProof {
    EpochProof {
        epoch,
        signer: keys.id,
        signature: sign(keys, digest.as_bytes()),
    }
}

/// [`make_epoch_proof_for_digest`] through a precomputed HMAC key schedule
/// for `signer`: servers sign one proof per epoch, and the schedule spares
/// the per-signature key-pad absorptions.
pub fn make_epoch_proof_with_key(
    key: &HmacSha512Key,
    signer: ProcessId,
    epoch: u64,
    digest: &Digest512,
) -> EpochProof {
    EpochProof {
        epoch,
        signer,
        signature: sign_with(key, signer, digest.as_bytes()),
    }
}

/// The paper's `valid_proof(j, p, w, history[j])`: checks that `proof` is a
/// valid signature by its claimed signer over the hash of `elements` for its
/// claimed epoch, and that the signer is one of the `n` Setchain servers.
pub fn verify_epoch_proof(
    registry: &KeyRegistry,
    servers: usize,
    proof: &EpochProof,
    elements: &[Element],
) -> bool {
    verify_epoch_proof_digest(registry, servers, proof, &epoch_hash(proof.epoch, elements))
}

/// [`verify_epoch_proof`] against a cached epoch digest: same verdict, no
/// re-hash of the epoch elements.
pub fn verify_epoch_proof_digest(
    registry: &KeyRegistry,
    servers: usize,
    proof: &EpochProof,
    digest: &Digest512,
) -> bool {
    if proof.signature.signer != proof.signer {
        return false;
    }
    if !proof.signer.is_server() || proof.signer.server_index() >= servers {
        return false;
    }
    verify(registry, digest.as_bytes(), &proof.signature)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{Element, ElementId};
    use setchain_crypto::KeyRegistry;

    fn setup() -> (KeyRegistry, Vec<Element>) {
        let reg = KeyRegistry::bootstrap(3, 4, 2);
        let client = reg.lookup(ProcessId::client(0)).unwrap();
        let elements: Vec<Element> = (0..10)
            .map(|i| Element::new(&client, ElementId::new(0, i), 400 + i as u32, i))
            .collect();
        (reg, elements)
    }

    #[test]
    fn proof_roundtrip() {
        let (reg, elements) = setup();
        let server = reg.lookup(ProcessId::server(1)).unwrap();
        let proof = make_epoch_proof(&server, 3, &elements);
        assert_eq!(proof.epoch, 3);
        assert_eq!(proof.signer, ProcessId::server(1));
        assert_eq!(proof.wire_size(), 139);
        assert!(verify_epoch_proof(&reg, 4, &proof, &elements));
        assert_eq!(proof.summary().epoch, 3);
    }

    #[test]
    fn proof_rejects_wrong_epoch_or_elements() {
        let (reg, elements) = setup();
        let server = reg.lookup(ProcessId::server(1)).unwrap();
        let proof = make_epoch_proof(&server, 3, &elements);
        // Different epoch number.
        let mut wrong_epoch = proof;
        wrong_epoch.epoch = 4;
        assert!(!verify_epoch_proof(&reg, 4, &wrong_epoch, &elements));
        // Different element set.
        assert!(!verify_epoch_proof(&reg, 4, &proof, &elements[..9]));
    }

    #[test]
    fn proof_rejects_non_server_or_mismatched_signer() {
        let (reg, elements) = setup();
        let client = reg.lookup(ProcessId::client(0)).unwrap();
        let proof_by_client = make_epoch_proof(&client, 1, &elements);
        assert!(!verify_epoch_proof(&reg, 4, &proof_by_client, &elements));

        let server = reg.lookup(ProcessId::server(1)).unwrap();
        let mut mismatched = make_epoch_proof(&server, 1, &elements);
        mismatched.signer = ProcessId::server(2);
        assert!(!verify_epoch_proof(&reg, 4, &mismatched, &elements));

        // Signer outside the server set of this deployment.
        let outsider = reg.lookup(ProcessId::server(3)).unwrap();
        let proof = make_epoch_proof(&outsider, 1, &elements);
        assert!(!verify_epoch_proof(&reg, 3, &proof, &elements));
        assert!(verify_epoch_proof(&reg, 4, &proof, &elements));
    }

    #[test]
    fn epoch_hash_is_order_insensitive_but_content_sensitive() {
        let (_, elements) = setup();
        let mut reversed = elements.clone();
        reversed.reverse();
        assert_eq!(epoch_hash(1, &elements), epoch_hash(1, &reversed));
        assert_ne!(epoch_hash(1, &elements), epoch_hash(2, &elements));
        assert_ne!(epoch_hash(1, &elements), epoch_hash(1, &elements[..9]));
        let mut tampered = elements.clone();
        tampered[0].size += 1;
        assert_ne!(epoch_hash(1, &elements), epoch_hash(1, &tampered));
    }

    #[test]
    fn empty_epoch_hash_is_well_defined() {
        assert_eq!(epoch_hash(1, &[]), epoch_hash(1, &[]));
        assert_ne!(epoch_hash(1, &[]), epoch_hash(2, &[]));
    }

    #[test]
    fn epoch_hash_commits_to_the_root_triple() {
        let (_, elements) = setup();
        let root = epoch_root(&elements);
        assert_eq!(
            epoch_hash(5, &elements),
            epoch_hash_for_root(5, elements.len() as u64, &root)
        );
        // The root is order-insensitive like the hash.
        let mut reversed = elements.clone();
        reversed.reverse();
        assert_eq!(root, epoch_root(&reversed));
        assert_ne!(
            epoch_hash_for_root(5, elements.len() as u64, &root),
            epoch_hash_for_root(5, elements.len() as u64 + 1, &root),
            "count is bound into the digest"
        );
    }

    #[test]
    fn epoch_inclusion_proofs_verify_without_the_element_set() {
        let (reg, elements) = setup();
        let proofs: Vec<EpochProof> = [1usize, 2]
            .iter()
            .map(|&i| make_epoch_proof(&reg.lookup(ProcessId::server(i)).unwrap(), 3, &elements))
            .collect();
        for e in &elements {
            let incl = prove_epoch_inclusion(3, &elements, e.id).unwrap();
            assert_eq!(incl.epoch, 3);
            assert_eq!(incl.count, elements.len() as u64);
            // The verifier sees only the proof, the element and the
            // epoch-proofs — never `elements`.
            assert!(incl.verify(&reg, 4, 1, e, &proofs));
            // The proof speaks only for its own element.
            let other = &elements[(e.id.seq() as usize + 1) % elements.len()];
            assert!(!incl.verify(&reg, 4, 1, other, &proofs));
        }

        let incl = prove_epoch_inclusion(3, &elements, elements[0].id).unwrap();
        // Fewer than f + 1 distinct signers: rejected.
        assert!(!incl.verify(&reg, 4, 1, &elements[0], &proofs[..1]));
        assert!(incl.verify(&reg, 4, 0, &elements[0], &proofs[..1]));
        // A tampered triple breaks the signed digest.
        let mut wrong_epoch = incl.clone();
        wrong_epoch.epoch = 4;
        assert!(!wrong_epoch.verify(&reg, 4, 1, &elements[0], &proofs));
        let mut wrong_count = incl.clone();
        wrong_count.count += 1;
        assert!(!wrong_count.verify(&reg, 4, 1, &elements[0], &proofs));
        let mut wrong_root = incl.clone();
        wrong_root.root = epoch_root(&elements[..4]);
        assert!(!wrong_root.verify(&reg, 4, 1, &elements[0], &proofs));
        // Absent ids have no proof.
        assert!(prove_epoch_inclusion(3, &elements, ElementId::new(7, 7)).is_none());
    }
}
