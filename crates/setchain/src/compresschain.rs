//! Algorithm **Compresschain**: elements are collected into batches,
//! compressed, and each compressed batch is appended to the ledger as a
//! single transaction that becomes one epoch.
//!
//! Compared with Vanilla the ledger carries compressed batches instead of
//! individual elements, so each 0.5 MB block fits roughly `r ×` more element
//! bytes (with `r` the compression ratio, 2.5–3.5 in the paper). Epoch-proofs
//! travel inside the batches. The "Compresschain light" ablation of Fig. 2
//! (left) skips decompression and validation on delivery.

use setchain_crypto::{KeyPair, KeyRegistry, ProcessId};
use setchain_ledger::{Application, Block};
use setchain_simnet::TimerToken;

use crate::app::SetchainApp;
use crate::byzantine::ServerByzMode;
use crate::collector::Collector;
use crate::config::SetchainConfig;
use crate::element::Element;
use crate::messages::SetchainMsg;
use crate::server::{Ctx, ServerCore, ServerStats};
use crate::state::SetchainState;
use crate::tx::{CompressedBatch, SetchainTx};
use crate::Algorithm;

/// Timer token used for the collector timeout tick.
const COLLECTOR_TICK: TimerToken = 1;

/// Chunk length used when compressing batch bytes. Smaller than the codec's
/// 64 KiB default so that even a collector-64 batch (~28 KiB) splits into
/// chunks and a collector-256 batch fans out across several cores.
const BATCH_CHUNK_LEN: usize = 16 * 1024;

/// The Compresschain server application.
pub struct CompresschainApp {
    core: ServerCore,
    collector: Collector,
    next_batch_seq: u64,
    /// Sum of measured compression ratios and count, for reporting. Ratios
    /// are measured on the *shipped* chunked frame (headers included), so
    /// reported numbers match what actually occupies ledger blocks.
    ratio_sum: f64,
    ratio_count: u64,
    /// Reusable encode buffer the batch bytes are materialized into at
    /// flush time — no per-element or per-batch allocation.
    encode_buf: Vec<u8>,
    /// Reusable decode buffer delivered batch frames are decompressed into.
    decode_buf: Vec<u8>,
}

impl CompresschainApp {
    /// Creates a Compresschain server.
    pub fn new(
        keys: KeyPair,
        registry: KeyRegistry,
        config: SetchainConfig,
        trace: crate::trace::SetchainTrace,
        byz: ServerByzMode,
    ) -> Self {
        let collector = Collector::new(config.collector_limit);
        CompresschainApp {
            core: ServerCore::new(keys, registry, config, trace, byz),
            collector,
            next_batch_seq: 0,
            ratio_sum: 0.0,
            ratio_count: 0,
            encode_buf: Vec::new(),
            decode_buf: Vec::new(),
        }
    }

    /// The Setchain state of this server.
    pub fn state(&self) -> &SetchainState {
        &self.core.state
    }

    /// Server counters.
    pub fn stats(&self) -> ServerStats {
        self.core.stats
    }

    /// Average compression ratio measured on flushed batches.
    pub fn average_ratio(&self) -> f64 {
        if self.ratio_count == 0 {
            return 1.0;
        }
        self.ratio_sum / self.ratio_count as f64
    }

    fn handle_add(&mut self, element: Element, ctx: &mut Ctx<'_, '_, '_>) {
        if self.core.accept_add(&element, ctx) {
            self.collector.add_element(element);
            self.maybe_flush(ctx);
        }
    }

    /// Flushes the collector when the size threshold is reached.
    fn maybe_flush(&mut self, ctx: &mut Ctx<'_, '_, '_>) {
        if self.collector.is_ready() {
            self.flush(ctx);
        }
    }

    /// `upon isReady(batch)`: compress the batch and append it to the ledger.
    fn flush(&mut self, ctx: &mut Ctx<'_, '_, '_>) {
        let batch = self.collector.flush(ctx.now());
        // Materialize the batch bytes once, into the reusable encode buffer,
        // and run the real compressor (chunked frame, chunk-parallel on
        // multicore hosts) so the transaction occupies a realistic number of
        // bytes in blocks.
        let raw_len = batch.encode_elements_into(&mut self.encode_buf);
        let payload = setchain_compress::compress_chunked_with(&self.encode_buf, BATCH_CHUNK_LEN);
        ctx.consume_cpu(self.core.config.costs.compress_cost(raw_len));
        // Proofs contribute their wire size but are high-entropy signatures;
        // account for them uncompressed. The compressed side charges the
        // whole shipped frame — chunk headers included — so reported ratios
        // match what the ledger actually carries.
        let proof_bytes = batch.proofs.len() * crate::proofs::EPOCH_PROOF_WIRE_LEN;
        let original_size = (raw_len + proof_bytes) as u32;
        let compressed_size = (payload.len() + proof_bytes) as u32;
        if raw_len > 0 {
            self.ratio_sum += raw_len as f64 / payload.len().max(1) as f64;
            self.ratio_count += 1;
        }
        self.core.stats.batches_flushed += 1;
        let tx = CompressedBatch {
            origin: self.core.id(),
            seq: self.next_batch_seq,
            elements: batch.elements,
            proofs: batch.proofs,
            payload: std::sync::Arc::new(payload),
            compressed_size,
            original_size,
        };
        self.next_batch_seq += 1;
        let tx = SetchainTx::Compressed(tx);
        let tx_id = setchain_ledger::TxData::tx_id(&tx);
        if let SetchainTx::Compressed(cb) = &tx {
            for e in &cb.elements {
                self.core.trace.record_tx_assignment(e.id, tx_id);
            }
        }
        ctx.append(tx);
    }
}

impl SetchainApp for CompresschainApp {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Compresschain
    }

    fn state(&self) -> &SetchainState {
        &self.core.state
    }

    fn stats(&self) -> ServerStats {
        self.core.stats
    }

    fn shard_stats(&self) -> Vec<crate::server::ShardStats> {
        self.core.shard_stats()
    }

    fn config(&self) -> &SetchainConfig {
        &self.core.config
    }

    fn core(&self) -> &ServerCore {
        &self.core
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl Application for CompresschainApp {
    type Tx = SetchainTx;
    type Msg = SetchainMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, '_, '_>) {
        ctx.set_app_timer(self.core.config.collector_timeout, COLLECTOR_TICK);
        // After a restart (retained state) probe peers for missed epochs;
        // a cold start is a no-op.
        self.core.maybe_request_catchup(ctx);
    }

    fn check_tx(&self, tx: &SetchainTx) -> bool {
        match tx {
            SetchainTx::Compressed(b) => {
                b.origin.is_server() && b.origin.server_index() < self.core.config.servers
            }
            _ => false,
        }
    }

    fn finalize_block(&mut self, block: &Block<SetchainTx>, ctx: &mut Ctx<'_, '_, '_>) {
        let now = ctx.now();
        let validate = self.core.config.decompress_validate;
        for tx in &block.txs {
            let SetchainTx::Compressed(cb) = tx else {
                continue;
            };
            if validate {
                // Decompress(B[i]) — charged as CPU time against the original
                // (uncompressed) batch size.
                ctx.consume_cpu(
                    self.core
                        .config
                        .costs
                        .decompress_cost(cb.original_size as usize),
                );
                // ...and performed for real on peer batches: the chunked
                // frame decompresses chunk-parallel and the recovered byte
                // count must equal the batch's declared element bytes. The
                // origin skips its own frame — it built it from bytes it
                // already holds. "Compresschain light" skips all of this.
                if cb.origin != self.core.id() {
                    self.core.stats.batches_decompressed += 1;
                    let element_bytes = cb.original_size as usize
                        - cb.proofs.len() * crate::proofs::EPOCH_PROOF_WIRE_LEN;
                    let ok = setchain_compress::decompress_chunked_into(
                        &cb.payload,
                        &mut self.decode_buf,
                    )
                    .map(|n| n == element_bytes)
                    .unwrap_or(false);
                    if !ok {
                        // Carried elements stay authoritative for the
                        // simulated state; a frame that fails to decompress
                        // is counted (and would be a codec bug, not a
                        // Byzantine payload — those can't reach here).
                        debug_assert!(ok, "batch payload failed to decompress");
                        self.core.stats.batch_decompress_failures += 1;
                    }
                }
            }
            // `if batch_original = ∅ then continue`
            if cb.elements.is_empty() && cb.proofs.is_empty() {
                continue;
            }
            // Valid epoch-proofs of the batch.
            for p in &cb.proofs {
                self.core.ingest_proof(*p, now, ctx);
            }
            // G: valid elements not yet in an epoch.
            let g = self
                .core
                .extract_epoch_candidates(&cb.elements, validate, ctx);
            let (_, proof) = self.core.create_epoch(g, now, ctx);
            // The epoch-proof goes back through the collector.
            self.collector.add_proof(proof);
            self.maybe_flush(ctx);
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: SetchainMsg, ctx: &mut Ctx<'_, '_, '_>) {
        match msg {
            SetchainMsg::Add(e) => {
                if self.core.admit_source(from, 1, ctx) {
                    self.handle_add(e, ctx);
                }
            }
            SetchainMsg::AddBatch(es) => {
                if self.core.admit_source(from, es.len() as u64, ctx) {
                    for e in es {
                        self.handle_add(e, ctx);
                    }
                }
            }
            SetchainMsg::BatchedAdd(batch) => {
                // The quota gate runs first: a shed batch costs zero root
                // verification.
                if !self
                    .core
                    .admit_source(from, batch.elements.len() as u64, ctx)
                {
                    return;
                }
                // One root-cache probe / MAC check authenticates the whole
                // batch; the per-element admission probes inside
                // `handle_add` then hit the warmed cache.
                let valid = self.core.verify_batched_add(&batch, ctx);
                if from.is_server() {
                    // Peer-forwarded envelope: verifying it warmed this
                    // server's caches; the elements themselves arrive in
                    // compressed batches, whose delivery-time validation
                    // is then pure cache hits.
                } else if valid {
                    if self.core.byz != ServerByzMode::DropClientAdds {
                        self.core.gossip_batched_add(&batch, ctx);
                    }
                    for e in batch.elements {
                        self.handle_add(e, ctx);
                    }
                } else {
                    self.core.stats.adds_rejected_invalid += batch.elements.len() as u64;
                }
            }
            other => {
                let _ = self.core.handle_get(from, &other, ctx);
            }
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx<'_, '_, '_>) {
        if token == COLLECTOR_TICK {
            if self
                .collector
                .is_timed_out(ctx.now(), self.core.config.collector_timeout)
            {
                self.flush(ctx);
            }
            ctx.set_app_timer(self.core.config.collector_timeout, COLLECTOR_TICK);
        }
    }
}
