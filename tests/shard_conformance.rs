//! Shard conformance: the differential oracle harness for PR 8's
//! shard-aware admission.
//!
//! Sharding is *host-side organization only* — each server partitions its
//! admission caches, validation fan-out and `the_set` across a
//! consistent-hash ring, but nothing the simulation observes (messages,
//! CPU charges, verdicts) changes. The executable form of that claim: the
//! api_matrix scripted session, run at shards ∈ {1, 2, 4} across all three
//! variants and both authentication modes, must produce
//!
//! * the identical committed element set,
//! * the identical set of confirmed client adds, and
//! * the identical signed epoch digests, epoch by epoch,
//!
//! as the shards = 1 oracle (the exact pre-sharding code path). The epoch
//! digests are the strongest check: they are what servers sign and clients
//! verify, so equality proves the sharded sub-epoch aggregation reproduces
//! the unsharded Merkle commitment byte for byte.

use std::collections::BTreeSet;

use setchain::{Algorithm, AuthMode, ElementId};
use setchain_crypto::Digest512;
use setchain_simnet::SimTime;
use setchain_workload::Deployment;

const SIM_SECS: u64 = 30;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// What one (algorithm, auth, shards) run produced for the shared script.
struct ShardRun {
    /// Ids committed into epochs by server 0 (background load + session).
    committed: BTreeSet<ElementId>,
    /// The session's add receipts.
    session_ids: BTreeSet<ElementId>,
    /// The session's confirmed adds (observed through verified epochs).
    confirmed: BTreeSet<ElementId>,
    /// Epochs the session verified with an f+1 proof quorum.
    verified_epochs: usize,
    /// Server 0's signed digest for every committed epoch, in order.
    epoch_digests: Vec<Digest512>,
    /// Per-shard `the_set` partition sizes on server 0 (ring-ordered).
    shard_set_lens: Vec<u64>,
}

/// Runs the api_matrix scripted session with each server's admission
/// pipeline split across `shards` shards. Identical to the api_matrix
/// driver except for the `.shards(..)` knob — same seed, same script, same
/// observation points — so any divergence is attributable to sharding.
fn drive(algorithm: Algorithm, auth: AuthMode, shards: usize) -> ShardRun {
    let mut deployment = Deployment::builder(algorithm)
        .label(format!("shard conformance {algorithm} x{shards}"))
        .servers(4)
        .rate(200.0)
        .collector(25)
        .injection_secs(4)
        .max_run_secs(SIM_SECS)
        .auth_mode(auth)
        .shards(shards)
        .seed(99)
        .build();

    let mut session = deployment.client_session(400, 0xAB1E);
    let session_ids: BTreeSet<ElementId> = match auth {
        AuthMode::BatchRoot => {
            let receipt = session.add_batch(
                SimTime::from_millis(700),
                0,
                (0..5u64).map(|i| (438, 77 + i)),
            );
            receipt.ids.iter().copied().collect()
        }
        _ => (0..5)
            .map(|i| {
                session
                    .add(
                        SimTime::from_millis(700 + i * 120),
                        (i % 4) as usize,
                        438,
                        77 + i,
                    )
                    .id
            })
            .collect(),
    };
    session.get(SimTime::from_secs(22), 3);
    session.get_epochs(SimTime::from_secs(23), 3, 1..=30);
    session.install(&mut deployment);

    deployment.sim.run_until(SimTime::from_secs(SIM_SECS));

    let server = deployment.server(0);
    let state = server.state();
    let committed: BTreeSet<ElementId> = (1..=state.epoch())
        .flat_map(|e| {
            state
                .epoch_elements(e)
                .expect("epoch in range")
                .iter()
                .map(|el| el.id)
                .collect::<Vec<_>>()
        })
        .collect();
    let epoch_digests: Vec<Digest512> = (1..=state.epoch())
        .map(|e| *state.epoch_digest(e).expect("digest for committed epoch"))
        .collect();
    let shard_set_lens: Vec<u64> = server.shard_stats().iter().map(|s| s.set_len).collect();

    let outcome = session.outcome(&deployment);
    ShardRun {
        committed,
        session_ids,
        confirmed: outcome.confirmed_ids().into_iter().collect(),
        verified_epochs: outcome.verified_count(),
        epoch_digests,
        shard_set_lens,
    }
}

/// One (algorithm, auth) cell of the matrix: the sharded runs against the
/// shards = 1 oracle.
fn check_cell(algorithm: Algorithm, auth: AuthMode) {
    let oracle = drive(algorithm, auth, SHARD_COUNTS[0]);
    assert!(
        oracle.committed.len() > 500,
        "{algorithm}/{auth:?}: oracle committed too little ({})",
        oracle.committed.len()
    );
    assert!(
        oracle.verified_epochs > 0,
        "{algorithm}/{auth:?}: oracle verified no epochs"
    );
    assert_eq!(
        oracle.confirmed, oracle.session_ids,
        "{algorithm}/{auth:?}: oracle session adds unconfirmed"
    );
    assert_eq!(oracle.shard_set_lens.len(), 1, "oracle is unsharded");

    for &shards in &SHARD_COUNTS[1..] {
        let run = drive(algorithm, auth, shards);
        assert_eq!(
            run.committed, oracle.committed,
            "{algorithm}/{auth:?} x{shards}: committed element set diverged"
        );
        assert_eq!(
            run.confirmed, oracle.confirmed,
            "{algorithm}/{auth:?} x{shards}: confirmed adds diverged"
        );
        assert_eq!(
            run.verified_epochs, oracle.verified_epochs,
            "{algorithm}/{auth:?} x{shards}: verified epoch count diverged"
        );
        assert_eq!(
            run.epoch_digests, oracle.epoch_digests,
            "{algorithm}/{auth:?} x{shards}: signed epoch digests diverged"
        );
        // The sharded server holds the same set, partitioned: the per-shard
        // lengths cover every shard and sum to the oracle's single span.
        assert_eq!(run.shard_set_lens.len(), shards);
        assert_eq!(
            run.shard_set_lens.iter().sum::<u64>(),
            oracle.shard_set_lens[0],
            "{algorithm}/{auth:?} x{shards}: shard partition lost elements"
        );
    }
}

#[test]
fn vanilla_commits_identically_at_every_shard_count() {
    check_cell(Algorithm::Vanilla, AuthMode::PerElement);
    check_cell(Algorithm::Vanilla, AuthMode::BatchRoot);
}

#[test]
fn compresschain_commits_identically_at_every_shard_count() {
    check_cell(Algorithm::Compresschain, AuthMode::PerElement);
    check_cell(Algorithm::Compresschain, AuthMode::BatchRoot);
}

#[test]
fn hashchain_commits_identically_at_every_shard_count() {
    check_cell(Algorithm::Hashchain, AuthMode::PerElement);
    check_cell(Algorithm::Hashchain, AuthMode::BatchRoot);
}
