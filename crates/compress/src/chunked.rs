//! Framed, chunk-parallel LZ77 format.
//!
//! The single-stream format of [`crate::lz77`] is inherently sequential:
//! every token may reference bytes produced by any earlier token.
//! Compresschain flushes batches on a hot path and decompresses every batch
//! delivered through the ledger, so this module adds a *chunked* framing
//! that splits the input into independent chunks, each compressed as its own
//! single stream. Chunks share no window, so they compress and decompress in
//! parallel through [`setchain_crypto::parallel_map_min`], one worker per
//! chunk, with per-thread [`crate::Compressor`] scratch.
//!
//! # Wire format
//!
//! All integers are LEB128 varints ([`crate::varint`]):
//!
//! ```text
//! chunked := magic total_len chunk_count chunk{chunk_count}
//! chunk   := compressed_len stream          (stream: crate::lz77 format)
//! magic   := varint(CHUNKED_MAGIC)
//! ```
//!
//! `CHUNKED_MAGIC` is larger than [`MAX_DECLARED`], the cap the single-stream
//! decoder enforces on its leading `original_len` varint — so no valid
//! single stream starts with the magic, and [`crate::decompress_any`] can
//! dispatch on the first varint alone. Frame validation is strict: the
//! chunk count may not exceed `total_len` (every chunk of a well-formed
//! frame holds at least one byte), every chunk must decompress, the
//! concatenated output must have exactly `total_len` bytes, and no bytes may
//! follow the last chunk.
//!
//! Byte budget: the frame header costs `5 + len(total_len) + len(chunk_count)`
//! bytes plus one `compressed_len` varint per chunk — a few bytes per 64 KiB
//! chunk, which is why Compresschain's `CompressedBatch` accounting charges
//! the whole frame, headers included.

use crate::lz77::{decompress, Compressor, DecompressError, MAX_DECLARED};
use crate::varint::{read_u64, write_u64};

/// Marker distinguishing chunked frames from single streams. Deliberately
/// greater than [`MAX_DECLARED`] (the single-stream decoder rejects any
/// stream whose leading varint exceeds that), so the two formats are
/// unambiguous from the first varint.
pub const CHUNKED_MAGIC: u64 = 0x43_484E_4B31; // "CHNK1", read as a number

/// Default chunk length: 64 KiB balances parallel grain against the loss of
/// cross-chunk matches (the match window is per-chunk).
pub const DEFAULT_CHUNK_LEN: usize = 64 * 1024;

/// Chunk counts at or below this are compressed/decompressed sequentially;
/// above it the per-chunk work (tens of microseconds per 64 KiB) comfortably
/// amortizes a scoped-thread fan-out.
const MIN_PARALLEL_CHUNKS: usize = 2;

const _: () = assert!(CHUNKED_MAGIC > MAX_DECLARED);

/// Compresses `data` as a chunked frame with [`DEFAULT_CHUNK_LEN`] chunks.
///
/// ```
/// use setchain_compress::{compress_chunked, decompress_chunked, decompress_any};
/// let data: Vec<u8> = b"setchain ".iter().copied().cycle().take(100_000).collect();
/// let frame = compress_chunked(&data);
/// assert!(frame.len() < data.len());
/// assert_eq!(decompress_chunked(&frame).unwrap(), data);
/// // The sniffing entry point accepts chunked frames too.
/// assert_eq!(decompress_any(&frame).unwrap(), data);
/// ```
pub fn compress_chunked(data: &[u8]) -> Vec<u8> {
    compress_chunked_with(data, DEFAULT_CHUNK_LEN)
}

/// Compresses `data` as a chunked frame with the given chunk length.
///
/// # Panics
///
/// Panics if `chunk_len == 0` or `data` is longer than [`MAX_DECLARED`].
pub fn compress_chunked_with(data: &[u8], chunk_len: usize) -> Vec<u8> {
    assert!(chunk_len > 0, "chunk length must be positive");
    assert!(
        data.len() as u64 <= MAX_DECLARED,
        "input exceeds MAX_DECLARED"
    );
    let chunks: Vec<&[u8]> = data.chunks(chunk_len).collect();
    let compressed: Vec<Vec<u8>> = setchain_crypto::parallel_map_min(
        &chunks,
        setchain_crypto::default_threads(),
        MIN_PARALLEL_CHUNKS + 1,
        |chunk| crate::lz77::compress(chunk),
    );
    let body: usize = compressed.iter().map(|c| c.len() + 10).sum();
    let mut out = Vec::with_capacity(body + 24);
    write_u64(&mut out, CHUNKED_MAGIC);
    write_u64(&mut out, data.len() as u64);
    write_u64(&mut out, chunks.len() as u64);
    for chunk in &compressed {
        write_u64(&mut out, chunk.len() as u64);
        out.extend_from_slice(chunk);
    }
    out
}

/// Decompresses a chunked frame produced by [`compress_chunked`] /
/// [`compress_chunked_with`]. Chunks are decompressed in parallel and every
/// frame invariant is validated (see the module docs); malformed input
/// returns a [`DecompressError`], never panics.
pub fn decompress_chunked(data: &[u8]) -> Result<Vec<u8>, DecompressError> {
    let mut out = Vec::new();
    decompress_chunked_into(data, &mut out)?;
    Ok(out)
}

/// [`decompress_chunked`] into a caller-owned buffer (cleared first) — the
/// hot-path variant: a server that decompresses every delivered batch reuses
/// one buffer and performs no per-batch allocation. Single-threaded hosts
/// (and small frames) decode straight into `out`; multicore hosts fan the
/// chunks out and concatenate. Returns the decompressed length; `out` holds
/// partial data on error.
pub fn decompress_chunked_into(data: &[u8], out: &mut Vec<u8>) -> Result<usize, DecompressError> {
    out.clear();
    let mut pos = 0usize;
    let magic = read_u64(data, &mut pos).ok_or(DecompressError::Truncated)?;
    if magic != CHUNKED_MAGIC {
        return Err(DecompressError::NotChunked);
    }
    let total = read_u64(data, &mut pos).ok_or(DecompressError::Truncated)?;
    if total > MAX_DECLARED {
        return Err(DecompressError::DeclaredTooLarge(total));
    }
    let chunk_count = read_u64(data, &mut pos).ok_or(DecompressError::Truncated)?;
    if chunk_count > total {
        // Every chunk of a well-formed frame decompresses to >= 1 byte.
        return Err(DecompressError::BadChunkCount(chunk_count));
    }
    // ...and occupies at least 1 frame byte (its length varint), so a count
    // exceeding the remaining frame bytes is Byzantine — reject it *before*
    // sizing any allocation by it.
    if chunk_count > (data.len() - pos) as u64 {
        return Err(DecompressError::BadChunkCount(chunk_count));
    }

    // Scan the frame for the chunk boundaries first; decompression of the
    // chunk bodies then runs over independent slices.
    let mut bodies: Vec<&[u8]> = Vec::with_capacity(chunk_count as usize);
    for _ in 0..chunk_count {
        let len = read_u64(data, &mut pos).ok_or(DecompressError::Truncated)? as usize;
        let end = pos.checked_add(len).ok_or(DecompressError::Truncated)?;
        if end > data.len() {
            return Err(DecompressError::Truncated);
        }
        bodies.push(&data[pos..end]);
        pos = end;
    }
    if pos != data.len() {
        return Err(DecompressError::TrailingBytes(data.len() - pos));
    }

    let threads = setchain_crypto::default_threads();
    if threads <= 1 || bodies.len() <= MIN_PARALLEL_CHUNKS {
        // Sequential fast path: decode each chunk directly into `out`.
        out.reserve(total as usize);
        for body in &bodies {
            crate::lz77::decompress_into(body, out)?;
        }
    } else {
        let parts: Vec<Result<Vec<u8>, DecompressError>> =
            setchain_crypto::parallel_map_min(&bodies, threads, MIN_PARALLEL_CHUNKS + 1, |body| {
                decompress(body)
            });
        out.reserve(total as usize);
        for part in parts {
            out.extend_from_slice(&part?);
        }
    }
    if out.len() as u64 != total {
        return Err(DecompressError::LengthMismatch {
            declared: total as usize,
            actual: out.len(),
        });
    }
    Ok(out.len())
}

/// True if `data` starts with the chunked-frame magic.
pub fn is_chunked(data: &[u8]) -> bool {
    let mut pos = 0usize;
    read_u64(data, &mut pos) == Some(CHUNKED_MAGIC)
}

/// Decompresses either wire format: chunked frames are detected by their
/// magic, everything else is treated as a single stream. See the module docs
/// for why the dispatch is unambiguous.
pub fn decompress_any(data: &[u8]) -> Result<Vec<u8>, DecompressError> {
    if is_chunked(data) {
        decompress_chunked(data)
    } else {
        decompress(data)
    }
}

/// Compresses `data` through caller-owned scratch, chunked but sequential —
/// for callers that manage their own [`Compressor`] and prefer deterministic
/// single-thread execution (e.g. the discrete-event simulator's tests).
/// Produces bytes identical to [`compress_chunked_with`].
pub fn compress_chunked_into(
    compressor: &mut Compressor,
    data: &[u8],
    chunk_len: usize,
    out: &mut Vec<u8>,
) {
    assert!(chunk_len > 0, "chunk length must be positive");
    assert!(
        data.len() as u64 <= MAX_DECLARED,
        "input exceeds MAX_DECLARED"
    );
    write_u64(out, CHUNKED_MAGIC);
    write_u64(out, data.len() as u64);
    write_u64(out, data.len().div_ceil(chunk_len) as u64);
    let mut body = Vec::new();
    for chunk in data.chunks(chunk_len) {
        body.clear();
        compressor.compress_into(chunk, &mut body);
        write_u64(out, body.len() as u64);
        out.extend_from_slice(&body);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lz77::compress as compress_single;

    fn sample(len: usize) -> Vec<u8> {
        // Compressible, structured, non-trivial content.
        (0..len)
            .map(|i| match i % 7 {
                0..=3 => b'a' + (i % 4) as u8,
                4 => b'0' + ((i / 7) % 10) as u8,
                _ => b' ',
            })
            .collect()
    }

    #[test]
    fn chunked_roundtrip_across_sizes() {
        for len in [
            0usize,
            1,
            100,
            DEFAULT_CHUNK_LEN - 1,
            DEFAULT_CHUNK_LEN,
            300_000,
        ] {
            let data = sample(len);
            let frame = compress_chunked(&data);
            assert_eq!(decompress_chunked(&frame).unwrap(), data, "len={len}");
            assert_eq!(decompress_any(&frame).unwrap(), data, "len={len}");
        }
    }

    #[test]
    fn small_chunk_lengths_roundtrip() {
        let data = sample(10_000);
        for chunk_len in [1usize, 7, 100, 4096] {
            let frame = compress_chunked_with(&data, chunk_len);
            assert_eq!(decompress_chunked(&frame).unwrap(), data);
        }
    }

    #[test]
    fn sequential_into_matches_parallel_bytes() {
        let data = sample(200_000);
        let mut compressor = Compressor::new();
        let mut seq = Vec::new();
        compress_chunked_into(&mut compressor, &data, DEFAULT_CHUNK_LEN, &mut seq);
        assert_eq!(seq, compress_chunked(&data));
    }

    #[test]
    fn single_stream_is_not_mistaken_for_chunked() {
        let data = sample(5_000);
        let single = compress_single(&data);
        assert!(!is_chunked(&single));
        assert!(is_chunked(&compress_chunked(&data)));
        assert_eq!(decompress_any(&single).unwrap(), data);
        assert!(matches!(
            decompress_chunked(&single),
            Err(DecompressError::NotChunked)
        ));
    }

    #[test]
    fn bad_total_length_rejected() {
        let mut frame = Vec::new();
        write_u64(&mut frame, CHUNKED_MAGIC);
        write_u64(&mut frame, MAX_DECLARED + 1);
        write_u64(&mut frame, 0);
        assert!(matches!(
            decompress_chunked(&frame),
            Err(DecompressError::DeclaredTooLarge(_))
        ));
    }

    #[test]
    fn excessive_chunk_count_rejected() {
        let mut frame = Vec::new();
        write_u64(&mut frame, CHUNKED_MAGIC);
        write_u64(&mut frame, 4); // four bytes total...
        write_u64(&mut frame, 5); // ...but five chunks
        assert!(matches!(
            decompress_chunked(&frame),
            Err(DecompressError::BadChunkCount(5))
        ));
    }

    #[test]
    fn chunk_count_beyond_frame_bytes_rejected_before_allocation() {
        // A ~15-byte frame claiming 64Mi chunks passes the count<=total
        // check but must be rejected against the remaining frame length
        // before anything is allocated with the claimed capacity.
        let mut frame = Vec::new();
        write_u64(&mut frame, CHUNKED_MAGIC);
        write_u64(&mut frame, MAX_DECLARED);
        write_u64(&mut frame, MAX_DECLARED); // chunk_count == total
        assert!(matches!(
            decompress_chunked(&frame),
            Err(DecompressError::BadChunkCount(_))
        ));
    }

    #[test]
    fn truncated_chunk_rejected() {
        let data = sample(50_000);
        let mut frame = compress_chunked_with(&data, 8 * 1024);
        frame.truncate(frame.len() - 5);
        assert!(decompress_chunked(&frame).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let data = sample(10_000);
        let mut frame = compress_chunked(&data);
        frame.push(0x00);
        assert!(matches!(
            decompress_chunked(&frame),
            Err(DecompressError::TrailingBytes(1))
        ));
    }

    #[test]
    fn tampered_declared_total_is_caught() {
        let data = sample(10_000);
        let frame = compress_chunked(&data);
        // Rebuild the frame with a wrong total; chunk bodies unchanged.
        let mut pos = 0;
        assert_eq!(read_u64(&frame, &mut pos), Some(CHUNKED_MAGIC));
        let _total = read_u64(&frame, &mut pos).unwrap();
        let rest = &frame[pos..];
        let mut forged = Vec::new();
        write_u64(&mut forged, CHUNKED_MAGIC);
        write_u64(&mut forged, 9_999);
        forged.extend_from_slice(rest);
        assert!(matches!(
            decompress_chunked(&forged),
            Err(DecompressError::LengthMismatch { .. }) | Err(DecompressError::BadChunkCount(_))
        ));
    }

    #[test]
    fn corrupt_inner_stream_rejected_not_panicking() {
        let data = sample(30_000);
        let mut frame = compress_chunked_with(&data, 4 * 1024);
        // Flip a byte inside the first chunk body (past the three header
        // varints and the first chunk-length varint).
        let idx = 20.min(frame.len() - 1);
        frame[idx] ^= 0xFF;
        let _ = decompress_chunked(&frame); // must return, not panic
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Old-format and chunked-format compression are interchangeable:
            /// both decompress (through their own decoders and through
            /// `decompress_any`) to the original input.
            #[test]
            fn old_vs_chunked_equivalence(
                data in proptest::collection::vec(any::<u8>(), 0..8192),
                chunk_len in 1usize..3000,
            ) {
                let single = compress_single(&data);
                let chunked = compress_chunked_with(&data, chunk_len);
                prop_assert_eq!(crate::lz77::decompress(&single).unwrap(), data.clone());
                prop_assert_eq!(decompress_chunked(&chunked).unwrap(), data.clone());
                prop_assert_eq!(decompress_any(&single).unwrap(), data.clone());
                prop_assert_eq!(decompress_any(&chunked).unwrap(), data);
            }

            /// The chunked decoder never panics on arbitrary bytes, with or
            /// without a valid magic prefix.
            #[test]
            fn chunked_decoder_never_panics(
                data in proptest::collection::vec(any::<u8>(), 0..512),
                prepend_magic in any::<bool>(),
            ) {
                let mut frame = Vec::new();
                if prepend_magic {
                    write_u64(&mut frame, CHUNKED_MAGIC);
                }
                frame.extend_from_slice(&data);
                let _ = decompress_chunked(&frame);
                let _ = decompress_any(&frame);
            }
        }
    }
}
