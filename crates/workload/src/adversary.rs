//! Adversarial workload presets: deterministic attack clients that stress
//! the overload-protection path (per-client quotas, duplicate suppression,
//! bounded mempools) without touching the honest injection clients.
//!
//! Each preset is one [`AdversaryDriver`] actor — a single misbehaving
//! client identity with its own registered key — so per-client quotas
//! isolate honest traffic from it by construction. The driver deliberately
//! does **not** record into the shared experiment trace: attack elements are
//! not honest goodput and must never count toward the run's added/committed
//! totals. Everything the driver does derives from its own seeded RNG and
//! the simulated clock, so same-seed reruns are bit-identical.

use std::any::Any;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use setchain::{AuthedBatch, Element, SetchainMsg};
use setchain_crypto::{KeyPair, KeyRegistry, ProcessId};
use setchain_ledger::NetMsg;
use setchain_simnet::{Context, Process, SimDuration, SimTime, TimerToken};

use crate::driver::Msg;
use crate::generator::ArbitrumWorkload;

const ATTACK_TICK: TimerToken = 1;

/// Size of the one sealed batch a [`Adversary::ReplayStorm`] re-sends.
const REPLAY_BATCH: usize = 64;

/// Distinct elements in the [`Adversary::HotKeySkew`] hot set; picks are
/// Zipf-skewed over this pool, so a handful of elements absorb most sends.
const HOT_POOL: usize = 64;

/// Zipf exponent of the hot-key pick distribution.
const ZIPF_S: f64 = 1.2;

/// First client index [`Adversary::ChurnStorm`] registers from — far above
/// the injection clients and any test session so fresh identities never
/// collide with a legitimate one.
const CHURN_BASE: usize = 1 << 20;

/// An adversarial workload preset.
///
/// The enum is `#[non_exhaustive]`: new attack shapes will be added as the
/// protection surface grows. Parse user input with [`Adversary::parse`] and
/// enumerate with [`Adversary::ALL`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Adversary {
    /// One client floods a single server with valid, fresh elements at many
    /// times the honest per-client rate. Rate quotas shed the excess.
    FloodClient,
    /// The same sealed batch-authenticated submission is replayed over and
    /// over. The quota gate meters it *before* root verification, and
    /// admission dedup absorbs whatever gets through.
    ReplayStorm,
    /// Re-sends elements drawn Zipf-skewed from a small hot set: a few
    /// elements arrive over and over, exercising duplicate suppression
    /// under skew.
    HotKeySkew,
    /// Registers a fresh client identity every tick and sends one element
    /// signed by each — mass onboarding that floods the server's key-lookup
    /// and admission path with never-before-seen signers instead of
    /// exhausting any single bucket. Quota state is keyed by the
    /// authenticated network source, not the element signer, so the churn
    /// cannot bloat it.
    ChurnStorm,
}

impl Adversary {
    /// Every preset, in documentation order.
    pub const ALL: [Adversary; 4] = [
        Adversary::FloodClient,
        Adversary::ReplayStorm,
        Adversary::HotKeySkew,
        Adversary::ChurnStorm,
    ];

    /// Short name used in bench labels and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            Adversary::FloodClient => "flood",
            Adversary::ReplayStorm => "replay",
            Adversary::HotKeySkew => "hotkey",
            Adversary::ChurnStorm => "churn",
        }
    }

    /// The preset's offered load, derived from the honest per-client rate:
    /// floods and skewed re-sends offer 10× an honest client — floored at
    /// 5 000 el/s so the attack pressures the default quota sizing
    /// ([`setchain::QuotaConfig`]'s 2 000 el/s bucket) even when the honest
    /// workload is tiny; an attack the default quota never meters would not
    /// exercise the protection path. A replay storm re-fires its sealed
    /// 64-element batch 100 times per second (~6 400 el/s offered — above
    /// the default bucket for the same reason), and a churn storm registers
    /// 200 fresh identities per second.
    pub fn default_rate(&self, honest_per_client: f64) -> f64 {
        match self {
            Adversary::FloodClient | Adversary::HotKeySkew => {
                (honest_per_client * 10.0).max(5_000.0)
            }
            Adversary::ReplayStorm => 100.0,
            Adversary::ChurnStorm => 200.0,
        }
    }

    /// Parses a preset name as used on the bench command line
    /// (`--adversary flood`).
    pub fn parse(s: &str) -> Option<Adversary> {
        match s {
            "flood" => Some(Adversary::FloodClient),
            "replay" => Some(Adversary::ReplayStorm),
            "hotkey" => Some(Adversary::HotKeySkew),
            "churn" => Some(Adversary::ChurnStorm),
            _ => None,
        }
    }
}

impl std::fmt::Display for Adversary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Adversary {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Adversary::parse(s).ok_or_else(|| {
            let names: Vec<&str> = Adversary::ALL.iter().map(|a| a.name()).collect();
            format!(
                "unknown adversary {s:?} (expected one of {})",
                names.join(", ")
            )
        })
    }
}

/// The attack client actor: one registered (but misbehaving) client driving
/// the configured [`Adversary`] preset against a single target server on a
/// fixed tick, until the injection period ends.
pub struct AdversaryDriver {
    mode: Adversary,
    target: ProcessId,
    registry: KeyRegistry,
    workload: ArbitrumWorkload,
    /// Attack elements (or, for ChurnStorm, registrations) per second.
    rate: f64,
    end: SimTime,
    tick: SimDuration,
    carry: f64,
    rng: StdRng,
    /// The one sealed batch ReplayStorm re-sends (built on first tick).
    replay: Option<AuthedBatch>,
    /// HotKeySkew's hot set (built on first tick).
    pool: Vec<Element>,
    /// Precomputed Zipf CDF over `pool` ranks.
    zipf_cdf: Vec<f64>,
    /// Next fresh client index ChurnStorm registers.
    churn_next: usize,
    sent: u64,
    rejected_replies: u64,
}

impl AdversaryDriver {
    /// Creates the attack actor for `mode`: its identity is `keys.id` (must
    /// already be registered in `registry`), its victim `target`, its
    /// offered load `rate` per second.
    pub fn new(
        mode: Adversary,
        target: ProcessId,
        registry: KeyRegistry,
        keys: KeyPair,
        rate: f64,
        end: SimTime,
        seed: u64,
    ) -> Self {
        assert!(rate > 0.0, "attack rate must be positive");
        AdversaryDriver {
            mode,
            target,
            registry,
            workload: ArbitrumWorkload::new(keys, seed ^ 0x00AD_5EED),
            rate,
            end,
            tick: SimDuration::from_millis(20),
            carry: 0.0,
            rng: StdRng::seed_from_u64(seed ^ 0x005E_EDAD),
            replay: None,
            pool: Vec::new(),
            zipf_cdf: Vec::new(),
            churn_next: CHURN_BASE,
            sent: 0,
            rejected_replies: 0,
        }
    }

    /// The preset this driver runs.
    pub fn mode(&self) -> Adversary {
        self.mode
    }

    /// Attack elements sent so far (for ChurnStorm: one per registration).
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// `Rejected` replies received — the server-side sheds this adversary
    /// observed. The driver ignores the `retry_after` hint on purpose: an
    /// attacker does not back off.
    pub fn rejected_replies(&self) -> u64 {
        self.rejected_replies
    }

    /// Elements due this tick under the configured rate (fractional
    /// remainders carry over, as in the honest driver).
    fn due(&mut self) -> usize {
        let due = self.rate * self.tick.as_secs_f64() + self.carry;
        let count = due.floor() as usize;
        self.carry = due - count as f64;
        count
    }

    fn on_tick(&mut self, ctx: &mut Context<'_, Msg>) {
        let count = self.due();
        if count == 0 {
            return;
        }
        match self.mode {
            Adversary::FloodClient => {
                let elements = self.workload.take(count);
                self.sent += elements.len() as u64;
                ctx.send(self.target, NetMsg::App(SetchainMsg::AddBatch(elements)));
            }
            Adversary::ReplayStorm => {
                // The rate meters batch re-fires, not elements: each due
                // unit re-sends the same sealed submission verbatim.
                if self.replay.is_none() {
                    let elements = self.workload.take(REPLAY_BATCH);
                    self.replay = Some(self.workload.seal(elements));
                }
                for _ in 0..count {
                    let batch = self.replay.clone().expect("sealed above");
                    self.sent += batch.elements.len() as u64;
                    ctx.send(self.target, NetMsg::App(SetchainMsg::BatchedAdd(batch)));
                }
            }
            Adversary::HotKeySkew => {
                if self.pool.is_empty() {
                    self.pool = self.workload.take(HOT_POOL);
                    // Zipf CDF over ranks: weight(k) = 1 / (k+1)^s.
                    let weights: Vec<f64> = (0..HOT_POOL)
                        .map(|k| 1.0 / ((k + 1) as f64).powf(ZIPF_S))
                        .collect();
                    let total: f64 = weights.iter().sum();
                    let mut acc = 0.0;
                    self.zipf_cdf = weights
                        .iter()
                        .map(|w| {
                            acc += w / total;
                            acc
                        })
                        .collect();
                }
                let picks: Vec<Element> = (0..count)
                    .map(|_| {
                        let u: f64 = self.rng.gen_range(0.0..1.0);
                        let rank = self
                            .zipf_cdf
                            .iter()
                            .position(|&c| u <= c)
                            .unwrap_or(HOT_POOL - 1);
                        self.pool[rank]
                    })
                    .collect();
                self.sent += picks.len() as u64;
                ctx.send(self.target, NetMsg::App(SetchainMsg::AddBatch(picks)));
            }
            Adversary::ChurnStorm => {
                for _ in 0..count {
                    let id = ProcessId::client(self.churn_next);
                    self.churn_next += 1;
                    let keys = KeyPair::derive(id, self.rng.gen());
                    self.registry.register(keys);
                    let mut fresh = ArbitrumWorkload::new(keys, self.rng.gen());
                    let element = fresh.next_element();
                    self.sent += 1;
                    ctx.send(self.target, NetMsg::App(SetchainMsg::Add(element)));
                }
            }
        }
    }
}

impl Process<Msg> for AdversaryDriver {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        ctx.set_timer(self.tick, ATTACK_TICK);
    }

    fn on_message(&mut self, _from: ProcessId, msg: Msg, _ctx: &mut Context<'_, Msg>) {
        if let NetMsg::App(SetchainMsg::Rejected { .. }) = msg {
            self.rejected_replies += 1;
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<'_, Msg>) {
        if token != ATTACK_TICK {
            return;
        }
        if ctx.now() > self.end {
            return; // attack over; do not re-arm
        }
        self.on_tick(ctx);
        ctx.set_timer(self.tick, ATTACK_TICK);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse_round_trip() {
        for preset in Adversary::ALL {
            assert_eq!(Adversary::parse(preset.name()), Some(preset));
            assert_eq!(preset.name().parse::<Adversary>(), Ok(preset));
            assert_eq!(preset.to_string(), preset.name());
        }
        assert_eq!(Adversary::parse("ddos"), None);
        assert!("ddos".parse::<Adversary>().unwrap_err().contains("flood"));
    }

    #[test]
    fn default_rates_scale_with_honest_load() {
        assert_eq!(Adversary::FloodClient.default_rate(1_000.0), 10_000.0);
        // The floor keeps a tiny honest workload's flood above the default
        // 2 000 el/s quota bucket — otherwise nothing would ever shed.
        assert_eq!(Adversary::HotKeySkew.default_rate(1.0), 5_000.0);
        assert_eq!(Adversary::ReplayStorm.default_rate(1_000.0), 100.0);
        assert_eq!(Adversary::ChurnStorm.default_rate(1_000.0), 200.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let registry = KeyRegistry::bootstrap(1, 1, 2);
        let keys = registry.lookup(ProcessId::client(1)).unwrap();
        let _ = AdversaryDriver::new(
            Adversary::FloodClient,
            ProcessId::server(0),
            registry,
            keys,
            0.0,
            SimTime::from_secs(1),
            1,
        );
    }
}
