//! The analytical throughput model of Appendix D.
//!
//! For each algorithm the paper derives the highest stationary throughput as
//! a function of the system parameters (all servers assumed correct):
//!
//! * Vanilla:        `T_v = R · (C − n·l_p) / l_e`
//! * Compresschain:  `T_c = R · (c − n) · C / ℓ`, with
//!   `ℓ = ((c − n)·l_e + n·l_p) / r`
//! * Hashchain:      `T_h = R · (c − n) · C / (n · l_h)`
//!
//! with `R` the block rate, `C` the block capacity, `n` the server count,
//! `c` the collector size, `l_e`/`l_p`/`l_h` the element, epoch-proof and
//! hash-batch lengths, and `r` the compression ratio. Section D.1 evaluates
//! these with the evaluation-platform constants; the unit tests below pin the
//! same numbers.

use serde::{Deserialize, Serialize};
use setchain::Algorithm;

/// Parameters of the analytical model (defaults are the paper's evaluation
/// constants: n = 10, C = 0.5 MB, l_e = 438 B, l_p = l_h = 139 B,
/// R = 0.8 blocks/s).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AnalysisParams {
    /// Number of servers `n`.
    pub servers: usize,
    /// Block capacity `C` in bytes.
    pub block_capacity: f64,
    /// Average element length `l_e` in bytes.
    pub element_len: f64,
    /// Epoch-proof length `l_p` in bytes.
    pub proof_len: f64,
    /// Hash-batch length `l_h` in bytes.
    pub hash_batch_len: f64,
    /// Block rate `R` in blocks per second.
    pub block_rate: f64,
    /// Collector size `c` (ignored by Vanilla).
    pub collector: usize,
    /// Compression ratio `r` (used by Compresschain only).
    pub compression_ratio: f64,
}

impl Default for AnalysisParams {
    fn default() -> Self {
        AnalysisParams {
            servers: 10,
            block_capacity: 524_288.0, // 0.5 MB
            element_len: 438.0,
            proof_len: 139.0,
            hash_batch_len: 139.0,
            block_rate: 0.8,
            collector: 100,
            compression_ratio: 2.7,
        }
    }
}

impl AnalysisParams {
    /// Sets the collector size and, following Section D.1, the compression
    /// ratio the paper measured for that collector size (2.7 for c = 100,
    /// 3.5 for c = 500).
    pub fn with_collector(mut self, collector: usize) -> Self {
        self.collector = collector;
        self.compression_ratio = match collector {
            c if c >= 500 => 3.5,
            _ => 2.7,
        };
        self
    }

    /// Sets the number of servers.
    pub fn with_servers(mut self, servers: usize) -> Self {
        self.servers = servers;
        self
    }

    /// Sets the block capacity in bytes.
    pub fn with_block_capacity(mut self, bytes: f64) -> Self {
        self.block_capacity = bytes;
        self
    }

    /// `T_v`: Vanilla's analytical throughput in elements per second.
    pub fn vanilla(&self) -> f64 {
        let n = self.servers as f64;
        self.block_rate * (self.block_capacity - n * self.proof_len) / self.element_len
    }

    /// `T_c`: Compresschain's analytical throughput in elements per second.
    pub fn compresschain(&self) -> f64 {
        let n = self.servers as f64;
        let c = self.collector as f64;
        let epoch_len = ((c - n) * self.element_len + n * self.proof_len) / self.compression_ratio;
        self.block_rate * (c - n) * self.block_capacity / epoch_len
    }

    /// `T_h`: Hashchain's analytical throughput in elements per second.
    pub fn hashchain(&self) -> f64 {
        let n = self.servers as f64;
        let c = self.collector as f64;
        self.block_rate * (c - n) * self.block_capacity / (n * self.hash_batch_len)
    }

    /// Analytical throughput of the given algorithm, indexed through
    /// [`Algorithm::index`] (no per-variant dispatch outside the `setchain`
    /// crate's factory/config sites).
    pub fn throughput(&self, algorithm: Algorithm) -> f64 {
        [self.vanilla(), self.compresschain(), self.hashchain()][algorithm.index()]
    }
}

/// Convenience wrapper: analytical throughput of `algorithm` under `params`.
pub fn analytical_throughput(algorithm: Algorithm, params: &AnalysisParams) -> f64 {
    params.throughput(algorithm)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(actual: f64, expected: f64, tolerance: f64) -> bool {
        (actual - expected).abs() / expected < tolerance
    }

    #[test]
    fn section_d1_vanilla_value() {
        // Paper: T_v ≈ 955 el/s.
        let params = AnalysisParams::default();
        assert!(close(params.vanilla(), 955.0, 0.01), "{}", params.vanilla());
    }

    #[test]
    fn section_d1_compresschain_values() {
        // Paper: T_c[c=100] ≈ 2 497 el/s, T_c[c=500] ≈ 3 330 el/s.
        let c100 = AnalysisParams::default().with_collector(100);
        let c500 = AnalysisParams::default().with_collector(500);
        assert!(
            close(c100.compresschain(), 2_497.0, 0.01),
            "{}",
            c100.compresschain()
        );
        assert!(
            close(c500.compresschain(), 3_330.0, 0.01),
            "{}",
            c500.compresschain()
        );
    }

    #[test]
    fn section_d1_hashchain_values() {
        // Paper: T_h[c=100] ≈ 27 157 el/s, T_h[c=500] ≈ 147 857 el/s.
        let c100 = AnalysisParams::default().with_collector(100);
        let c500 = AnalysisParams::default().with_collector(500);
        assert!(
            close(c100.hashchain(), 27_157.0, 0.01),
            "{}",
            c100.hashchain()
        );
        assert!(
            close(c500.hashchain(), 147_857.0, 0.01),
            "{}",
            c500.hashchain()
        );
    }

    #[test]
    fn section_d1_ratios() {
        // Paper: T_h[c=500]/T_v ≈ 155 and T_h[c=500]/T_c[c=500] ≈ 44.
        let p = AnalysisParams::default().with_collector(500);
        assert!(close(p.hashchain() / p.vanilla(), 155.0, 0.02));
        assert!(close(p.hashchain() / p.compresschain(), 44.0, 0.02));
    }

    #[test]
    fn fig2_right_block_size_sweep_shape() {
        // Fig. 2 (right): with the usual 4 MB CometBFT block size Hashchain
        // reaches ~10^6 el/s, and with 128 MB blocks more than 30 million.
        let at = |mb: f64| {
            AnalysisParams::default()
                .with_collector(500)
                .with_block_capacity(mb * 1024.0 * 1024.0)
        };
        let four_mb = at(4.0).hashchain();
        assert!(four_mb > 1.0e6 && four_mb < 2.0e6, "{four_mb}");
        let huge = at(128.0).hashchain();
        assert!(huge > 30.0e6, "{huge}");
        // Throughput ordering holds at every block size.
        for mb in [0.5, 1.0, 2.0, 8.0, 32.0, 128.0] {
            let p = at(mb);
            assert!(p.hashchain() > p.compresschain());
            assert!(p.compresschain() > p.vanilla());
        }
    }

    #[test]
    fn throughput_dispatch_matches_direct_calls() {
        let p = AnalysisParams::default();
        assert_eq!(p.throughput(Algorithm::Vanilla), p.vanilla());
        assert_eq!(p.throughput(Algorithm::Compresschain), p.compresschain());
        assert_eq!(p.throughput(Algorithm::Hashchain), p.hashchain());
        assert_eq!(
            analytical_throughput(Algorithm::Hashchain, &p),
            p.hashchain()
        );
    }

    #[test]
    fn more_servers_reduce_hashchain_throughput() {
        let p4 = AnalysisParams::default()
            .with_collector(500)
            .with_servers(4);
        let p10 = AnalysisParams::default()
            .with_collector(500)
            .with_servers(10);
        assert!(p4.hashchain() > p10.hashchain());
    }
}
