//! Experiment instrumentation for Setchain runs.
//!
//! The paper's metrics are all derived from three per-element facts: when the
//! client added it, which epoch it was stamped with, and when that epoch
//! reached `f + 1` epoch-proofs on the ledger ("committed"). The
//! [`SetchainTrace`] is an `Arc`-shared sink recording exactly those facts;
//! the `setchain-workload` crate turns them into throughput-over-time series,
//! efficiency values, commit-time percentiles and latency CDFs.

use std::sync::Arc;

use parking_lot::Mutex;
use setchain_crypto::FxHashMap;
use setchain_ledger::TxId;
use setchain_simnet::SimTime;

use crate::element::ElementId;

/// Per-element record assembled after a run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ElementRecord {
    /// Element id.
    pub id: ElementId,
    /// When the client invoked `add`.
    pub added_at: SimTime,
    /// Epoch the element was stamped with (first correct server to do so).
    pub epoch: Option<u64>,
    /// When that epoch reached `f + 1` proofs on the ledger.
    pub committed_at: Option<SimTime>,
}

#[derive(Default)]
struct TraceInner {
    added: FxHashMap<ElementId, SimTime>,
    element_epoch: FxHashMap<ElementId, u64>,
    epoch_committed: FxHashMap<u64, SimTime>,
    epoch_consolidated: FxHashMap<u64, SimTime>,
    element_tx: FxHashMap<ElementId, TxId>,
}

/// Shared experiment trace for one Setchain run.
#[derive(Clone, Default)]
pub struct SetchainTrace {
    inner: Arc<Mutex<TraceInner>>,
    detailed: bool,
}

impl SetchainTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a trace that also records the element → ledger-transaction
    /// mapping, needed for the per-stage latency breakdown (Fig. 4). Costs
    /// extra memory per element, so large throughput runs use [`Self::new`].
    pub fn detailed() -> Self {
        SetchainTrace {
            inner: Arc::new(Mutex::new(TraceInner::default())),
            detailed: true,
        }
    }

    /// Records that an element travels to the ledger inside the transaction
    /// `tx` (the element itself for Vanilla, its batch for the others).
    /// No-op unless the trace was created with [`Self::detailed`].
    pub fn record_tx_assignment(&self, id: ElementId, tx: TxId) {
        if !self.detailed {
            return;
        }
        self.inner.lock().element_tx.entry(id).or_insert(tx);
    }

    /// The ledger transaction an element was shipped in (detailed traces
    /// only).
    pub fn tx_of(&self, id: &ElementId) -> Option<TxId> {
        self.inner.lock().element_tx.get(id).copied()
    }

    /// Records that the client added `id` at `at` (called by the workload
    /// driver when it sends the `add`).
    pub fn record_add(&self, id: ElementId, at: SimTime) {
        self.inner.lock().added.entry(id).or_insert(at);
    }

    /// Batched form of [`Self::record_add`]: one lock acquisition for a
    /// whole injection tick's worth of elements.
    pub fn record_adds(&self, ids: impl IntoIterator<Item = ElementId>, at: SimTime) {
        let mut inner = self.inner.lock();
        for id in ids {
            inner.added.entry(id).or_insert(at);
        }
    }

    /// Records that a correct server stamped `id` with `epoch` at `at`
    /// (first observation wins; all correct servers assign the same epoch).
    pub fn record_epoch_assignment(&self, id: ElementId, epoch: u64, at: SimTime) {
        self.record_epoch_assignments(std::iter::once(id), epoch, at);
    }

    /// Batched form of [`Self::record_epoch_assignment`]: one lock
    /// acquisition for a whole epoch's elements. Servers create epochs a
    /// batch at a time, so this is the hot-path entry point.
    pub fn record_epoch_assignments(
        &self,
        ids: impl IntoIterator<Item = ElementId>,
        epoch: u64,
        at: SimTime,
    ) {
        let mut inner = self.inner.lock();
        inner.epoch_consolidated.entry(epoch).or_insert(at);
        for id in ids {
            inner.element_epoch.entry(id).or_insert(epoch);
        }
    }

    /// Records that `epoch` reached the proof quorum (`f + 1` proofs) at `at`
    /// in the view of a correct server (first observation wins).
    pub fn record_epoch_commit(&self, epoch: u64, at: SimTime) {
        self.inner.lock().epoch_committed.entry(epoch).or_insert(at);
    }

    /// Number of elements added.
    pub fn added_count(&self) -> usize {
        self.inner.lock().added.len()
    }

    /// Number of epochs that reached the proof quorum.
    pub fn committed_epochs(&self) -> usize {
        self.inner.lock().epoch_committed.len()
    }

    /// Commit time of an element: the commit time of its epoch.
    pub fn commit_time(&self, id: &ElementId) -> Option<SimTime> {
        let inner = self.inner.lock();
        let epoch = inner.element_epoch.get(id)?;
        inner.epoch_committed.get(epoch).copied()
    }

    /// Time at which an epoch was consolidated (assigned) by the first
    /// correct server.
    pub fn epoch_consolidated_at(&self, epoch: u64) -> Option<SimTime> {
        self.inner.lock().epoch_consolidated.get(&epoch).copied()
    }

    /// Time at which an epoch reached the proof quorum.
    pub fn epoch_committed_at(&self, epoch: u64) -> Option<SimTime> {
        self.inner.lock().epoch_committed.get(&epoch).copied()
    }

    /// Assembles the per-element records for analysis. Elements added but
    /// never stamped/committed appear with `None` fields.
    pub fn element_records(&self) -> Vec<ElementRecord> {
        let inner = self.inner.lock();
        let mut out: Vec<ElementRecord> = inner
            .added
            .iter()
            .map(|(id, &added_at)| {
                let epoch = inner.element_epoch.get(id).copied();
                let committed_at = epoch.and_then(|e| inner.epoch_committed.get(&e).copied());
                ElementRecord {
                    id: *id,
                    added_at,
                    epoch,
                    committed_at,
                }
            })
            .collect();
        out.sort_by_key(|r| (r.added_at, r.id));
        out
    }

    /// Number of elements whose epoch reached the quorum no later than `t`.
    pub fn committed_count_by(&self, t: SimTime) -> usize {
        let inner = self.inner.lock();
        inner
            .element_epoch
            .iter()
            .filter(|(_, epoch)| {
                inner
                    .epoch_committed
                    .get(epoch)
                    .map(|&ct| ct <= t)
                    .unwrap_or(false)
            })
            .count()
    }

    /// Number of *trace-recorded* elements — those with a [`Self::record_add`]
    /// entry — whose epoch reached the quorum no later than `t`.
    ///
    /// Differs from [`Self::committed_count_by`] only when servers stamp
    /// elements the trace never saw added: an adversarial client's admitted
    /// traffic (deliberately kept out of the trace) or a scripted client
    /// session's elements. Under attack this is *honest goodput* — the
    /// committed count of the instrumented honest workload alone.
    pub fn honest_committed_count_by(&self, t: SimTime) -> usize {
        let inner = self.inner.lock();
        inner
            .added
            .keys()
            .filter(|id| {
                inner
                    .element_epoch
                    .get(id)
                    .and_then(|epoch| inner.epoch_committed.get(epoch))
                    .map(|&ct| ct <= t)
                    .unwrap_or(false)
            })
            .count()
    }

    /// Number of elements added no later than `t`.
    pub fn added_count_by(&self, t: SimTime) -> usize {
        self.inner
            .lock()
            .added
            .values()
            .filter(|&&at| at <= t)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn id(i: u64) -> ElementId {
        ElementId::new(0, i)
    }

    #[test]
    fn end_to_end_element_lifecycle() {
        let trace = SetchainTrace::new();
        trace.record_add(id(1), t(100));
        trace.record_add(id(2), t(200));
        trace.record_add(id(3), t(300));
        trace.record_epoch_assignment(id(1), 1, t(1500));
        trace.record_epoch_assignment(id(2), 1, t(1500));
        trace.record_epoch_commit(1, t(3000));

        assert_eq!(trace.added_count(), 3);
        assert_eq!(trace.committed_epochs(), 1);
        assert_eq!(trace.commit_time(&id(1)), Some(t(3000)));
        assert_eq!(trace.commit_time(&id(3)), None);
        assert_eq!(trace.epoch_consolidated_at(1), Some(t(1500)));
        assert_eq!(trace.epoch_committed_at(1), Some(t(3000)));
        assert_eq!(trace.added_count_by(t(250)), 2);
        assert_eq!(trace.committed_count_by(t(2999)), 0);
        assert_eq!(trace.committed_count_by(t(3000)), 2);
        assert_eq!(trace.honest_committed_count_by(t(3000)), 2);

        let records = trace.element_records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].id, id(1));
        assert_eq!(records[0].committed_at, Some(t(3000)));
        assert_eq!(records[2].epoch, None);
    }

    #[test]
    fn first_observation_wins() {
        let trace = SetchainTrace::new();
        trace.record_add(id(1), t(100));
        trace.record_add(id(1), t(500)); // duplicate add ignored
        trace.record_epoch_assignment(id(1), 1, t(1000));
        trace.record_epoch_assignment(id(1), 2, t(900)); // second server's view ignored
        trace.record_epoch_commit(1, t(2000));
        trace.record_epoch_commit(1, t(1500)); // later observation ignored
        let rec = &trace.element_records()[0];
        assert_eq!(rec.added_at, t(100));
        assert_eq!(rec.epoch, Some(1));
        assert_eq!(rec.committed_at, Some(t(2000)));
    }

    #[test]
    fn honest_count_excludes_unrecorded_elements() {
        // An adversarial client's admitted traffic is stamped and committed
        // by the servers but never `record_add`-ed; the honest count must
        // leave it out while the raw count includes it.
        let trace = SetchainTrace::new();
        trace.record_add(id(1), t(100));
        trace.record_epoch_assignment(id(1), 1, t(1000));
        trace.record_epoch_assignment(id(2), 1, t(1000)); // attack element
        trace.record_epoch_commit(1, t(2000));
        assert_eq!(trace.committed_count_by(t(2000)), 2);
        assert_eq!(trace.honest_committed_count_by(t(2000)), 1);
        assert_eq!(trace.honest_committed_count_by(t(1999)), 0);
    }

    #[test]
    fn tx_assignment_only_recorded_when_detailed() {
        let plain = SetchainTrace::new();
        plain.record_tx_assignment(id(1), TxId(77));
        assert_eq!(plain.tx_of(&id(1)), None);

        let detailed = SetchainTrace::detailed();
        detailed.record_tx_assignment(id(1), TxId(77));
        detailed.record_tx_assignment(id(1), TxId(88)); // first wins
        assert_eq!(detailed.tx_of(&id(1)), Some(TxId(77)));
        assert_eq!(detailed.tx_of(&id(2)), None);
    }

    #[test]
    fn empty_trace_queries() {
        let trace = SetchainTrace::new();
        assert_eq!(trace.added_count(), 0);
        assert_eq!(trace.committed_epochs(), 0);
        assert_eq!(trace.commit_time(&id(1)), None);
        assert!(trace.element_records().is_empty());
        assert_eq!(trace.committed_count_by(t(1000)), 0);
    }
}
