//! Byzantine behaviours for ledger validators (fault injection).
//!
//! The ledger tolerates `f_ledger < n/3` faulty validators. These modes are
//! used by tests and robustness experiments to check that the ledger
//! properties (and therefore the Setchain properties built on them) survive
//! the tolerated number of faults.

use serde::{Deserialize, Serialize};

/// How a validator (mis)behaves.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ByzMode {
    /// Follows the protocol.
    #[default]
    Correct,
    /// Crashed / silent: never proposes, never votes, never gossips.
    Silent,
    /// When acting as proposer, sends conflicting proposals to the two halves
    /// of the validator set (equivocation). Otherwise follows the protocol.
    EquivocatingProposer,
    /// Participates in proposals and prevotes but never precommits, slowing
    /// the quorum down without stopping it (as long as enough correct
    /// validators remain).
    WithholdPrecommit,
}

impl ByzMode {
    /// True for any behaviour other than [`ByzMode::Correct`].
    pub fn is_faulty(&self) -> bool {
        !matches!(self, ByzMode::Correct)
    }

    /// True if this validator should never send consensus messages.
    pub fn is_silent(&self) -> bool {
        matches!(self, ByzMode::Silent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(!ByzMode::Correct.is_faulty());
        assert!(ByzMode::Silent.is_faulty());
        assert!(ByzMode::Silent.is_silent());
        assert!(ByzMode::EquivocatingProposer.is_faulty());
        assert!(!ByzMode::EquivocatingProposer.is_silent());
        assert!(ByzMode::WithholdPrecommit.is_faulty());
        assert_eq!(ByzMode::default(), ByzMode::Correct);
    }
}
