//! Offline stand-in for `rand` (0.8-style API).
//!
//! Implements exactly the subset this workspace uses: `RngCore`,
//! `SeedableRng` (with `seed_from_u64`), the `Rng` extension trait
//! (`gen`, `gen_range`, `gen_bool`, `fill`), and `rngs::StdRng` backed by
//! xoshiro256** (deterministic, seedable, fast — not cryptographic, which
//! matches how the simulator uses it).
//!
//! Integer range sampling uses simple modulo reduction: the bias is
//! negligible for the small spans the simulator draws from, and determinism
//! per seed is what the tests rely on.

use std::ops::{Range, RangeInclusive};

/// Core random number generation: the raw output primitives.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A type that can be sampled uniformly from an `Rng` (the `Standard`
/// distribution in real rand).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that `Rng::gen_range` can sample a `T` from. The output is a
/// trait parameter (not an associated type) so that integer literals in
/// `gen_range(10..120)` unify with the expected result type, as in real rand.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (u128::sample(rng) % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = ((end - start) as u128).wrapping_add(1);
                if span == 0 {
                    // Full u128 range: every value is fair game.
                    return u128::sample(rng) as $t;
                }
                start + (u128::sample(rng) % span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u128;
                self.start.wrapping_add((u128::sample(rng) % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end.wrapping_sub(start) as $u as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is fair game.
                    return u128::sample(rng) as $t;
                }
                start.wrapping_add((u128::sample(rng) % span) as $t)
            }
        }
    )*};
}
impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t as Standard>::sample(rng) * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Extension methods over any `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        f64::sample(self) < p
    }

    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via splitmix64 (matches the spirit of
    /// rand's implementation; exact stream values differ, which is fine — the
    /// codebase only relies on determinism, not on rand's bit-exact streams).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// splitmix64: used for seed expansion.
#[derive(Clone, Debug)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(state: u64) -> Self {
        Self { state }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator backed by xoshiro256** — the "standard" RNG of
    /// this shim. Not cryptographically secure (neither is the use-site: the
    /// simulator wants reproducible streams, the crypto crate hashes the
    /// output anyway).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next_raw(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_raw() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.next_raw()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_raw().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // xoshiro must not start at the all-zero state.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xD1B5_4A32_D192_ED03,
                    0xAB1C_5ED5_DA6D_4B45,
                    1,
                ];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(0u32..=3);
            assert!(i <= 3);
        }
    }

    #[test]
    fn unit_float_is_half_open() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn zero_seed_is_fixed_up() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), 0);
    }
}
