//! Synthetic Arbitrum-like workload.
//!
//! The paper injects transactions downloaded from Arbitrum; only their size
//! distribution matters to the algorithms (average 438 bytes, standard
//! deviation 753.5). Sizes are drawn from a log-normal distribution fitted to
//! those two moments and clamped to a sane range; payload bytes themselves are
//! materialized on demand by [`setchain::Element::materialize`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use setchain::{AuthedBatch, Element, ElementGenerator};
use setchain_crypto::{KeyPair, KeyRegistry, ProcessId};

/// Mean element size reported by the paper (bytes).
pub const ARBITRUM_MEAN_SIZE: f64 = 438.0;
/// Element size standard deviation reported by the paper (bytes).
pub const ARBITRUM_STD_SIZE: f64 = 753.5;
/// Smallest element generated (bytes).
pub const MIN_SIZE: u32 = 96;
/// Largest element generated (bytes); Arbitrum calldata has a long tail but
/// the paper's ledger rejects nothing below the block size.
pub const MAX_SIZE: u32 = 16_384;

/// Per-client generator of Arbitrum-like elements.
#[derive(Clone, Debug)]
pub struct ArbitrumWorkload {
    elements: ElementGenerator,
    rng: StdRng,
    mu: f64,
    sigma: f64,
    produced: u64,
    produced_bytes: u64,
}

impl ArbitrumWorkload {
    /// Creates a workload generator for the client owning `keys`.
    pub fn new(keys: KeyPair, seed: u64) -> Self {
        // Fit a log-normal to the reported mean/σ:
        //   σ² = ln(1 + (s/m)²),  μ = ln(m) − σ²/2.
        let cv2 = (ARBITRUM_STD_SIZE / ARBITRUM_MEAN_SIZE).powi(2);
        let sigma2 = (1.0 + cv2).ln();
        let mu = ARBITRUM_MEAN_SIZE.ln() - sigma2 / 2.0;
        ArbitrumWorkload {
            elements: ElementGenerator::new(keys),
            rng: StdRng::seed_from_u64(seed),
            mu,
            sigma: sigma2.sqrt(),
            produced: 0,
            produced_bytes: 0,
        }
    }

    /// Convenience constructor: uses the key registered for `client` in the
    /// PKI.
    pub fn for_client(registry: &KeyRegistry, client: ProcessId, seed: u64) -> Self {
        let keys = registry
            .lookup(client)
            .expect("client must be registered in the PKI");
        Self::new(keys, seed)
    }

    fn sample_size(&mut self) -> u32 {
        // Box-Muller standard normal, then log-normal transform.
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let size = (self.mu + self.sigma * z).exp();
        (size.round() as u32).clamp(MIN_SIZE, MAX_SIZE)
    }

    /// Generates the next element.
    pub fn next_element(&mut self) -> Element {
        let size = self.sample_size();
        let seed = self.rng.gen::<u64>();
        self.produced += 1;
        self.produced_bytes += size as u64;
        self.elements.next_element(size, seed)
    }

    /// Generates `count` elements.
    pub fn take(&mut self, count: usize) -> Vec<Element> {
        (0..count).map(|_| self.next_element()).collect()
    }

    /// Seals `elements` into a batch-authenticated envelope under this
    /// client's key — one root MAC for the whole submission
    /// ([`setchain::AuthMode::BatchRoot`]). The elements keep their
    /// individual authenticators, so the same workload is valid under
    /// either submission mode.
    pub fn seal(&self, elements: Vec<Element>) -> AuthedBatch {
        AuthedBatch::seal(self.elements.auth_key(), self.elements.client(), elements)
    }

    /// Number of elements generated so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Mean size of the elements generated so far.
    pub fn observed_mean_size(&self) -> f64 {
        if self.produced == 0 {
            return 0.0;
        }
        self.produced_bytes as f64 / self.produced as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(seed: u64) -> ArbitrumWorkload {
        let registry = KeyRegistry::bootstrap(5, 2, 2);
        ArbitrumWorkload::for_client(&registry, ProcessId::client(0), seed)
    }

    #[test]
    fn sizes_match_paper_distribution_roughly() {
        let mut w = workload(1);
        let elements = w.take(20_000);
        let mean = w.observed_mean_size();
        assert!(
            (300.0..600.0).contains(&mean),
            "mean size {mean:.1} outside the expected window around 438"
        );
        let var: f64 = elements
            .iter()
            .map(|e| (e.size as f64 - mean).powi(2))
            .sum::<f64>()
            / elements.len() as f64;
        let std = var.sqrt();
        assert!(
            (350.0..1100.0).contains(&std),
            "σ {std:.1} far from the paper's 753.5"
        );
        assert!(elements
            .iter()
            .all(|e| e.size >= MIN_SIZE && e.size <= MAX_SIZE));
    }

    #[test]
    fn generated_elements_are_valid_and_unique() {
        let registry = KeyRegistry::bootstrap(5, 2, 2);
        let mut w = ArbitrumWorkload::for_client(&registry, ProcessId::client(1), 3);
        let elements = w.take(500);
        let mut ids = std::collections::HashSet::new();
        for e in &elements {
            assert!(e.is_valid(&registry));
            assert!(ids.insert(e.id));
        }
        assert_eq!(w.produced(), 500);
    }

    #[test]
    fn deterministic_for_a_given_seed() {
        let a: Vec<u32> = workload(9).take(100).iter().map(|e| e.size).collect();
        let b: Vec<u32> = workload(9).take(100).iter().map(|e| e.size).collect();
        let c: Vec<u32> = workload(10).take(100).iter().map(|e| e.size).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_generator_mean_is_zero() {
        let w = workload(1);
        assert_eq!(w.observed_mean_size(), 0.0);
    }
}
