//! Collection strategies: just `vec`, which is all the workspace uses.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

use crate::Strategy;

/// Strategy producing a `Vec` whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// `proptest::collection::vec(element, size_range)`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = if self.size.is_empty() {
            self.size.start
        } else {
            rng.gen_range(self.size.clone())
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
