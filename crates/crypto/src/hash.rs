//! SHA-256 and SHA-512 implemented from scratch following FIPS 180-4.
//!
//! Both hashers expose a streaming API (`update` / `finalize`) and one-shot
//! convenience functions ([`sha256`], [`sha512`]). The implementations are
//! straightforward, allocation-free block compressors; throughput is good
//! enough for the simulation workloads (hundreds of MB/s in release builds)
//! and the micro-benchmarks in `setchain-bench` measure it.

use std::fmt;

/// A 32-byte SHA-256 digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest256(pub [u8; 32]);

/// A 64-byte SHA-512 digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest512(pub [u8; 64]);

impl Digest256 {
    /// Returns the digest as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Renders the digest as lowercase hex.
    pub fn to_hex(&self) -> String {
        to_hex(&self.0)
    }

    /// Truncates the digest to a `u64` (first 8 bytes, big-endian). Useful as
    /// a compact map key in simulations.
    pub fn short(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("8 bytes"))
    }
}

impl Digest512 {
    /// Returns the digest as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Renders the digest as lowercase hex.
    pub fn to_hex(&self) -> String {
        to_hex(&self.0)
    }

    /// Truncates the digest to a `u64` (first 8 bytes, big-endian).
    pub fn short(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("8 bytes"))
    }
}

impl Default for Digest512 {
    fn default() -> Self {
        Digest512([0u8; 64])
    }
}

impl fmt::Debug for Digest256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest256({}…)", &self.to_hex()[..16])
    }
}

impl fmt::Debug for Digest512 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest512({}…)", &self.to_hex()[..16])
    }
}

fn to_hex(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0xf) as usize] as char);
    }
    out
}

// ---------------------------------------------------------------------------
// SHA-256
// ---------------------------------------------------------------------------

const SHA256_K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const SHA256_INIT: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Streaming SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a hasher with the FIPS 180-4 initial state.
    pub fn new() -> Self {
        Sha256 {
            state: SHA256_INIT,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Restores the hasher to its freshly-constructed state so it can be
    /// reused for another input without re-allocating.
    pub fn reset(&mut self) {
        self.state = SHA256_INIT;
        self.buffer_len = 0;
        self.total_len = 0;
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let block: [u8; 64] = data[..64].try_into().expect("64 bytes");
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Finishes the hash and returns the digest.
    pub fn finalize(mut self) -> Digest256 {
        self.finalize_digest()
    }

    /// Finishes the hash, returns the digest, and resets the hasher for the
    /// next input. This is the reuse primitive behind [`sha256_many`]: a
    /// single hasher streams through many inputs with zero per-input setup.
    pub fn finalize_reset(&mut self) -> Digest256 {
        let digest = self.finalize_digest();
        self.reset();
        digest
    }

    fn finalize_digest(&mut self) -> Digest256 {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length — written straight
        // into the block buffer (a byte-at-a-time `update` loop here would
        // cost as much as the compression itself on short inputs, and every
        // HMAC finalizes two short hashes).
        let n = self.buffer_len;
        self.buffer[n] = 0x80;
        if n + 1 > 56 {
            self.buffer[n + 1..].fill(0);
            let block = self.buffer;
            self.compress(&block);
            self.buffer[..56].fill(0);
        } else {
            self.buffer[n + 1..56].fill(0);
        }
        self.buffer[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buffer;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest256(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        // Fully unrolled FIPS 180-4 compression: the message schedule lives
        // in a 16-word ring extended in place, and the eight working
        // variables rotate *roles* through the macro's argument order
        // instead of being shuffled through eight moves per round. Both
        // keep everything in registers — this function is the floor under
        // every HMAC validation in the workspace (two compressions per
        // authenticator check), so the hand-unroll is worth its bulk.
        let mut w = [0u32; 16];
        for (wi, chunk) in w.iter_mut().zip(block.chunks_exact(4)) {
            *wi = u32::from_be_bytes(chunk.try_into().expect("4 bytes"));
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;

        macro_rules! rnd {
            ($a:ident,$b:ident,$c:ident,$d:ident,$e:ident,$f:ident,$g:ident,$h:ident,$k:expr,$w:expr) => {{
                let t1 = $h
                    .wrapping_add($e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25))
                    .wrapping_add(($e & $f) ^ (!$e & $g))
                    .wrapping_add($k)
                    .wrapping_add($w);
                let t2 = ($a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22))
                    .wrapping_add(($a & $b) ^ ($a & $c) ^ ($b & $c));
                $d = $d.wrapping_add(t1);
                $h = t1.wrapping_add(t2);
            }};
        }
        macro_rules! extend {
            ($i:expr) => {{
                let s0 = w[($i + 1) & 15].rotate_right(7)
                    ^ w[($i + 1) & 15].rotate_right(18)
                    ^ (w[($i + 1) & 15] >> 3);
                let s1 = w[($i + 14) & 15].rotate_right(17)
                    ^ w[($i + 14) & 15].rotate_right(19)
                    ^ (w[($i + 14) & 15] >> 10);
                w[$i] = w[$i]
                    .wrapping_add(s0)
                    .wrapping_add(w[($i + 9) & 15])
                    .wrapping_add(s1);
            }};
        }
        macro_rules! sixteen {
            ($base:expr) => {{
                rnd!(a, b, c, d, e, f, g, h, SHA256_K[$base], w[0]);
                rnd!(h, a, b, c, d, e, f, g, SHA256_K[$base + 1], w[1]);
                rnd!(g, h, a, b, c, d, e, f, SHA256_K[$base + 2], w[2]);
                rnd!(f, g, h, a, b, c, d, e, SHA256_K[$base + 3], w[3]);
                rnd!(e, f, g, h, a, b, c, d, SHA256_K[$base + 4], w[4]);
                rnd!(d, e, f, g, h, a, b, c, SHA256_K[$base + 5], w[5]);
                rnd!(c, d, e, f, g, h, a, b, SHA256_K[$base + 6], w[6]);
                rnd!(b, c, d, e, f, g, h, a, SHA256_K[$base + 7], w[7]);
                rnd!(a, b, c, d, e, f, g, h, SHA256_K[$base + 8], w[8]);
                rnd!(h, a, b, c, d, e, f, g, SHA256_K[$base + 9], w[9]);
                rnd!(g, h, a, b, c, d, e, f, SHA256_K[$base + 10], w[10]);
                rnd!(f, g, h, a, b, c, d, e, SHA256_K[$base + 11], w[11]);
                rnd!(e, f, g, h, a, b, c, d, SHA256_K[$base + 12], w[12]);
                rnd!(d, e, f, g, h, a, b, c, SHA256_K[$base + 13], w[13]);
                rnd!(c, d, e, f, g, h, a, b, SHA256_K[$base + 14], w[14]);
                rnd!(b, c, d, e, f, g, h, a, SHA256_K[$base + 15], w[15]);
            }};
        }
        macro_rules! extend_sixteen {
            () => {{
                extend!(0);
                extend!(1);
                extend!(2);
                extend!(3);
                extend!(4);
                extend!(5);
                extend!(6);
                extend!(7);
                extend!(8);
                extend!(9);
                extend!(10);
                extend!(11);
                extend!(12);
                extend!(13);
                extend!(14);
                extend!(15);
            }};
        }

        sixteen!(0);
        extend_sixteen!();
        sixteen!(16);
        extend_sixteen!();
        sixteen!(32);
        extend_sixteen!();
        sixteen!(48);

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> Digest256 {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

// ---------------------------------------------------------------------------
// SHA-512
// ---------------------------------------------------------------------------

const SHA512_K: [u64; 80] = [
    0x428a2f98d728ae22,
    0x7137449123ef65cd,
    0xb5c0fbcfec4d3b2f,
    0xe9b5dba58189dbbc,
    0x3956c25bf348b538,
    0x59f111f1b605d019,
    0x923f82a4af194f9b,
    0xab1c5ed5da6d8118,
    0xd807aa98a3030242,
    0x12835b0145706fbe,
    0x243185be4ee4b28c,
    0x550c7dc3d5ffb4e2,
    0x72be5d74f27b896f,
    0x80deb1fe3b1696b1,
    0x9bdc06a725c71235,
    0xc19bf174cf692694,
    0xe49b69c19ef14ad2,
    0xefbe4786384f25e3,
    0x0fc19dc68b8cd5b5,
    0x240ca1cc77ac9c65,
    0x2de92c6f592b0275,
    0x4a7484aa6ea6e483,
    0x5cb0a9dcbd41fbd4,
    0x76f988da831153b5,
    0x983e5152ee66dfab,
    0xa831c66d2db43210,
    0xb00327c898fb213f,
    0xbf597fc7beef0ee4,
    0xc6e00bf33da88fc2,
    0xd5a79147930aa725,
    0x06ca6351e003826f,
    0x142929670a0e6e70,
    0x27b70a8546d22ffc,
    0x2e1b21385c26c926,
    0x4d2c6dfc5ac42aed,
    0x53380d139d95b3df,
    0x650a73548baf63de,
    0x766a0abb3c77b2a8,
    0x81c2c92e47edaee6,
    0x92722c851482353b,
    0xa2bfe8a14cf10364,
    0xa81a664bbc423001,
    0xc24b8b70d0f89791,
    0xc76c51a30654be30,
    0xd192e819d6ef5218,
    0xd69906245565a910,
    0xf40e35855771202a,
    0x106aa07032bbd1b8,
    0x19a4c116b8d2d0c8,
    0x1e376c085141ab53,
    0x2748774cdf8eeb99,
    0x34b0bcb5e19b48a8,
    0x391c0cb3c5c95a63,
    0x4ed8aa4ae3418acb,
    0x5b9cca4f7763e373,
    0x682e6ff3d6b2b8a3,
    0x748f82ee5defb2fc,
    0x78a5636f43172f60,
    0x84c87814a1f0ab72,
    0x8cc702081a6439ec,
    0x90befffa23631e28,
    0xa4506cebde82bde9,
    0xbef9a3f7b2c67915,
    0xc67178f2e372532b,
    0xca273eceea26619c,
    0xd186b8c721c0c207,
    0xeada7dd6cde0eb1e,
    0xf57d4f7fee6ed178,
    0x06f067aa72176fba,
    0x0a637dc5a2c898a6,
    0x113f9804bef90dae,
    0x1b710b35131c471b,
    0x28db77f523047d84,
    0x32caab7b40c72493,
    0x3c9ebe0a15c9bebc,
    0x431d67c49c100d4c,
    0x4cc5d4becb3e42b6,
    0x597f299cfc657e2a,
    0x5fcb6fab3ad6faec,
    0x6c44198c4a475817,
];

const SHA512_INIT: [u64; 8] = [
    0x6a09e667f3bcc908,
    0xbb67ae8584caa73b,
    0x3c6ef372fe94f82b,
    0xa54ff53a5f1d36f1,
    0x510e527fade682d1,
    0x9b05688c2b3e6c1f,
    0x1f83d9abfb41bd6b,
    0x5be0cd19137e2179,
];

/// Streaming SHA-512 hasher.
#[derive(Clone)]
pub struct Sha512 {
    state: [u64; 8],
    buffer: [u8; 128],
    buffer_len: usize,
    total_len: u128,
}

impl Default for Sha512 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha512 {
    /// Creates a hasher with the FIPS 180-4 initial state.
    pub fn new() -> Self {
        Sha512 {
            state: SHA512_INIT,
            buffer: [0u8; 128],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Restores the hasher to its freshly-constructed state so it can be
    /// reused for another input without re-allocating.
    pub fn reset(&mut self) {
        self.state = SHA512_INIT;
        self.buffer_len = 0;
        self.total_len = 0;
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u128);
        let mut data = data;
        if self.buffer_len > 0 {
            let take = (128 - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 128 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 128 {
            let block: [u8; 128] = data[..128].try_into().expect("128 bytes");
            self.compress(&block);
            data = &data[128..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Finishes the hash and returns the digest.
    pub fn finalize(mut self) -> Digest512 {
        self.finalize_digest()
    }

    /// Finishes the hash, returns the digest, and resets the hasher for the
    /// next input (see [`Sha256::finalize_reset`]).
    pub fn finalize_reset(&mut self) -> Digest512 {
        let digest = self.finalize_digest();
        self.reset();
        digest
    }

    fn finalize_digest(&mut self) -> Digest512 {
        let bit_len = self.total_len.wrapping_mul(8);
        // Same direct padding as Sha256::finalize_digest (0x80, zeros,
        // 128-bit big-endian length), skipping the per-byte update path.
        let n = self.buffer_len;
        self.buffer[n] = 0x80;
        if n + 1 > 112 {
            self.buffer[n + 1..].fill(0);
            let block = self.buffer;
            self.compress(&block);
            self.buffer[..112].fill(0);
        } else {
            self.buffer[n + 1..112].fill(0);
        }
        self.buffer[112..128].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buffer;
        self.compress(&block);
        let mut out = [0u8; 64];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&word.to_be_bytes());
        }
        Digest512(out)
    }

    fn compress(&mut self, block: &[u8; 128]) {
        // Same fully unrolled shape as `Sha256::compress` (rotating register
        // roles, 16-word ring schedule); SHA-512 runs 80 rounds in five
        // blocks of 16. Batch/epoch hashing and every signature in the
        // workspace land here.
        let mut w = [0u64; 16];
        for (wi, chunk) in w.iter_mut().zip(block.chunks_exact(8)) {
            *wi = u64::from_be_bytes(chunk.try_into().expect("8 bytes"));
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;

        macro_rules! rnd {
            ($a:ident,$b:ident,$c:ident,$d:ident,$e:ident,$f:ident,$g:ident,$h:ident,$k:expr,$w:expr) => {{
                let t1 = $h
                    .wrapping_add($e.rotate_right(14) ^ $e.rotate_right(18) ^ $e.rotate_right(41))
                    .wrapping_add(($e & $f) ^ (!$e & $g))
                    .wrapping_add($k)
                    .wrapping_add($w);
                let t2 = ($a.rotate_right(28) ^ $a.rotate_right(34) ^ $a.rotate_right(39))
                    .wrapping_add(($a & $b) ^ ($a & $c) ^ ($b & $c));
                $d = $d.wrapping_add(t1);
                $h = t1.wrapping_add(t2);
            }};
        }
        macro_rules! extend {
            ($i:expr) => {{
                let s0 = w[($i + 1) & 15].rotate_right(1)
                    ^ w[($i + 1) & 15].rotate_right(8)
                    ^ (w[($i + 1) & 15] >> 7);
                let s1 = w[($i + 14) & 15].rotate_right(19)
                    ^ w[($i + 14) & 15].rotate_right(61)
                    ^ (w[($i + 14) & 15] >> 6);
                w[$i] = w[$i]
                    .wrapping_add(s0)
                    .wrapping_add(w[($i + 9) & 15])
                    .wrapping_add(s1);
            }};
        }
        macro_rules! sixteen {
            ($base:expr) => {{
                rnd!(a, b, c, d, e, f, g, h, SHA512_K[$base], w[0]);
                rnd!(h, a, b, c, d, e, f, g, SHA512_K[$base + 1], w[1]);
                rnd!(g, h, a, b, c, d, e, f, SHA512_K[$base + 2], w[2]);
                rnd!(f, g, h, a, b, c, d, e, SHA512_K[$base + 3], w[3]);
                rnd!(e, f, g, h, a, b, c, d, SHA512_K[$base + 4], w[4]);
                rnd!(d, e, f, g, h, a, b, c, SHA512_K[$base + 5], w[5]);
                rnd!(c, d, e, f, g, h, a, b, SHA512_K[$base + 6], w[6]);
                rnd!(b, c, d, e, f, g, h, a, SHA512_K[$base + 7], w[7]);
                rnd!(a, b, c, d, e, f, g, h, SHA512_K[$base + 8], w[8]);
                rnd!(h, a, b, c, d, e, f, g, SHA512_K[$base + 9], w[9]);
                rnd!(g, h, a, b, c, d, e, f, SHA512_K[$base + 10], w[10]);
                rnd!(f, g, h, a, b, c, d, e, SHA512_K[$base + 11], w[11]);
                rnd!(e, f, g, h, a, b, c, d, SHA512_K[$base + 12], w[12]);
                rnd!(d, e, f, g, h, a, b, c, SHA512_K[$base + 13], w[13]);
                rnd!(c, d, e, f, g, h, a, b, SHA512_K[$base + 14], w[14]);
                rnd!(b, c, d, e, f, g, h, a, SHA512_K[$base + 15], w[15]);
            }};
        }
        macro_rules! extend_sixteen {
            () => {{
                extend!(0);
                extend!(1);
                extend!(2);
                extend!(3);
                extend!(4);
                extend!(5);
                extend!(6);
                extend!(7);
                extend!(8);
                extend!(9);
                extend!(10);
                extend!(11);
                extend!(12);
                extend!(13);
                extend!(14);
                extend!(15);
            }};
        }

        sixteen!(0);
        extend_sixteen!();
        sixteen!(16);
        extend_sixteen!();
        sixteen!(32);
        extend_sixteen!();
        sixteen!(48);
        extend_sixteen!();
        sixteen!(64);

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-512 of `data`.
pub fn sha512(data: &[u8]) -> Digest512 {
    let mut h = Sha512::new();
    h.update(data);
    h.finalize()
}

/// SHA-256 of many independent inputs through one reused hasher.
///
/// Equivalent to `inputs.map(sha256)` but allocation-free on the hashing
/// side: a single hasher is reset between inputs instead of being
/// constructed per input, and the output vector is the only allocation.
/// The PKI bootstrap derives every key seed of a deployment through one
/// pass of this function.
pub fn sha256_many<'a, I>(inputs: I) -> Vec<Digest256>
where
    I: IntoIterator<Item = &'a [u8]>,
{
    let inputs = inputs.into_iter();
    let mut out = Vec::with_capacity(inputs.size_hint().0);
    let mut h = Sha256::new();
    for input in inputs {
        h.update(input);
        out.push(h.finalize_reset());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // NIST / well-known test vectors.
    #[test]
    fn sha256_empty() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn sha256_abc() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn sha256_two_block_message() {
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn sha512_empty() {
        assert_eq!(
            sha512(b"").to_hex(),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce\
             47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e"
                .replace(char::is_whitespace, "")
        );
    }

    #[test]
    fn sha512_abc() {
        assert_eq!(
            sha512(b"abc").to_hex(),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a\
             2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"
                .replace(char::is_whitespace, "")
        );
    }

    #[test]
    fn sha512_two_block_message() {
        assert_eq!(
            sha512(
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
                  ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"
                    .iter()
                    .copied()
                    .filter(|b| !b.is_ascii_whitespace())
                    .collect::<Vec<u8>>()
                    .as_slice()
            )
            .to_hex(),
            "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018\
             501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909"
                .replace(char::is_whitespace, "")
        );
    }

    #[test]
    fn sha512_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha512(&data).to_hex(),
            "e718483d0ce769644e2e42c7bc15b4638e1f98b13b2044285632a803afa973eb\
             de0ff244877ea60a4cb0432ce577c31beb009c5c2c49aa2e4eadb217ad8cc09b"
                .replace(char::is_whitespace, "")
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        // Feed in irregular chunk sizes.
        let mut h256 = Sha256::new();
        let mut h512 = Sha512::new();
        let mut off = 0usize;
        let mut step = 1usize;
        while off < data.len() {
            let end = (off + step).min(data.len());
            h256.update(&data[off..end]);
            h512.update(&data[off..end]);
            off = end;
            step = (step * 7 + 3) % 257 + 1;
        }
        assert_eq!(h256.finalize(), sha256(&data));
        assert_eq!(h512.finalize(), sha512(&data));
    }

    #[test]
    fn digest_helpers() {
        let d = sha256(b"hello");
        assert_eq!(d.as_bytes().len(), 32);
        assert_eq!(d.to_hex().len(), 64);
        let d2 = sha512(b"hello");
        assert_eq!(d2.as_bytes().len(), 64);
        assert_eq!(d2.to_hex().len(), 128);
        assert_ne!(d.short(), 0);
        assert_ne!(d2.short(), 0);
    }

    #[test]
    fn different_inputs_different_digests() {
        assert_ne!(sha256(b"a"), sha256(b"b"));
        assert_ne!(sha512(b"a"), sha512(b"b"));
    }

    #[test]
    fn reset_and_finalize_reset_match_fresh_hashers() {
        let mut h = Sha256::new();
        h.update(b"first input");
        assert_eq!(h.finalize_reset(), sha256(b"first input"));
        // The same hasher, reused, matches a fresh one.
        h.update(b"second");
        h.update(b" input");
        assert_eq!(h.finalize_reset(), sha256(b"second input"));
        // An explicit reset discards partial input.
        h.update(b"to be discarded");
        h.reset();
        h.update(b"abc");
        assert_eq!(
            h.finalize_reset().to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );

        let mut h512 = Sha512::new();
        h512.update(b"x");
        assert_eq!(h512.finalize_reset(), sha512(b"x"));
        h512.update(b"to be discarded");
        h512.reset();
        h512.update(b"y");
        assert_eq!(h512.finalize_reset(), sha512(b"y"));
    }

    #[test]
    fn sha256_many_matches_one_shots() {
        let inputs: Vec<Vec<u8>> = (0..50u32)
            .map(|i| (0..i * 13).map(|j| (j % 251) as u8).collect())
            .collect();
        let digests = sha256_many(inputs.iter().map(|v| v.as_slice()));
        assert_eq!(digests.len(), inputs.len());
        for (input, digest) in inputs.iter().zip(&digests) {
            assert_eq!(*digest, sha256(input));
        }
        assert!(sha256_many(std::iter::empty()).is_empty());
    }
}
