//! Builds a complete simulated deployment for a scenario: `n` ledger
//! validators each running the configured Setchain algorithm, plus one
//! injection client per validator — mirroring the paper's setup of one Docker
//! container per machine containing one client, one collector and one
//! CometBFT server.

use setchain::{
    Algorithm, CompresschainApp, HashchainApp, ServerByzMode, ServerStats, SetchainConfig,
    SetchainMsg, SetchainState, SetchainTrace, SetchainTx, SharedBatchRegistry, VanillaApp,
};
use setchain_crypto::{KeyRegistry, ProcessId};
use setchain_ledger::{ByzMode, LedgerConfig, LedgerNode, LedgerTrace, NetMsg};
use setchain_simnet::{NetworkConfig, SimTime, Simulation, SimulationConfig};

use crate::driver::ClientDriver;
use crate::generator::ArbitrumWorkload;
use crate::scenario::Scenario;

/// Message type of Setchain deployments.
pub type Msg = NetMsg<SetchainTx, SetchainMsg>;

/// A built deployment, ready to run.
pub struct Deployment {
    /// The simulation holding all servers and clients.
    pub sim: Simulation<Msg>,
    /// The scenario this deployment was built from.
    pub scenario: Scenario,
    /// The PKI shared by every process.
    pub registry: KeyRegistry,
    /// Setchain-level experiment trace.
    pub trace: SetchainTrace,
    /// Ledger-level trace (mempool / block stages).
    pub ledger_trace: LedgerTrace,
    /// The Setchain configuration used by every server.
    pub config: SetchainConfig,
}

/// Typed access to a server after (or during) a run, independent of which
/// algorithm it runs.
pub enum ServerHandle<'a> {
    /// A Vanilla server.
    Vanilla(&'a LedgerNode<VanillaApp>),
    /// A Compresschain server.
    Compresschain(&'a LedgerNode<CompresschainApp>),
    /// A Hashchain server.
    Hashchain(&'a LedgerNode<HashchainApp>),
}

impl<'a> ServerHandle<'a> {
    /// The server's Setchain state.
    pub fn state(&self) -> &SetchainState {
        match self {
            ServerHandle::Vanilla(n) => n.app().state(),
            ServerHandle::Compresschain(n) => n.app().state(),
            ServerHandle::Hashchain(n) => n.app().state(),
        }
    }

    /// The server's application counters.
    pub fn stats(&self) -> ServerStats {
        match self {
            ServerHandle::Vanilla(n) => n.app().stats(),
            ServerHandle::Compresschain(n) => n.app().stats(),
            ServerHandle::Hashchain(n) => n.app().stats(),
        }
    }

    /// The ledger height the server has reached.
    pub fn height(&self) -> u64 {
        match self {
            ServerHandle::Vanilla(n) => n.height(),
            ServerHandle::Compresschain(n) => n.height(),
            ServerHandle::Hashchain(n) => n.height(),
        }
    }

    /// The server's current mempool occupancy.
    pub fn mempool_len(&self) -> usize {
        match self {
            ServerHandle::Vanilla(n) => n.mempool_len(),
            ServerHandle::Compresschain(n) => n.mempool_len(),
            ServerHandle::Hashchain(n) => n.mempool_len(),
        }
    }
}

impl Deployment {
    /// Builds a deployment with all processes correct.
    pub fn build(scenario: &Scenario) -> Self {
        Self::build_with_faults(scenario, &[], &[])
    }

    /// Builds a deployment injecting application-level faults
    /// (`server_faults`) and/or consensus-level faults (`ledger_faults`),
    /// both given as `(server index, behaviour)` pairs.
    pub fn build_with_faults(
        scenario: &Scenario,
        server_faults: &[(usize, ServerByzMode)],
        ledger_faults: &[(usize, ByzMode)],
    ) -> Self {
        let n = scenario.servers;
        let registry = KeyRegistry::bootstrap(scenario.seed, n, n);
        let trace = if scenario.detailed_trace {
            SetchainTrace::detailed()
        } else {
            SetchainTrace::new()
        };
        let ledger_trace = if scenario.detailed_trace {
            LedgerTrace::new()
        } else {
            LedgerTrace::disabled()
        };

        let mut setchain_config =
            SetchainConfig::new(n).with_collector_limit(scenario.collector_limit);
        setchain_config.collector_timeout = scenario.collector_timeout();
        if let Some(k) = scenario.designated_signers {
            setchain_config = setchain_config.with_designated_signers(k);
        }
        if scenario.push_batches {
            setchain_config = setchain_config.with_push_batches();
        }
        if scenario.light {
            setchain_config = match scenario.algorithm {
                Algorithm::Hashchain => setchain_config.light_hashchain(),
                Algorithm::Compresschain => setchain_config.light_compresschain(),
                Algorithm::Vanilla => setchain_config,
            };
        }

        let mut ledger_config = LedgerConfig::with_validators(n);
        ledger_config.max_block_bytes = scenario.block_bytes;

        let network = NetworkConfig::lan().with_extra_delay_ms(scenario.network_delay_ms);
        let mut sim: Simulation<Msg> = Simulation::new(SimulationConfig {
            seed: scenario.seed,
            network,
        });

        let shared = SharedBatchRegistry::new();
        for i in 0..n {
            let id = ProcessId::server(i);
            let keys = registry.lookup(id).expect("server registered");
            let server_byz = server_faults
                .iter()
                .find(|(idx, _)| *idx == i)
                .map(|(_, m)| *m)
                .unwrap_or(ServerByzMode::Correct);
            let ledger_byz = ledger_faults
                .iter()
                .find(|(idx, _)| *idx == i)
                .map(|(_, m)| *m)
                .unwrap_or(ByzMode::Correct);
            // Byzantine servers do not get to pollute the shared experiment
            // trace: their observations are not trusted measurements.
            let server_trace = if server_byz.is_faulty() || ledger_byz.is_faulty() {
                SetchainTrace::new()
            } else {
                trace.clone()
            };
            match scenario.algorithm {
                Algorithm::Vanilla => {
                    let app = VanillaApp::new(
                        keys,
                        registry.clone(),
                        setchain_config.clone(),
                        server_trace,
                        server_byz,
                    );
                    sim.add_process(
                        id,
                        Box::new(LedgerNode::new(
                            id,
                            ledger_config.clone(),
                            keys,
                            registry.clone(),
                            app,
                            ledger_trace.clone(),
                            ledger_byz,
                        )),
                    );
                }
                Algorithm::Compresschain => {
                    let app = CompresschainApp::new(
                        keys,
                        registry.clone(),
                        setchain_config.clone(),
                        server_trace,
                        server_byz,
                    );
                    sim.add_process(
                        id,
                        Box::new(LedgerNode::new(
                            id,
                            ledger_config.clone(),
                            keys,
                            registry.clone(),
                            app,
                            ledger_trace.clone(),
                            ledger_byz,
                        )),
                    );
                }
                Algorithm::Hashchain => {
                    let app = if scenario.light {
                        HashchainApp::new_light(
                            keys,
                            registry.clone(),
                            setchain_config.clone(),
                            server_trace,
                            shared.clone(),
                        )
                    } else {
                        HashchainApp::new(
                            keys,
                            registry.clone(),
                            setchain_config.clone(),
                            server_trace,
                            server_byz,
                        )
                    };
                    sim.add_process(
                        id,
                        Box::new(LedgerNode::new(
                            id,
                            ledger_config.clone(),
                            keys,
                            registry.clone(),
                            app,
                            ledger_trace.clone(),
                            ledger_byz,
                        )),
                    );
                }
            }
        }

        // One injection client per server, as in the paper's deployment.
        let injection_end = SimTime::from_secs(scenario.injection_secs);
        for i in 0..n {
            let client_id = ProcessId::client(i);
            let workload = ArbitrumWorkload::for_client(
                &registry,
                client_id,
                scenario.seed ^ (i as u64) << 17,
            );
            let driver = ClientDriver::new(
                ProcessId::server(i),
                workload,
                scenario.per_client_rate(),
                injection_end,
                trace.clone(),
            );
            sim.add_process(client_id, Box::new(driver));
        }

        Deployment {
            sim,
            scenario: scenario.clone(),
            registry,
            trace,
            ledger_trace,
            config: setchain_config,
        }
    }

    /// Typed access to server `i`.
    pub fn server(&self, i: usize) -> ServerHandle<'_> {
        let id = ProcessId::server(i);
        match self.scenario.algorithm {
            Algorithm::Vanilla => ServerHandle::Vanilla(
                self.sim
                    .process::<LedgerNode<VanillaApp>>(id)
                    .expect("server exists"),
            ),
            Algorithm::Compresschain => ServerHandle::Compresschain(
                self.sim
                    .process::<LedgerNode<CompresschainApp>>(id)
                    .expect("server exists"),
            ),
            Algorithm::Hashchain => ServerHandle::Hashchain(
                self.sim
                    .process::<LedgerNode<HashchainApp>>(id)
                    .expect("server exists"),
            ),
        }
    }

    /// Number of elements sent by all injection clients so far.
    pub fn elements_sent(&self) -> u64 {
        (0..self.scenario.servers)
            .filter_map(|i| self.sim.process::<ClientDriver>(ProcessId::client(i)))
            .map(|d| d.sent())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setchain::Algorithm;

    #[test]
    fn builds_all_three_algorithms() {
        for algorithm in Algorithm::ALL {
            let scenario = Scenario::base(algorithm)
                .with_servers(4)
                .with_rate(200.0)
                .with_injection_secs(2)
                .with_max_run_secs(10);
            let deployment = Deployment::build(&scenario);
            assert_eq!(deployment.sim.process_ids().len(), 8); // 4 servers + 4 clients
            assert_eq!(deployment.server(0).height(), 1);
            assert_eq!(deployment.server(0).state().epoch(), 0);
            assert_eq!(deployment.elements_sent(), 0);
        }
    }

    #[test]
    fn small_end_to_end_run_commits_elements() {
        let scenario = Scenario::base(Algorithm::Hashchain)
            .with_servers(4)
            .with_rate(200.0)
            .with_collector(50)
            .with_injection_secs(3)
            .with_max_run_secs(30)
            .with_seed(5);
        let mut deployment = Deployment::build(&scenario);
        deployment.sim.run_until(SimTime::from_secs(20));
        let added = deployment.trace.added_count();
        assert!(added > 400, "clients injected elements (added={added})");
        let committed = deployment.trace.committed_count_by(SimTime::from_secs(20));
        assert!(
            committed as f64 >= 0.9 * added as f64,
            "most elements commit: {committed}/{added}"
        );
        // Servers agree on the common epoch prefix.
        let s0 = deployment.server(0);
        let s1 = deployment.server(1);
        assert!(s0.state().epoch() > 0);
        assert!(s0.state().check_consistent_with(s1.state()));
        assert!(s0.state().check_unique_epoch());
        assert!(s0.state().check_consistent_sets());
    }
}
