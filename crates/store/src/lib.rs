//! Persistent epoch storage for Setchain servers.
//!
//! The Setchain papers define the epoch-numbered committed set as the
//! durable contract: epochs are append-only, totally ordered, and attested
//! by `f + 1` epoch-proofs. This crate maps that contract onto disk as an
//! append-only **segment log** of framed epoch records plus a **compacting
//! element → epoch index**, so a restarted server replays its own log back
//! to the exact committed set instead of paging peers, and a memory-bounded
//! server can evict stored epochs from RAM and read them back on demand.
//!
//! The crate is deliberately a leaf: it depends on nothing else in the
//! workspace and stores *opaque fixed-size byte records*. The `setchain`
//! crate packs its `Element` (36 bytes, [`ELEMENT_LEN`]) and epoch-proof
//! (80 bytes, [`PROOF_LEN`]) encodings into an [`EpochRecord`]; the only
//! structural contract the store relies on is that the first 8 bytes of a
//! packed element are its little-endian `u64` id, which is how the index
//! is built without parsing elements.
//!
//! Two [`StateStore`] backends exist: [`MemStore`] (volatile, used for
//! trait conformance and as the differential oracle in tests) and
//! [`DiskStore`] (the segment log; see [`disk`] for the recovery
//! protocol). Servers without a configured store skip this crate entirely —
//! the in-RAM path is the default and is byte-for-byte unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disk;
pub mod frame;

use std::collections::HashMap;
use std::io;

pub use disk::DiskStore;
pub use frame::{decode_frame, encode_frame, fnv64, FrameError};

/// Packed length of one element (`setchain::Element::PACKED_LEN`). The
/// first 8 bytes are the element's little-endian `u64` id.
pub const ELEMENT_LEN: usize = 36;

/// Packed length of one epoch-proof: epoch (8) ‖ signer id (8) ‖ MAC (64),
/// all little-endian.
pub const PROOF_LEN: usize = 80;

/// One committed epoch as the store sees it: the signed digest, the packed
/// elements in epoch order, and the `f + 1` (or more) quorum proofs that
/// attested it. Proofs are persisted so a recovered server can serve
/// epoch/inclusion proofs without re-verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpochRecord {
    /// 1-based epoch number.
    pub epoch: u64,
    /// The 64-byte signed epoch digest.
    pub digest: [u8; 64],
    /// Packed elements, `element_count() × ELEMENT_LEN` bytes.
    pub elements: Vec<u8>,
    /// Packed proofs, `proof_count() × PROOF_LEN` bytes.
    pub proofs: Vec<u8>,
}

impl EpochRecord {
    /// Builds a record, checking that both byte sections are whole numbers
    /// of packed entries.
    pub fn new(epoch: u64, digest: [u8; 64], elements: Vec<u8>, proofs: Vec<u8>) -> Self {
        assert!(
            elements.len().is_multiple_of(ELEMENT_LEN),
            "elements not a multiple of ELEMENT_LEN"
        );
        assert!(
            proofs.len().is_multiple_of(PROOF_LEN),
            "proofs not a multiple of PROOF_LEN"
        );
        EpochRecord {
            epoch,
            digest,
            elements,
            proofs,
        }
    }

    /// Number of packed elements.
    pub fn element_count(&self) -> usize {
        self.elements.len() / ELEMENT_LEN
    }

    /// Number of packed proofs.
    pub fn proof_count(&self) -> usize {
        self.proofs.len() / PROOF_LEN
    }

    /// The element ids in epoch order (the first 8 LE bytes of each packed
    /// element — the one structural fact the store knows about elements).
    pub fn element_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.elements
            .chunks_exact(ELEMENT_LEN)
            .map(|chunk| u64::from_le_bytes(chunk[..8].try_into().expect("8 bytes")))
    }
}

/// Observable store counters, surfaced through `ServerStats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Epochs stored (contiguous from 1; equals the tip).
    pub epochs: u64,
    /// Total encoded bytes across all segments.
    pub bytes: u64,
    /// Number of log segments.
    pub segments: u64,
    /// Entries in the element → epoch index.
    pub indexed_elements: u64,
}

/// Durable epoch storage. Epochs append strictly in order (`tip() + 1`);
/// the store is the authority on everything at or below its tip.
///
/// `Send` so stores can live inside servers that host-parallel harnesses
/// move across threads.
pub trait StateStore: Send {
    /// Appends the next epoch. `record.epoch` must be exactly `tip() + 1`;
    /// anything else is an `InvalidInput` error and the store is untouched.
    fn append_epoch(&mut self, record: &EpochRecord) -> io::Result<()>;

    /// Highest stored epoch (0 when empty). Epochs `1..=tip()` are readable.
    fn tip(&self) -> u64;

    /// Reads back one stored epoch. `Ok(None)` for epochs outside
    /// `1..=tip()`.
    fn load_epoch(&self, epoch: u64) -> io::Result<Option<EpochRecord>>;

    /// The epoch a stored element was committed in, if any — the compacting
    /// index backing membership checks for evicted epochs.
    fn epoch_of(&self, element_id: u64) -> Option<u64>;

    /// Current store counters.
    fn stats(&self) -> StoreStats;
}

/// Volatile [`StateStore`]: the same sequencing and index semantics as
/// [`DiskStore`] with no files. Used for trait conformance tests and as the
/// differential oracle for the disk backend.
#[derive(Debug, Default)]
pub struct MemStore {
    records: Vec<EpochRecord>,
    index: HashMap<u64, u64>,
    bytes: u64,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StateStore for MemStore {
    fn append_epoch(&mut self, record: &EpochRecord) -> io::Result<()> {
        if record.epoch != self.tip() + 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "epoch {} out of order (tip is {})",
                    record.epoch,
                    self.tip()
                ),
            ));
        }
        // Count the encoded size so Mem and Disk report comparable bytes.
        self.bytes += encode_frame(record).len() as u64;
        for id in record.element_ids() {
            self.index.insert(id, record.epoch);
        }
        self.records.push(record.clone());
        Ok(())
    }

    fn tip(&self) -> u64 {
        self.records.len() as u64
    }

    fn load_epoch(&self, epoch: u64) -> io::Result<Option<EpochRecord>> {
        if epoch == 0 || epoch > self.tip() {
            return Ok(None);
        }
        Ok(Some(self.records[(epoch - 1) as usize].clone()))
    }

    fn epoch_of(&self, element_id: u64) -> Option<u64> {
        self.index.get(&element_id).copied()
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            epochs: self.tip(),
            bytes: self.bytes,
            segments: 0,
            indexed_elements: self.index.len() as u64,
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// A record whose element ids are distinct and derived from
    /// `(epoch, index)`, so index assertions can predict them.
    pub fn record(epoch: u64, elements: usize, proofs: usize) -> EpochRecord {
        let mut element_bytes = Vec::with_capacity(elements * ELEMENT_LEN);
        for i in 0..elements {
            let mut chunk = [0u8; ELEMENT_LEN];
            chunk[..8].copy_from_slice(&element_id(epoch, i).to_le_bytes());
            chunk[8..].fill((epoch as u8).wrapping_add(i as u8));
            element_bytes.extend_from_slice(&chunk);
        }
        EpochRecord::new(
            epoch,
            [epoch as u8; 64],
            element_bytes,
            vec![0xA5; proofs * PROOF_LEN],
        )
    }

    /// The id `record` gives element `i` of `epoch`.
    pub fn element_id(epoch: u64, i: usize) -> u64 {
        epoch * 10_000 + i as u64
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::{element_id, record};
    use super::*;

    #[test]
    fn record_accessors() {
        let rec = record(3, 4, 2);
        assert_eq!(rec.element_count(), 4);
        assert_eq!(rec.proof_count(), 2);
        let ids: Vec<u64> = rec.element_ids().collect();
        assert_eq!(ids, vec![30_000, 30_001, 30_002, 30_003]);
    }

    #[test]
    #[should_panic(expected = "multiple of ELEMENT_LEN")]
    fn ragged_elements_panic() {
        let _ = EpochRecord::new(1, [0; 64], vec![0; ELEMENT_LEN + 1], Vec::new());
    }

    #[test]
    #[should_panic(expected = "multiple of PROOF_LEN")]
    fn ragged_proofs_panic() {
        let _ = EpochRecord::new(1, [0; 64], Vec::new(), vec![0; PROOF_LEN - 1]);
    }

    #[test]
    fn mem_store_sequencing_and_readback() {
        let mut store = MemStore::new();
        assert_eq!(store.tip(), 0);
        assert_eq!(store.load_epoch(0).unwrap(), None);
        assert_eq!(store.load_epoch(1).unwrap(), None);
        // Out-of-order appends are refused without touching the store.
        assert!(store.append_epoch(&record(2, 1, 1)).is_err());
        assert_eq!(store.tip(), 0);
        for e in 1..=5u64 {
            store.append_epoch(&record(e, 3, 2)).unwrap();
        }
        assert_eq!(store.tip(), 5);
        for e in 1..=5u64 {
            assert_eq!(store.load_epoch(e).unwrap(), Some(record(e, 3, 2)));
            assert_eq!(store.epoch_of(element_id(e, 0)), Some(e));
            assert_eq!(store.epoch_of(element_id(e, 2)), Some(e));
        }
        assert_eq!(store.epoch_of(999_999), None);
        let stats = store.stats();
        assert_eq!(stats.epochs, 5);
        assert_eq!(stats.indexed_elements, 15);
        assert!(stats.bytes > 0);
        // Re-appending the tip is out of order too.
        assert!(store.append_epoch(&record(5, 1, 1)).is_err());
    }
}
