//! Process identities, key pairs and the PKI key registry.
//!
//! The paper assumes a deployed PKI: every process (server or client) owns a
//! private/public key pair and knows everyone else's public key. In this
//! reproduction the PKI is the [`KeyRegistry`]: key pairs are generated
//! deterministically from a seed, registered once at system construction
//! time, and the registry is shared (cheaply, it is an `Arc`) by every
//! simulated process that needs to verify signatures.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;
use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::hash::{sha256, sha256_many};

/// Identifier of a process (server or client) in the system.
///
/// Servers and clients draw from disjoint ranges by convention (see
/// [`ProcessId::server`] / [`ProcessId::client`]) so that logs and assertions
/// can distinguish them, but nothing in the protocol depends on the split.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProcessId(pub u64);

const CLIENT_BASE: u64 = 1 << 32;

impl ProcessId {
    /// The id of the `i`-th server.
    pub fn server(i: usize) -> Self {
        ProcessId(i as u64)
    }

    /// The id of the `i`-th client.
    pub fn client(i: usize) -> Self {
        ProcessId(CLIENT_BASE + i as u64)
    }

    /// True if this id is in the server range.
    pub fn is_server(&self) -> bool {
        self.0 < CLIENT_BASE
    }

    /// For server ids, the server index; panics for client ids.
    pub fn server_index(&self) -> usize {
        assert!(self.is_server(), "not a server id: {self:?}");
        self.0 as usize
    }

    /// For client ids, the client index; panics for server ids.
    pub fn client_index(&self) -> usize {
        assert!(!self.is_server(), "not a client id: {self:?}");
        (self.0 - CLIENT_BASE) as usize
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_server() {
            write!(f, "server#{}", self.0)
        } else {
            write!(f, "client#{}", self.0 - CLIENT_BASE)
        }
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Secret signing key (a 32-byte seed, as in ed25519).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SecretKey(pub [u8; 32]);

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print secret material.
        write!(f, "SecretKey(…)")
    }
}

/// Public verification key (32 bytes, derived as SHA-256 of the seed).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PublicKey(pub [u8; 32]);

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PublicKey({:02x}{:02x}{:02x}{:02x}…)",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

/// A process key pair.
#[derive(Clone, Copy, Debug)]
pub struct KeyPair {
    /// Owner of the pair.
    pub id: ProcessId,
    /// Private seed.
    pub secret: SecretKey,
    /// Public key derived from the seed.
    pub public: PublicKey,
}

impl KeyPair {
    /// Generates a key pair for `id` from an RNG.
    pub fn generate<R: RngCore>(id: ProcessId, rng: &mut R) -> Self {
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        Self::from_seed(id, seed)
    }

    /// Builds a key pair deterministically from a 32-byte seed.
    pub fn from_seed(id: ProcessId, seed: [u8; 32]) -> Self {
        let secret = SecretKey(seed);
        let public = PublicKey(sha256(&seed).0);
        KeyPair { id, secret, public }
    }

    /// Derives a key pair deterministically from a process id and a system
    /// seed, which is how the simulator provisions the PKI.
    pub fn derive(id: ProcessId, system_seed: u64) -> Self {
        Self::from_seed(id, sha256(&Self::derive_material(id, system_seed)).0)
    }

    /// The byte material [`derive`](Self::derive) hashes into the secret
    /// seed; shared with the batched bootstrap path.
    fn derive_material(id: ProcessId, system_seed: u64) -> [u8; 16] {
        let mut material = [0u8; 16];
        material[..8].copy_from_slice(&system_seed.to_le_bytes());
        material[8..].copy_from_slice(&id.0.to_le_bytes());
        material
    }
}

#[derive(Default)]
struct RegistryInner {
    by_id: HashMap<ProcessId, KeyPair>,
    by_public: HashMap<PublicKey, ProcessId>,
}

/// The PKI: a shared directory mapping process ids to key pairs.
///
/// In a real deployment verification would only need the *public* key; our
/// keyed-hash signature substitute needs the registry to resolve the signer's
/// verification material (see `DESIGN.md` §3). The registry is therefore the
/// trust anchor of the simulation: processes that are not registered cannot
/// produce signatures that verify.
#[derive(Clone, Default)]
pub struct KeyRegistry {
    inner: Arc<RwLock<RegistryInner>>,
}

impl KeyRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a registry pre-populated with `servers` server keys and
    /// `clients` client keys, all derived from `system_seed`.
    ///
    /// The secret seeds of the whole deployment are hashed in one
    /// [`sha256_many`] pass over a reused hasher, byte-for-byte equivalent
    /// to calling [`KeyPair::derive`] per process.
    pub fn bootstrap(system_seed: u64, servers: usize, clients: usize) -> Self {
        let reg = Self::new();
        let ids: Vec<ProcessId> = (0..servers)
            .map(ProcessId::server)
            .chain((0..clients).map(ProcessId::client))
            .collect();
        let materials: Vec<[u8; 16]> = ids
            .iter()
            .map(|id| KeyPair::derive_material(*id, system_seed))
            .collect();
        let seeds = sha256_many(materials.iter().map(|m| m.as_slice()));
        for (id, seed) in ids.into_iter().zip(seeds) {
            reg.register(KeyPair::from_seed(id, seed.0));
        }
        reg
    }

    /// Registers a key pair. Re-registering the same id replaces the entry.
    pub fn register(&self, pair: KeyPair) {
        let mut inner = self.inner.write();
        inner.by_public.insert(pair.public, pair.id);
        inner.by_id.insert(pair.id, pair);
    }

    /// Looks up the key pair of `id`.
    pub fn lookup(&self, id: ProcessId) -> Option<KeyPair> {
        self.inner.read().by_id.get(&id).copied()
    }

    /// Looks up the public key of `id`.
    pub fn public_key(&self, id: ProcessId) -> Option<PublicKey> {
        self.lookup(id).map(|p| p.public)
    }

    /// Resolves a public key back to the owning process.
    pub fn owner(&self, public: &PublicKey) -> Option<ProcessId> {
        self.inner.read().by_public.get(public).copied()
    }

    /// Number of registered processes.
    pub fn len(&self) -> usize {
        self.inner.read().by_id.len()
    }

    /// True if no process is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn process_id_ranges() {
        let s = ProcessId::server(3);
        let c = ProcessId::client(3);
        assert!(s.is_server());
        assert!(!c.is_server());
        assert_eq!(s.server_index(), 3);
        assert_eq!(c.client_index(), 3);
        assert_ne!(s, c);
        assert_eq!(format!("{s:?}"), "server#3");
        assert_eq!(format!("{c:?}"), "client#3");
    }

    #[test]
    fn keypair_derivation_is_deterministic() {
        let a = KeyPair::derive(ProcessId::server(1), 42);
        let b = KeyPair::derive(ProcessId::server(1), 42);
        let c = KeyPair::derive(ProcessId::server(2), 42);
        let d = KeyPair::derive(ProcessId::server(1), 43);
        assert_eq!(a.secret.0, b.secret.0);
        assert_eq!(a.public, b.public);
        assert_ne!(a.public, c.public);
        assert_ne!(a.public, d.public);
    }

    #[test]
    fn generate_uses_rng() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = KeyPair::generate(ProcessId::client(0), &mut rng);
        let b = KeyPair::generate(ProcessId::client(1), &mut rng);
        assert_ne!(a.public, b.public);
    }

    #[test]
    fn bootstrap_matches_per_process_derivation() {
        let reg = KeyRegistry::bootstrap(55, 3, 2);
        for id in [
            ProcessId::server(0),
            ProcessId::server(2),
            ProcessId::client(0),
            ProcessId::client(1),
        ] {
            let batched = reg.lookup(id).expect("registered");
            let individual = KeyPair::derive(id, 55);
            assert_eq!(batched.secret.0, individual.secret.0, "{id}");
            assert_eq!(batched.public, individual.public, "{id}");
        }
    }

    #[test]
    fn registry_bootstrap_and_lookup() {
        let reg = KeyRegistry::bootstrap(123, 4, 2);
        assert_eq!(reg.len(), 6);
        assert!(!reg.is_empty());
        let pair = reg.lookup(ProcessId::server(2)).expect("registered");
        assert_eq!(reg.owner(&pair.public), Some(ProcessId::server(2)));
        assert_eq!(reg.public_key(ProcessId::server(2)), Some(pair.public));
        assert!(reg.lookup(ProcessId::server(10)).is_none());
    }

    #[test]
    fn secret_key_debug_is_redacted() {
        let pair = KeyPair::derive(ProcessId::server(0), 1);
        assert_eq!(format!("{:?}", pair.secret), "SecretKey(…)");
    }
}
