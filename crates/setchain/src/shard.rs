//! Shard-aware admission: a deterministic consistent-hash ring that
//! partitions the element-id space across per-shard admission pipelines,
//! and the cross-shard epoch aggregator that merges per-shard sub-epochs
//! back into the single signed global epoch digest.
//!
//! # Design
//!
//! Sharding here is **server-internal organization**, not a protocol
//! change. The [`ShardRing`] maps every [`ElementId`] to exactly one shard;
//! each shard owns its own admission cache, validation fan-out lane and
//! `the_set` partition. Nothing on the wire changes: no message gains a
//! shard field, no simulated CPU charge depends on the shard count, and no
//! verdict differs from the unsharded pipeline — so a deployment run with
//! `shards(n)` is *bit-identical* to the same run with `shards(1)`, which
//! makes the unsharded pipeline the standing correctness oracle for every
//! sharded configuration (`tests/shard_conformance.rs` pins this
//! differentially).
//!
//! # Epoch aggregation and proof-format compatibility
//!
//! The global epoch digest commits to the chunked Merkle root over the
//! epoch's elements in canonical (ascending id) order
//! ([`crate::epoch_hash`]). The aggregator ([`aggregate_epoch`]) therefore:
//!
//! 1. partitions the epoch's elements by ring shard,
//! 2. sorts each partition by id and commits it as a [`SubEpoch`] — its own
//!    chunked Merkle sub-root plus a domain-separated commitment binding
//!    `(shard, count, sub_root)` so a sub-root can never be confused with a
//!    whole-epoch root,
//! 3. k-way merges the sorted partitions back into the global canonical
//!    order and computes the chunked root over the merged sequence.
//!
//! Because a merge of disjoint sorted partitions *is* the sorted whole, the
//! merged root equals [`crate::epoch_root`] exactly, and the signed digest
//! [`crate::epoch_hash_for_root`]`(epoch, count, root)` is byte-identical
//! to the unsharded computation. Epoch-proofs and element→epoch inclusion
//! proofs keep their wire formats untouched; clients and light clients
//! cannot tell how many shards a server ran with.

use setchain_crypto::{domain_hash, Digest256};

use crate::batch_auth::batch_root;
use crate::element::{Element, ElementId};

/// Domain tag for per-shard sub-root commitments: separates a shard's
/// sub-epoch commitment from every whole-epoch or batch root over the same
/// element bytes.
const SUB_ROOT_DOMAIN: &[u8] = b"setchain-shard-subroot";

/// Virtual ring points each shard places on the consistent-hash ring.
/// Enough that the arc lengths (and thus the element distribution) stay
/// well within 2x of uniform for the small shard counts deployments use.
const VNODES_PER_SHARD: usize = 128;

/// SplitMix64 finalizer: a cheap bijective mixer with full avalanche, used
/// both to place the virtual ring points and to hash element ids onto the
/// ring. Deterministic — no RNG, no per-process state — so every server of
/// every run agrees on the partition.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// A deterministic consistent-hash ring mapping element ids to shards.
///
/// Construction is a pure function of the shard count: shard `s` places
/// `VNODES_PER_SHARD` (128) points at `mix64(s ‖ v)` and an id lands on the
/// first point clockwise of `mix64(id)`. Two rings with the same shard
/// count are identical, and — consistent hashing's defining property —
/// growing the ring only moves ids *onto* the new shard, never between
/// surviving shards.
#[derive(Clone, Debug)]
pub struct ShardRing {
    shards: usize,
    /// `(ring position, shard)` sorted by position; empty for one shard
    /// (everything maps to shard 0 without hashing).
    points: Vec<(u64, u32)>,
}

impl Default for ShardRing {
    /// The unsharded ring: one shard, no ring points.
    fn default() -> Self {
        ShardRing::new(1)
    }
}

impl ShardRing {
    /// Builds the ring for `shards` shards. Deterministic: the same count
    /// always yields the same ring.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard required");
        let mut points = Vec::new();
        if shards > 1 {
            points.reserve(shards * VNODES_PER_SHARD);
            for shard in 0..shards {
                for vnode in 0..VNODES_PER_SHARD {
                    let point = mix64(((shard as u64) << 32) | vnode as u64);
                    points.push((point, shard as u32));
                }
            }
            // Position ties (astronomically unlikely for a bijective mixer
            // over distinct inputs, but cheap to pin) break by shard index,
            // keeping the sort — and thus the map — fully deterministic.
            points.sort_unstable();
        }
        ShardRing { shards, points }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `id`: total (every id maps to exactly one shard)
    /// and deterministic (a pure function of `id` and the shard count).
    pub fn shard_of(&self, id: ElementId) -> usize {
        if self.shards == 1 {
            return 0;
        }
        let h = mix64(id.0);
        // First ring point at or clockwise of the id's position, wrapping
        // past the top of the u64 circle to the first point.
        let at = self.points.partition_point(|p| p.0 < h);
        let (_, shard) = self.points[if at == self.points.len() { 0 } else { at }];
        shard as usize
    }

    /// Partitions `elements` by owning shard, preserving the input order
    /// within each partition. Returns one (possibly empty) bucket per
    /// shard.
    pub fn partition(&self, elements: &[Element]) -> Vec<Vec<Element>> {
        let mut parts: Vec<Vec<Element>> = vec![Vec::new(); self.shards];
        for e in elements {
            parts[self.shard_of(e.id)].push(*e);
        }
        parts
    }
}

/// One shard's contribution to an epoch: its element count, its chunked
/// Merkle sub-root over the shard's elements in ascending id order, and the
/// domain-separated commitment binding the triple.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct SubEpoch {
    /// The shard index on the ring.
    pub shard: usize,
    /// Elements this shard contributed to the epoch.
    pub count: u64,
    /// Chunked Merkle root ([`crate::batch_root`]) over the shard's
    /// elements in canonical order — an internal commitment; the *global*
    /// root the epoch digest signs is computed over the merged order.
    pub sub_root: Digest256,
    /// `domain_hash("setchain-shard-subroot", shard, count, sub_root)`:
    /// the tagged form that can never collide with a whole-epoch root.
    pub commitment: Digest256,
}

/// The domain-separated commitment for one shard's sub-epoch. Exposed so
/// tests and diagnostics can recompute what [`aggregate_epoch`] stores.
pub fn sub_epoch_commitment(shard: usize, count: u64, sub_root: &Digest256) -> Digest256 {
    domain_hash(
        SUB_ROOT_DOMAIN,
        &[
            &(shard as u64).to_le_bytes()[..],
            &count.to_le_bytes(),
            sub_root.as_bytes(),
        ],
    )
}

/// The cross-shard aggregation of one epoch: per-shard sub-epochs plus the
/// merged canonical order and its global root.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct ShardedEpoch {
    /// One sub-epoch per shard (empty shards included, with count 0).
    pub sub_epochs: Vec<SubEpoch>,
    /// All elements in global canonical (ascending id) order — the k-way
    /// merge of the per-shard sorted partitions.
    pub elements: Vec<Element>,
    /// Chunked Merkle root over `elements`; equal to
    /// [`crate::epoch_root`] of the input by construction.
    pub root: Digest256,
}

/// Aggregates one epoch's elements across the ring's shards: sorts each
/// shard's partition, commits it as a [`SubEpoch`], then k-way merges the
/// partitions into the global canonical order and computes the global root
/// the epoch digest signs. The merged root is *exactly*
/// [`crate::epoch_root`]`(elements)` — disjoint sorted partitions merge to
/// the sorted whole — which is what keeps sharded epoch digests
/// byte-identical to unsharded ones.
pub fn aggregate_epoch(ring: &ShardRing, elements: &[Element]) -> ShardedEpoch {
    let mut parts = ring.partition(elements);
    for part in &mut parts {
        part.sort_by_key(|e| e.id);
    }
    // Per-shard sub-roots hash in parallel on multicore hosts: `batch_root`
    // is a pure function of its partition, and `parallel_map_min` preserves
    // item order, so the sub-epochs — and with them the merged root and the
    // signed digest — stay byte-identical to the sequential computation.
    // Shard counts are far below MIN_PARALLEL_LEN, so the fan-out uses an
    // explicit threshold of 2 partitions.
    let sub_roots =
        setchain_crypto::parallel_map_min(&parts, setchain_crypto::default_threads(), 2, |part| {
            batch_root(part)
        });
    let sub_epochs = parts
        .iter()
        .zip(sub_roots)
        .enumerate()
        .map(|(shard, (part, sub_root))| SubEpoch {
            shard,
            count: part.len() as u64,
            sub_root,
            commitment: sub_epoch_commitment(shard, part.len() as u64, &sub_root),
        })
        .collect();
    let elements = merge_sorted(parts);
    let root = batch_root(&elements);
    ShardedEpoch {
        sub_epochs,
        elements,
        root,
    }
}

/// K-way merge of per-shard partitions, each sorted ascending by id, into
/// one globally sorted sequence. Shard counts are small, so a linear scan
/// for the minimum head beats a heap on every realistic input.
fn merge_sorted(parts: Vec<Vec<Element>>) -> Vec<Element> {
    let total = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut cursors = vec![0usize; parts.len()];
    loop {
        let mut next: Option<(usize, ElementId)> = None;
        for (p, part) in parts.iter().enumerate() {
            if let Some(e) = part.get(cursors[p]) {
                if next.is_none_or(|(_, min)| e.id < min) {
                    next = Some((p, e.id));
                }
            }
        }
        match next {
            Some((p, _)) => {
                out.push(parts[p][cursors[p]]);
                cursors[p] += 1;
            }
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proofs::{epoch_hash, epoch_hash_for_root, epoch_root};
    use setchain_crypto::{KeyRegistry, ProcessId};

    fn sample_elements(n: u64) -> Vec<Element> {
        let registry = KeyRegistry::bootstrap(5, 2, 4);
        (0..n)
            .map(|i| {
                let client = (i % 4) as usize;
                let keys = registry.lookup(ProcessId::client(client)).unwrap();
                Element::new(
                    &keys,
                    ElementId::new(client as u32, i),
                    200 + (i % 700) as u32,
                    i,
                )
            })
            .collect()
    }

    #[test]
    fn one_shard_maps_everything_to_shard_zero() {
        let ring = ShardRing::default();
        assert_eq!(ring.shards(), 1);
        for i in 0..1000u64 {
            assert_eq!(ring.shard_of(ElementId(i.wrapping_mul(0x9e3779b9))), 0);
        }
    }

    #[test]
    fn ring_is_total_deterministic_and_within_2x_of_uniform() {
        // The satellite property spelled out: every id maps to exactly one
        // shard, reruns agree, and a 10k-id sample lands within 2x of the
        // uniform share for 2, 4 and 8 shards.
        let ids: Vec<ElementId> = (0..10_000u64)
            .map(|i| ElementId::new((i % 300) as u32, i / 300 + (i % 7) * 1000))
            .collect();
        for shards in [2usize, 4, 8] {
            let ring = ShardRing::new(shards);
            let rerun = ShardRing::new(shards);
            let mut counts = vec![0u64; shards];
            for id in &ids {
                let s = ring.shard_of(*id);
                assert!(s < shards, "total: {s} out of range for {shards} shards");
                assert_eq!(s, rerun.shard_of(*id), "deterministic across reruns");
                counts[s] += 1;
            }
            let uniform = ids.len() as f64 / shards as f64;
            for (s, &c) in counts.iter().enumerate() {
                assert!(
                    (c as f64) < 2.0 * uniform && (c as f64) > uniform / 2.0,
                    "shard {s}/{shards} holds {c} of {} ids (uniform {uniform})",
                    ids.len(),
                );
            }
        }
    }

    #[test]
    fn growing_the_ring_only_moves_ids_onto_new_shards() {
        // Consistent hashing's defining property, over doublings.
        let ids: Vec<ElementId> = (0..4_000u64).map(|i| ElementId::new(3, i)).collect();
        for (small, large) in [(2usize, 4usize), (4, 8)] {
            let a = ShardRing::new(small);
            let b = ShardRing::new(large);
            for id in &ids {
                let before = a.shard_of(*id);
                let after = b.shard_of(*id);
                assert!(
                    after == before || after >= small,
                    "id {id:?} moved between surviving shards: {before} -> {after}",
                );
            }
        }
    }

    #[test]
    fn partition_covers_every_element_exactly_once_in_order() {
        let elements = sample_elements(500);
        let ring = ShardRing::new(4);
        let parts = ring.partition(&elements);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), elements.len());
        for (shard, part) in parts.iter().enumerate() {
            for e in part {
                assert_eq!(ring.shard_of(e.id), shard);
            }
        }
        // Input order is preserved within each partition.
        for part in &parts {
            let mut last = None;
            for e in part {
                let pos = elements.iter().position(|x| x.id == e.id).unwrap();
                assert!(last.is_none_or(|l| pos > l));
                last = Some(pos);
            }
        }
    }

    #[test]
    fn aggregated_root_equals_the_unsharded_epoch_root() {
        // The compatibility argument, checked directly: for every shard
        // count the merged root — and thus the signed digest — is
        // byte-identical to the unsharded computation, even though the
        // input arrives in arbitrary (non-canonical) order.
        let mut elements = sample_elements(300);
        elements.reverse();
        let expected_root = epoch_root(&elements);
        let expected_digest = epoch_hash(7, &elements);
        for shards in [1usize, 2, 3, 4, 8] {
            let ring = ShardRing::new(shards);
            let agg = aggregate_epoch(&ring, &elements);
            assert_eq!(agg.root, expected_root, "{shards} shards");
            assert_eq!(
                epoch_hash_for_root(7, agg.elements.len() as u64, &agg.root),
                expected_digest,
                "{shards} shards",
            );
            // The merge really is the canonical order.
            assert!(agg.elements.windows(2).all(|w| w[0].id < w[1].id));
            assert_eq!(agg.elements.len(), elements.len());
            // Sub-epoch counts cover the epoch.
            assert_eq!(
                agg.sub_epochs.iter().map(|s| s.count).sum::<u64>(),
                elements.len() as u64
            );
        }
    }

    #[test]
    fn sub_epoch_commitments_are_domain_separated_and_rebindable() {
        let elements = sample_elements(64);
        let ring = ShardRing::new(4);
        let agg = aggregate_epoch(&ring, &elements);
        for sub in &agg.sub_epochs {
            // The stored commitment recomputes from the triple.
            assert_eq!(
                sub.commitment,
                sub_epoch_commitment(sub.shard, sub.count, &sub.sub_root)
            );
            // Domain separation: a sub-root commitment never equals the raw
            // sub-root and binds the shard index.
            assert_ne!(sub.commitment, sub.sub_root);
            if sub.shard > 0 {
                assert_ne!(
                    sub.commitment,
                    sub_epoch_commitment(0, sub.count, &sub.sub_root)
                );
            }
        }
    }

    #[test]
    fn empty_epoch_aggregates_cleanly() {
        let ring = ShardRing::new(4);
        let agg = aggregate_epoch(&ring, &[]);
        assert!(agg.elements.is_empty());
        assert_eq!(agg.root, epoch_root(&[]));
        assert_eq!(agg.sub_epochs.len(), 4);
        assert!(agg.sub_epochs.iter().all(|s| s.count == 0));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Totality + determinism over arbitrary ids and shard counts,
            /// and stability of the partition under re-partitioning.
            #[test]
            fn prop_ring_is_total_and_deterministic(
                ids in proptest::collection::vec(0u64..u64::MAX, 0..200),
                shards in 1usize..9,
            ) {
                let ring = ShardRing::new(shards);
                let rerun = ShardRing::new(shards);
                for &raw in &ids {
                    let id = ElementId(raw);
                    let s = ring.shard_of(id);
                    prop_assert!(s < shards);
                    prop_assert_eq!(s, ring.shard_of(id));
                    prop_assert_eq!(s, rerun.shard_of(id));
                }
            }

            /// The aggregator reproduces the unsharded epoch digest for any
            /// element set and shard count (duplicate-free ids, as
            /// `record_epoch` guarantees).
            #[test]
            fn prop_aggregation_reproduces_epoch_root(
                n in 0u64..150,
                epoch in 1u64..1000,
                shards in 1usize..9,
            ) {
                let elements = sample_elements(n);
                let ring = ShardRing::new(shards);
                let agg = aggregate_epoch(&ring, &elements);
                prop_assert_eq!(agg.root, epoch_root(&elements));
                prop_assert_eq!(
                    epoch_hash_for_root(epoch, agg.elements.len() as u64, &agg.root),
                    epoch_hash(epoch, &elements)
                );
            }
        }
    }
}
