//! LZ77 compressor with a hash-chain match finder.
//!
//! Single-stream format (all integers are LEB128 varints, see
//! [`crate::varint`]):
//!
//! ```text
//! stream   := original_len token*
//! token    := 0x00 lit_len  byte{lit_len}        (literal run)
//!           | 0x01 match_len distance            (back-reference)
//! ```
//!
//! Matches must have `match_len >= MIN_MATCH` and `distance <= WINDOW`.
//! Decompression validates every distance/length against the bytes produced
//! so far and fails with [`DecompressError`] rather than panicking, because
//! Compresschain servers decompress batches appended by possibly Byzantine
//! peers (Algorithm Compresschain, line 20). The parallel *chunked* framing
//! that wraps this stream lives in [`crate::chunked`].
//!
//! # Match finder
//!
//! Compression runs through a [`Compressor`], which owns the `head`/`prev`
//! hash-chain tables and reuses them across calls — callers on a hot path
//! (Compresschain flushes a batch every few milliseconds) pay no per-batch
//! table allocation. Match candidates come from a 5-byte multiplicative
//! hash computed once per position (the table update and the candidate
//! lookup share it); match extension compares 8 bytes per step via `u64`
//! loads; a one-step *lazy match* check (as in DEFLATE) trades a literal
//! for a longer match starting one byte later when that wins; a token-cost
//! filter drops matches whose encoding would outweigh them; and LZ4-style
//! skip acceleration strides through incompressible regions so high-entropy
//! calldata costs far less than compressible text.

use crate::varint::{read_u64, write_u64};

/// Minimum match length worth encoding as a back-reference.
const MIN_MATCH: usize = 4;
/// Maximum match length (keeps token sizes bounded).
const MAX_MATCH: usize = 1 << 15;
/// Sliding-window size for back-references.
const WINDOW: usize = 1 << 16;
/// Number of hash-chain buckets (power of two).
const HASH_BUCKETS: usize = 1 << 14;
/// Maximum chain positions examined per match attempt; bounds worst-case
/// compressor time on adversarial input.
const MAX_CHAIN: usize = 1;
/// Matches at least this long skip the lazy one-byte-later probe: they are
/// long enough that deferring them almost never pays.
const LAZY_THRESHOLD: usize = 32;
/// Skip acceleration (as in LZ4): after `1 << ACCEL_LOG` consecutive
/// positions without a match, the search cursor starts stepping by more than
/// one byte, so incompressible regions (high-entropy calldata) cost far less
/// than compressible ones.
const ACCEL_LOG: u32 = 2;

const TOKEN_LITERAL: u8 = 0x00;
const TOKEN_MATCH: u8 = 0x01;

/// Sentinel for "no position" in the hash-chain tables.
const EMPTY: u32 = u32::MAX;

/// Error returned when a compressed stream is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompressError {
    /// The stream ended in the middle of a token.
    Truncated,
    /// A token had an unknown tag byte.
    BadToken(u8),
    /// A back-reference pointed before the start of the output.
    BadDistance {
        /// Offset in the output where the reference occurred.
        at: usize,
        /// The invalid distance.
        distance: usize,
    },
    /// The decoded output did not match the length declared in the header.
    LengthMismatch {
        /// Length declared in the stream header.
        declared: usize,
        /// Length actually produced.
        actual: usize,
    },
    /// The declared length is unreasonably large (defence against memory
    /// exhaustion from Byzantine input).
    DeclaredTooLarge(u64),
    /// A chunked frame was expected but the stream does not start with the
    /// chunked magic (see [`crate::chunked`]).
    NotChunked,
    /// A chunked frame declared more chunks than its total length allows.
    BadChunkCount(u64),
    /// A chunked frame carried bytes after its last declared chunk.
    TrailingBytes(usize),
}

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompressError::Truncated => write!(f, "compressed stream truncated"),
            DecompressError::BadToken(t) => write!(f, "unknown token tag {t:#x}"),
            DecompressError::BadDistance { at, distance } => {
                write!(
                    f,
                    "invalid back-reference distance {distance} at output offset {at}"
                )
            }
            DecompressError::LengthMismatch { declared, actual } => {
                write!(f, "declared length {declared} but produced {actual}")
            }
            DecompressError::DeclaredTooLarge(n) => write!(f, "declared length {n} too large"),
            DecompressError::NotChunked => write!(f, "stream is not a chunked frame"),
            DecompressError::BadChunkCount(n) => write!(f, "chunk count {n} exceeds total length"),
            DecompressError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after the last chunk")
            }
        }
    }
}

impl std::error::Error for DecompressError {}

/// Upper bound accepted for the declared decompressed size (64 MiB), far
/// above any batch the Setchain algorithms produce. Compression inputs are
/// bounded by the same value so every compressed stream decompresses.
pub const MAX_DECLARED: u64 = 64 * 1024 * 1024;

#[inline]
fn hash5(data: &[u8], i: usize) -> usize {
    // Multiplicative hash over the next 5 bytes (read as one 8-byte word;
    // callers guarantee `i + 8 <= data.len()`). Five bytes rather than four
    // sharply cuts false candidates on small-alphabet data like hex
    // calldata, where 4-grams repeat by chance long before they repeat
    // usefully.
    let v = u64::from_le_bytes(data[i..i + 8].try_into().expect("8 bytes")) & 0xFF_FFFF_FFFF;
    (v.wrapping_mul(0x9E37_79B1_85EB_CA87) >> 50) as usize & (HASH_BUCKETS - 1)
}

/// Length of the common prefix of `data[a..]` and `data[b..]`, capped at
/// `max`. Requires `b + max <= data.len()` and `a < b`. Compares 8 bytes per
/// step through `u64` loads, then settles the tail byte-wise.
#[inline]
fn common_prefix_len(data: &[u8], a: usize, b: usize, max: usize) -> usize {
    let mut len = 0usize;
    while len + 8 <= max {
        let x = u64::from_le_bytes(data[a + len..a + len + 8].try_into().expect("8 bytes"));
        let y = u64::from_le_bytes(data[b + len..b + len + 8].try_into().expect("8 bytes"));
        let diff = x ^ y;
        if diff != 0 {
            return len + (diff.trailing_zeros() / 8) as usize;
        }
        len += 8;
    }
    while len < max && data[a + len] == data[b + len] {
        len += 1;
    }
    len
}

/// Reusable LZ77 compressor.
///
/// Owns the hash-chain `head`/`prev` tables (~384 KiB) so repeated
/// compressions — one per Compresschain batch flush, one per chunk of the
/// chunked format — do not reallocate them. Only the `head` table is cleared
/// per call: chains are entered exclusively through `head`, and every
/// position linked into a chain writes its `prev` slot first, so stale
/// `prev` entries from earlier inputs are never reachable. Output therefore
/// depends only on the input, never on compressor history.
///
/// ```
/// let mut c = setchain_compress::Compressor::new();
/// let data = b"to be or not to be, that is the question".repeat(8);
/// let packed = c.compress(&data);
/// assert!(packed.len() < data.len());
/// assert_eq!(setchain_compress::decompress(&packed).unwrap(), data);
/// ```
pub struct Compressor {
    /// `head[h]`: most recent position whose 5-byte hash is `h`.
    head: Vec<u32>,
    /// `prev[i % WINDOW]`: previous position in the same chain as `i`.
    prev: Vec<u32>,
}

impl Default for Compressor {
    fn default() -> Self {
        Self::new()
    }
}

impl Compressor {
    /// Creates a compressor with freshly allocated scratch tables.
    pub fn new() -> Self {
        Compressor {
            head: vec![EMPTY; HASH_BUCKETS],
            // The chain table is only materialized when the configured
            // search depth actually follows chains.
            prev: vec![EMPTY; if MAX_CHAIN > 1 { WINDOW } else { 0 }],
        }
    }

    /// Compresses `data` into a new buffer (single-stream format).
    ///
    /// # Panics
    ///
    /// Panics if `data` is longer than [`MAX_DECLARED`] — such a stream
    /// could never be decompressed, so refusing to build it keeps
    /// `decompress(compress(x)) == x` unconditional.
    pub fn compress(&mut self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len() / 2 + 16);
        self.compress_into(data, &mut out);
        out
    }

    /// Compresses `data`, appending the stream to `out` (which is not
    /// cleared). Panics on inputs longer than [`MAX_DECLARED`], like
    /// [`Self::compress`].
    pub fn compress_into(&mut self, data: &[u8], out: &mut Vec<u8>) {
        assert!(
            data.len() as u64 <= MAX_DECLARED,
            "input exceeds MAX_DECLARED"
        );
        write_u64(out, data.len() as u64);
        if data.is_empty() {
            return;
        }
        self.head.fill(EMPTY);

        // Positions at or past this limit are not indexed or searched (the
        // hash reads an 8-byte word); matches may still *extend* into the
        // tail, which is emitted as literals otherwise.
        let hash_end = data.len().saturating_sub(7);
        let mut literal_start = 0usize;
        let mut i = 0usize;
        // Consecutive positions searched without finding a match; drives the
        // skip acceleration.
        let mut miss_streak = 0u32;

        while i < hash_end {
            let cand = self.insert_and_candidate(data, i);
            let (first_len, first_dist) = self.eval_chain(data, i, cand, MAX_CHAIN);

            if first_len == 0 {
                // No match: step ahead — faster the longer the current
                // incompressible run is. Skipped positions are not indexed
                // (they cost hash work and rarely become useful match
                // sources inside a junk run).
                i += 1 + (miss_streak >> ACCEL_LOG) as usize;
                miss_streak += 1;
                continue;
            }
            miss_streak = 0;

            // Lazy match (DEFLATE-style): a match starting one byte later
            // may be longer; if so, the current byte joins the literal run.
            // The probe only examines the freshest candidate — it needs to
            // notice clearly better matches, not exhaust the search space.
            let mut start = i;
            let mut best_len = first_len;
            let mut best_dist = first_dist;
            let mut indexed_to = i;
            while best_len < LAZY_THRESHOLD && start + 1 < hash_end {
                let probe_cand = self.insert_and_candidate(data, start + 1);
                indexed_to = start + 1;
                let (next_len, next_dist) = self.eval_chain(data, start + 1, probe_cand, 1);
                if next_len > best_len {
                    start += 1;
                    best_len = next_len;
                    best_dist = next_dist;
                } else {
                    break;
                }
            }

            flush_literals(data, out, literal_start, start);
            out.push(TOKEN_MATCH);
            write_u64(out, best_len as u64);
            write_u64(out, best_dist as u64);
            // Index the positions covered by the match so later data can
            // reference into it; `indexed_to` and earlier are already in.
            let end = start + best_len;
            for pos in (indexed_to + 1)..end.min(hash_end) {
                self.insert(data, pos);
            }
            i = end;
            literal_start = i;
        }
        flush_literals(data, out, literal_start, data.len());
    }

    /// Walks the hash chain starting at `candidate` looking for the longest
    /// match for position `i` worth emitting, returning `(len, dist)` —
    /// `(0, 0)` when nothing qualifies. A candidate qualifies when it
    /// reaches `MIN_MATCH` *and* its token is shorter than the bytes it
    /// replaces (a 4-byte match at a three-varint-byte distance would expand
    /// the stream).
    #[inline]
    fn eval_chain(
        &self,
        data: &[u8],
        i: usize,
        mut candidate: u32,
        max_chain: usize,
    ) -> (usize, usize) {
        let max_len = (data.len() - i).min(MAX_MATCH);
        // Primed so that only candidates able to reach MIN_MATCH are ever
        // fully extended: a candidate must first agree at `i + best_len`.
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut steps = 0;
        while candidate != EMPTY && steps < max_chain {
            let c = candidate as usize;
            let dist = i - c;
            if dist > WINDOW {
                break;
            }
            // A candidate can only beat the current best if it agrees at the
            // position where the best match ended; checking that one byte
            // first skips the full extension for most chain entries.
            if data.get(c + best_len) == data.get(i + best_len) {
                let len = common_prefix_len(data, c, i, max_len);
                if len > best_len {
                    best_len = len;
                    best_dist = dist;
                    if len >= max_len {
                        break;
                    }
                }
            }
            steps += 1;
            if steps >= max_chain {
                break;
            }
            candidate = self.prev[c & (WINDOW - 1)];
        }
        // Token-cost filter: tag + len varint + dist varint must undercut
        // the match length, or the "match" bloats the stream.
        let min_worth = match best_dist {
            0..128 => MIN_MATCH,
            128..16_384 => MIN_MATCH + 1,
            _ => MIN_MATCH + 2,
        };
        if best_dist != 0 && best_len >= min_worth {
            (best_len, best_dist)
        } else {
            (0, 0)
        }
    }

    /// Links position `i` into its hash chain and returns the previous chain
    /// head — the freshest match candidate for `i`. One hash computation
    /// serves both the index update and the search. Re-linking an
    /// already-linked position is a no-op that still returns its candidate
    /// (a self-referential chain entry would otherwise cycle).
    #[inline]
    fn insert_and_candidate(&mut self, data: &[u8], i: usize) -> u32 {
        let h = hash5(data, i);
        let cand = self.head[h];
        if cand == i as u32 {
            return if MAX_CHAIN > 1 {
                self.prev[i & (WINDOW - 1)]
            } else {
                EMPTY
            };
        }
        // With a depth-1 search the `prev` chain is never followed, so the
        // store (a random access into a 256 KiB table) is compiled out.
        if MAX_CHAIN > 1 {
            self.prev[i & (WINDOW - 1)] = cand;
        }
        self.head[h] = i as u32;
        cand
    }

    /// Links position `pos` into its hash chain. Callers must not link the
    /// same position twice (the cover-range loop in `compress_into` only
    /// visits fresh positions).
    #[inline]
    fn insert(&mut self, data: &[u8], pos: usize) {
        let h = hash5(data, pos);
        if MAX_CHAIN > 1 {
            self.prev[pos & (WINDOW - 1)] = self.head[h];
        }
        self.head[h] = pos as u32;
    }
}

fn flush_literals(data: &[u8], out: &mut Vec<u8>, start: usize, end: usize) {
    if end > start {
        out.push(TOKEN_LITERAL);
        write_u64(out, (end - start) as u64);
        out.extend_from_slice(&data[start..end]);
    }
}

std::thread_local! {
    /// Per-thread compressor scratch backing the [`compress`] free function
    /// (and, through it, the chunked format's parallel workers).
    static SCRATCH: std::cell::RefCell<Compressor> = std::cell::RefCell::new(Compressor::new());
}

/// Compresses `data` (single-stream format). The output always starts with
/// the original length so decompression can pre-allocate and validate.
///
/// Uses a per-thread reusable [`Compressor`]; callers that want explicit
/// control over scratch ownership use [`Compressor::compress`] directly.
/// Panics on inputs longer than [`MAX_DECLARED`].
///
/// ```
/// use setchain_compress::{compress, decompress};
/// let data = b"abcabcabcabcabcabcabcabc";
/// let packed = compress(data);
/// assert_eq!(decompress(&packed).unwrap(), data);
/// ```
pub fn compress(data: &[u8]) -> Vec<u8> {
    SCRATCH.with(|c| c.borrow_mut().compress(data))
}

/// Decompresses a single stream produced by [`compress`]. For the chunked
/// framing use [`crate::chunked::decompress_chunked`], or
/// [`crate::decompress_any`] to accept either format.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, DecompressError> {
    let mut out = Vec::new();
    decompress_into(data, &mut out)?;
    Ok(out)
}

/// Decompresses a single stream, *appending* to `out` (hot-path variant: a
/// reused buffer makes repeated decompression allocation-free). Distances
/// resolve only against bytes this stream appended, never against earlier
/// buffer contents. Returns the number of bytes appended; on error the
/// buffer is truncated back to its original length.
pub fn decompress_into(data: &[u8], out: &mut Vec<u8>) -> Result<usize, DecompressError> {
    let base = out.len();
    let result = decompress_append(data, out, base);
    if result.is_err() {
        out.truncate(base);
    }
    result
}

/// Varint read with a single-byte fast path: almost every varint in a real
/// stream (tags aside, the lengths and distances of short matches) fits one
/// byte, and the decoder reads three per token.
#[inline]
fn read_varint_fast(data: &[u8], pos: &mut usize) -> Option<u64> {
    let b = *data.get(*pos)?;
    if b < 0x80 {
        *pos += 1;
        return Some(b as u64);
    }
    read_u64(data, pos)
}

fn decompress_append(
    data: &[u8],
    out: &mut Vec<u8>,
    base: usize,
) -> Result<usize, DecompressError> {
    let mut pos = 0usize;
    let declared = read_u64(data, &mut pos).ok_or(DecompressError::Truncated)?;
    if declared > MAX_DECLARED {
        return Err(DecompressError::DeclaredTooLarge(declared));
    }
    let declared = declared as usize;
    out.reserve(declared);

    while pos < data.len() {
        let tag = data[pos];
        pos += 1;
        match tag {
            TOKEN_LITERAL => {
                let len =
                    read_varint_fast(data, &mut pos).ok_or(DecompressError::Truncated)? as usize;
                // checked_add: a Byzantine length near usize::MAX must fail
                // cleanly, not overflow the bound check.
                let end = pos.checked_add(len).ok_or(DecompressError::Truncated)?;
                if end > data.len() {
                    return Err(DecompressError::Truncated);
                }
                out.extend_from_slice(&data[pos..end]);
                pos = end;
            }
            TOKEN_MATCH => {
                let len =
                    read_varint_fast(data, &mut pos).ok_or(DecompressError::Truncated)? as usize;
                let dist =
                    read_varint_fast(data, &mut pos).ok_or(DecompressError::Truncated)? as usize;
                let produced = out.len() - base;
                if dist == 0 || dist > produced {
                    return Err(DecompressError::BadDistance {
                        at: produced,
                        distance: dist,
                    });
                }
                // Same overflow discipline as the literal path: reject any
                // length that would carry the output past MAX_DECLARED
                // before doing arithmetic or allocation with it.
                if len as u64 > MAX_DECLARED || (produced + len) as u64 > MAX_DECLARED {
                    return Err(DecompressError::DeclaredTooLarge(len as u64));
                }
                let start = out.len() - dist;
                if dist >= len {
                    // Non-overlapping copy: one bulk extend.
                    out.extend_from_within(start..start + len);
                } else {
                    // Overlapping copy (dist < len): the bytes from `start`
                    // onward are a repeating pattern of period `dist`.
                    // Bulk-copy the available suffix repeatedly; the
                    // available run doubles each round.
                    let mut remaining = len;
                    while remaining > 0 {
                        let take = (out.len() - start).min(remaining);
                        out.extend_from_within(start..start + take);
                        remaining -= take;
                    }
                }
            }
            other => return Err(DecompressError::BadToken(other)),
        }
    }

    let produced = out.len() - base;
    if produced != declared {
        return Err(DecompressError::LengthMismatch {
            declared,
            actual: produced,
        });
    }
    Ok(produced)
}

/// Summary of a compression operation, used by experiment reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionStats {
    /// Size of the input in bytes.
    pub original: usize,
    /// Size of the compressed output in bytes.
    pub compressed: usize,
}

impl CompressionStats {
    /// Compresses `data` and records sizes (the output itself is discarded).
    pub fn measure(data: &[u8]) -> Self {
        let compressed = compress(data);
        CompressionStats {
            original: data.len(),
            compressed: compressed.len(),
        }
    }

    /// Compression ratio `original / compressed`.
    ///
    /// ```
    /// let stats = setchain_compress::CompressionStats { original: 300, compressed: 100 };
    /// assert_eq!(stats.ratio(), 3.0);
    /// // The degenerate empty measurement reports a neutral ratio.
    /// let empty = setchain_compress::CompressionStats { original: 0, compressed: 0 };
    /// assert_eq!(empty.ratio(), 1.0);
    /// ```
    pub fn ratio(&self) -> f64 {
        if self.compressed == 0 {
            return 1.0;
        }
        self.original as f64 / self.compressed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SeedableRng};

    #[test]
    fn empty_roundtrip() {
        let c = compress(b"");
        assert_eq!(decompress(&c).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn short_literal_roundtrip() {
        let data = b"abc";
        assert_eq!(decompress(&compress(data)).unwrap(), data);
    }

    #[test]
    fn repetitive_roundtrip_and_shrinks() {
        let data: Vec<u8> = std::iter::repeat_n(b"the quick brown fox ".as_slice(), 200)
            .flatten()
            .copied()
            .collect();
        let c = compress(&data);
        assert!(
            c.len() * 4 < data.len(),
            "compressed {} vs {}",
            c.len(),
            data.len()
        );
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn random_data_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut data = vec![0u8; 50_000];
        rng.fill_bytes(&mut data);
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        // Random data should not blow up much.
        assert!(c.len() < data.len() + data.len() / 8 + 64);
    }

    #[test]
    fn structured_transactions_reach_paper_ratio_range() {
        // Hex-ish payloads with shared prefixes, similar to what the workload
        // generator produces; the paper reports ratios of 2.5-3.5.
        let mut rng = StdRng::seed_from_u64(7);
        let mut batch = Vec::new();
        for i in 0..100 {
            let to = rng.gen_range(0..40u32);
            batch.extend_from_slice(
                format!(
                    "{{\"chainId\":42161,\"from\":\"0x{:040x}\",\"to\":\"0x{:040x}\",\"value\":\"{}\",\
                     \"gas\":\"{}\",\"data\":\"0x{}\"}}",
                    i, to, rng.gen_range(0u64..1_000_000), rng.gen_range(21000u64..900_000),
                    "a3b1c2".repeat(rng.gen_range(10..120))
                )
                .as_bytes(),
            );
        }
        let stats = CompressionStats::measure(&batch);
        assert!(
            stats.ratio() > 2.0,
            "expected ratio above 2, got {:.2}",
            stats.ratio()
        );
        assert_eq!(decompress(&compress(&batch)).unwrap(), batch);
    }

    #[test]
    fn overlapping_match_roundtrip() {
        // "aaaa..." forces dist=1, len>1 overlapping copies.
        let data = vec![b'a'; 1000];
        assert_eq!(decompress(&compress(&data)).unwrap(), data);
        // Period-3 pattern exercises the doubling overlap copy path.
        let pattern: Vec<u8> = b"xyz".iter().copied().cycle().take(5000).collect();
        assert_eq!(decompress(&compress(&pattern)).unwrap(), pattern);
    }

    #[test]
    fn compressor_reuse_is_history_independent() {
        // Compressing B after A must give the same bytes as compressing B
        // with a fresh compressor: stale table entries are never reachable.
        let a: Vec<u8> = (0..40_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let b: Vec<u8> = b"abcdefgh".iter().copied().cycle().take(30_000).collect();
        let mut reused = Compressor::new();
        let _ = reused.compress(&a);
        let with_history = reused.compress(&b);
        let fresh = Compressor::new().compress(&b);
        assert_eq!(with_history, fresh);
        assert_eq!(decompress(&with_history).unwrap(), b);
    }

    #[test]
    fn compress_into_appends_without_clearing() {
        let mut c = Compressor::new();
        let mut out = vec![0xAA, 0xBB];
        c.compress_into(b"hello hello hello hello", &mut out);
        assert_eq!(&out[..2], &[0xAA, 0xBB]);
        assert_eq!(
            decompress(&out[2..]).unwrap(),
            b"hello hello hello hello".to_vec()
        );
    }

    #[test]
    #[should_panic(expected = "MAX_DECLARED")]
    fn oversized_input_is_refused() {
        // Claim a huge length without allocating 64 MiB of real data: a
        // zero-length slice can't trigger it, so build just past the bound.
        let data = vec![0u8; MAX_DECLARED as usize + 1];
        let _ = compress(&data);
    }

    #[test]
    fn truncated_stream_detected() {
        let data = vec![b'x'; 500];
        let mut c = compress(&data);
        c.truncate(c.len() - 3);
        assert!(decompress(&c).is_err());
    }

    #[test]
    fn bad_token_detected() {
        let mut c = compress(b"hello world hello world");
        // Corrupt the first token tag after the header varint.
        let mut pos = 0;
        read_u64(&c, &mut pos).unwrap();
        c[pos] = 0x7E;
        assert!(matches!(
            decompress(&c),
            Err(DecompressError::BadToken(0x7E))
        ));
    }

    #[test]
    fn bad_distance_detected() {
        let mut out = Vec::new();
        write_u64(&mut out, 10);
        out.push(TOKEN_MATCH);
        write_u64(&mut out, 5);
        write_u64(&mut out, 3); // distance 3 with empty output so far
        assert!(matches!(
            decompress(&out),
            Err(DecompressError::BadDistance { .. })
        ));
    }

    #[test]
    fn length_mismatch_detected() {
        let mut c = compress(b"abcdef");
        // Tamper with the declared length (first varint byte).
        c[0] = c[0].wrapping_add(1);
        assert!(matches!(
            decompress(&c),
            Err(DecompressError::LengthMismatch { .. }) | Err(DecompressError::Truncated)
        ));
    }

    #[test]
    fn declared_too_large_rejected() {
        let mut out = Vec::new();
        write_u64(&mut out, MAX_DECLARED + 1);
        assert!(matches!(
            decompress(&out),
            Err(DecompressError::DeclaredTooLarge(_))
        ));
    }

    #[test]
    fn huge_token_lengths_rejected_without_overflow_or_allocation() {
        // Byzantine literal length near u64::MAX: the bound check must fail
        // cleanly instead of overflowing `pos + len`.
        let mut s = Vec::new();
        write_u64(&mut s, 10);
        s.push(TOKEN_LITERAL);
        write_u64(&mut s, u64::MAX);
        assert!(matches!(decompress(&s), Err(DecompressError::Truncated)));

        // Byzantine match length: must be rejected before any arithmetic or
        // output allocation uses it (dist=1 would otherwise drive the
        // overlap copy toward 2^64 bytes).
        let mut s = Vec::new();
        write_u64(&mut s, 10);
        s.push(TOKEN_LITERAL);
        write_u64(&mut s, 1);
        s.push(b'x');
        s.push(TOKEN_MATCH);
        write_u64(&mut s, u64::MAX);
        write_u64(&mut s, 1);
        assert!(matches!(
            decompress(&s),
            Err(DecompressError::DeclaredTooLarge(_))
        ));
    }

    #[test]
    fn stats_ratio() {
        let stats = CompressionStats {
            original: 100,
            compressed: 40,
        };
        assert!((stats.ratio() - 2.5).abs() < 1e-9);
        let degenerate = CompressionStats {
            original: 0,
            compressed: 0,
        };
        assert_eq!(degenerate.ratio(), 1.0);
    }

    #[test]
    fn error_display_strings() {
        assert!(DecompressError::Truncated.to_string().contains("truncated"));
        assert!(DecompressError::BadToken(9).to_string().contains("token"));
        assert!(DecompressError::BadDistance { at: 1, distance: 2 }
            .to_string()
            .contains("distance"));
        assert!(DecompressError::LengthMismatch {
            declared: 1,
            actual: 2
        }
        .to_string()
        .contains("declared"));
        assert!(DecompressError::DeclaredTooLarge(5)
            .to_string()
            .contains("large"));
        assert!(DecompressError::NotChunked.to_string().contains("chunked"));
        assert!(DecompressError::BadChunkCount(7)
            .to_string()
            .contains("chunk count"));
        assert!(DecompressError::TrailingBytes(3)
            .to_string()
            .contains("trailing"));
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
                prop_assert_eq!(decompress(&compress(&data)).unwrap(), data);
            }

            #[test]
            fn roundtrip_low_entropy(data in proptest::collection::vec(0u8..4, 0..4096)) {
                let c = compress(&data);
                prop_assert_eq!(decompress(&c).unwrap(), data);
            }

            #[test]
            fn decompress_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
                // Arbitrary bytes fed to the decoder must return, not panic.
                let _ = decompress(&data);
            }

            #[test]
            fn reused_compressor_matches_fresh(
                first in proptest::collection::vec(any::<u8>(), 0..2048),
                second in proptest::collection::vec(0u8..16, 0..2048),
            ) {
                let mut reused = Compressor::new();
                let _ = reused.compress(&first);
                let fresh = Compressor::new().compress(&second);
                prop_assert_eq!(reused.compress(&second), fresh);
            }
        }
    }
}
