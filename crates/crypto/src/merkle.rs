//! Binary Merkle tree over SHA-256.
//!
//! The ledger commits to block contents with a Merkle root (as CometBFT
//! does), and tests use Merkle proofs to cross-check that batch hashing and
//! epoch hashing are consistent with set membership.

use crate::hash::{Digest256, Sha256};

/// Domain-separation prefixes (mirrors the RFC 6962 style used by CometBFT).
const LEAF_PREFIX: u8 = 0x00;
const NODE_PREFIX: u8 = 0x01;

/// Streaming core of `leaf_hash`, reusing the caller's hasher (reset on
/// return). [`MerkleTree::build`] feeds every leaf through one hasher; the
/// one-shot wrappers below share this body so the domain separation cannot
/// diverge between building and proof verification.
fn leaf_hash_into(h: &mut Sha256, data: &[u8]) -> Digest256 {
    h.update(&[LEAF_PREFIX]);
    h.update(data);
    h.finalize_reset()
}

/// Streaming core of `node_hash` (see [`leaf_hash_into`]).
fn node_hash_into(h: &mut Sha256, left: &Digest256, right: &Digest256) -> Digest256 {
    h.update(&[NODE_PREFIX]);
    h.update(left.as_bytes());
    h.update(right.as_bytes());
    h.finalize_reset()
}

fn leaf_hash(data: &[u8]) -> Digest256 {
    leaf_hash_into(&mut Sha256::new(), data)
}

fn node_hash(left: &Digest256, right: &Digest256) -> Digest256 {
    node_hash_into(&mut Sha256::new(), left, right)
}

/// A Merkle tree built over a list of byte strings.
#[derive(Clone, Debug)]
pub struct MerkleTree {
    /// levels[0] is the leaf level; the last level has a single root node.
    levels: Vec<Vec<Digest256>>,
    len: usize,
}

/// An inclusion proof for a single leaf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub index: usize,
    /// Total number of leaves in the tree.
    pub total: usize,
    /// Sibling hashes from the leaf level up to (but excluding) the root.
    /// Each entry is `(sibling, sibling_is_left)`.
    pub path: Vec<(Digest256, bool)>,
}

impl MerkleTree {
    /// Builds a tree over `items`. An empty item list produces a well-defined
    /// "empty root" (hash of the empty string with the leaf prefix).
    pub fn build<T: AsRef<[u8]>>(items: &[T]) -> Self {
        if items.is_empty() {
            return MerkleTree {
                levels: vec![vec![leaf_hash(b"")]],
                len: 0,
            };
        }
        // One hasher serves every leaf and node of the build, recycled
        // between inputs by the `*_into` helpers.
        let mut h = Sha256::new();
        let mut leaves = Vec::with_capacity(items.len());
        for item in items {
            leaves.push(leaf_hash_into(&mut h, item.as_ref()));
        }
        let mut levels: Vec<Vec<Digest256>> = Vec::new();
        levels.push(leaves);
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                if pair.len() == 2 {
                    next.push(node_hash_into(&mut h, &pair[0], &pair[1]));
                } else {
                    // Odd node is promoted (Bitcoin-style duplication avoided
                    // to keep proofs unambiguous).
                    next.push(pair[0]);
                }
            }
            levels.push(next);
        }
        MerkleTree {
            len: items.len(),
            levels,
        }
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the tree was built over zero items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The Merkle root.
    pub fn root(&self) -> Digest256 {
        self.levels.last().expect("at least one level")[0]
    }

    /// Builds an inclusion proof for leaf `index`. Panics if out of range.
    pub fn prove(&self, index: usize) -> MerkleProof {
        assert!(
            index < self.len,
            "leaf index {index} out of range ({})",
            self.len
        );
        let mut path = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = if idx.is_multiple_of(2) {
                idx + 1
            } else {
                idx - 1
            };
            if sibling < level.len() {
                path.push((level[sibling], sibling < idx));
            }
            idx /= 2;
        }
        MerkleProof {
            index,
            total: self.len,
            path,
        }
    }
}

impl MerkleProof {
    /// Verifies the proof for `item` against `root`.
    pub fn verify<T: AsRef<[u8]>>(&self, item: T, root: &Digest256) -> bool {
        let mut acc = leaf_hash(item.as_ref());
        for (sibling, sibling_is_left) in &self.path {
            acc = if *sibling_is_left {
                node_hash(sibling, &acc)
            } else {
                node_hash(&acc, sibling)
            };
        }
        acc == *root
    }
}

/// Convenience: the Merkle root of a list of byte strings.
pub fn merkle_root<T: AsRef<[u8]>>(items: &[T]) -> Digest256 {
    MerkleTree::build(items).root()
}

/// Convenience: SHA-256 of the concatenation of `parts` with length framing,
/// used where an order-sensitive hash of several byte strings is needed.
pub fn framed_hash<T: AsRef<[u8]>>(parts: &[T]) -> Digest256 {
    let mut h = Sha256::new();
    for p in parts {
        let p = p.as_ref();
        h.update(&(p.len() as u64).to_le_bytes());
        h.update(p);
    }
    h.finalize()
}

/// Domain-separated [`framed_hash`]: the length-framed `domain` tag is
/// absorbed before the parts, so two subsystems hashing identical payloads
/// under different tags can never produce colliding digests. Used for
/// commitments that live *next to* an existing hash format and must not be
/// confusable with it (e.g. per-shard sub-epoch roots next to batch roots).
pub fn domain_hash<T: AsRef<[u8]>>(domain: &[u8], parts: &[T]) -> Digest256 {
    let mut h = Sha256::new();
    h.update(&(domain.len() as u64).to_le_bytes());
    h.update(domain);
    for p in parts {
        let p = p.as_ref();
        h.update(&(p.len() as u64).to_le_bytes());
        h.update(p);
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_has_root() {
        let t = MerkleTree::build::<&[u8]>(&[]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.root(), leaf_hash(b""));
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let t = MerkleTree::build(&[b"tx0"]);
        assert_eq!(t.root(), leaf_hash(b"tx0"));
        assert!(t.prove(0).verify(b"tx0", &t.root()));
    }

    #[test]
    fn proofs_verify_for_all_leaves() {
        for n in 1..=33usize {
            let items: Vec<Vec<u8>> = (0..n).map(|i| format!("item-{i}").into_bytes()).collect();
            let t = MerkleTree::build(&items);
            for (i, item) in items.iter().enumerate() {
                let proof = t.prove(i);
                assert!(proof.verify(item, &t.root()), "n={n} i={i}");
                // Proof should not verify a different item.
                assert!(!proof.verify(b"other", &t.root()), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn root_changes_when_item_changes() {
        let a = merkle_root(&[b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
        let b = merkle_root(&[b"a".to_vec(), b"x".to_vec(), b"c".to_vec()]);
        assert_ne!(a, b);
    }

    #[test]
    fn root_is_order_sensitive() {
        let a = merkle_root(&[b"a".to_vec(), b"b".to_vec()]);
        let b = merkle_root(&[b"b".to_vec(), b"a".to_vec()]);
        assert_ne!(a, b);
    }

    #[test]
    fn framed_hash_resists_concatenation_ambiguity() {
        let a = framed_hash(&[b"ab".to_vec(), b"c".to_vec()]);
        let b = framed_hash(&[b"a".to_vec(), b"bc".to_vec()]);
        assert_ne!(a, b);
    }

    #[test]
    fn domain_hash_separates_domains_and_frames_parts() {
        let parts = [b"ab".to_vec(), b"c".to_vec()];
        let a = domain_hash(b"domain-a", &parts);
        let b = domain_hash(b"domain-b", &parts);
        assert_ne!(a, b, "different tags over identical payloads differ");
        // The tag is length-framed too: moving bytes between the tag and the
        // first part changes the digest.
        let shifted = domain_hash(b"domain-aa", &[b"b".to_vec(), b"c".to_vec()]);
        assert_ne!(a, shifted);
        // Same framing rule as framed_hash within the parts.
        assert_ne!(
            domain_hash(b"d", &[b"ab".to_vec(), b"c".to_vec()]),
            domain_hash(b"d", &[b"a".to_vec(), b"bc".to_vec()]),
        );
        // Deterministic across calls.
        assert_eq!(a, domain_hash(b"domain-a", &parts));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn prove_out_of_range_panics() {
        let t = MerkleTree::build(&[b"x"]);
        let _ = t.prove(1);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn every_leaf_proves(items in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..64), 1..40)) {
                let t = MerkleTree::build(&items);
                let root = t.root();
                for (i, item) in items.iter().enumerate() {
                    prop_assert!(t.prove(i).verify(item, &root));
                }
            }

            #[test]
            fn proof_binds_position(items in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..32), 2..20)) {
                // A proof for index i must not verify an item from a different
                // position unless the items happen to be identical bytes.
                let t = MerkleTree::build(&items);
                let root = t.root();
                let p0 = t.prove(0);
                if items[0] != items[1] {
                    prop_assert!(!p0.verify(&items[1], &root));
                }
            }
        }
    }
}
