//! Data-parallel helpers for the optimistic validation phase.
//!
//! Appendix G's first step validates every transaction of an epoch
//! *independently of all other transactions, that is, in parallel*. The
//! helper here is a chunked parallel map over scoped OS threads: the input is
//! split into contiguous chunks, one per worker, each worker writes its
//! results into its own slice of the output (no shared mutable state, no
//! locks), and `std::thread::scope` joins everything before returning — the
//! pattern the HPC guides recommend for embarrassingly parallel loops when a
//! work-stealing pool is not warranted.

use std::num::NonZeroUsize;

/// Number of worker threads to use by default: the available parallelism,
/// capped so tiny inputs do not pay thread spawn costs for nothing.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item of `items`, producing the results in order.
///
/// With `threads <= 1` or a small input this degenerates to a sequential map
/// (same results, no spawning). The function must be pure with respect to the
/// slice: results are position-for-position identical to
/// `items.iter().map(f).collect()`, which the tests and property tests below
/// verify.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    // Below this size the spawn overhead dominates any speedup.
    const MIN_PARALLEL_LEN: usize = 256;
    if threads <= 1 || items.len() < MIN_PARALLEL_LEN {
        return items.iter().map(f).collect();
    }
    let workers = threads.min(items.len());
    let chunk_len = items.len().div_ceil(workers);
    let mut chunk_results: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        // One contiguous input chunk per worker; each worker produces its own
        // output vector (no shared mutable state), and the chunks are
        // concatenated in order afterwards.
        let mut handles = Vec::with_capacity(workers);
        for chunk in items.chunks(chunk_len) {
            let f = &f;
            handles.push(scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()));
        }
        for handle in handles {
            chunk_results.push(handle.join().expect("validation worker panicked"));
        }
    });
    let mut results = Vec::with_capacity(items.len());
    for chunk in chunk_results {
        results.extend(chunk);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matches_sequential_map_on_small_input() {
        let items: Vec<u64> = (0..100).collect();
        let par = parallel_map(&items, 8, |x| x * 3);
        let seq: Vec<u64> = items.iter().map(|x| x * 3).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn matches_sequential_map_on_large_input() {
        let items: Vec<u64> = (0..10_000).collect();
        let par = parallel_map(&items, 4, |x| x.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let seq: Vec<u64> = items
            .iter()
            .map(|x| x.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn single_thread_and_empty_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 8, |x| *x).is_empty());
        let one = vec![5u32];
        assert_eq!(parallel_map(&one, 1, |x| x + 1), vec![6]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items: Vec<u32> = (0..300).collect();
        let par = parallel_map(&items, 1024, |x| x + 1);
        assert_eq!(par.len(), 300);
        assert_eq!(par[299], 300);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    proptest! {
        #[test]
        fn prop_parallel_equals_sequential(
            items in proptest::collection::vec(any::<u32>(), 0..2_000),
            threads in 1usize..16,
        ) {
            let par = parallel_map(&items, threads, |x| (*x as u64) * 7 + 1);
            let seq: Vec<u64> = items.iter().map(|x| (*x as u64) * 7 + 1).collect();
            prop_assert_eq!(par, seq);
        }
    }
}
