//! LEB128-style variable-length integer encoding used by the LZ77 stream.

/// Appends `value` to `out` as an unsigned LEB128 varint.
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a varint from `data` starting at `*pos`, advancing `*pos`.
/// Returns `None` on truncated or overlong (>10 byte) input.
pub fn read_u64(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            255,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncated_input_returns_none() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 1 << 40);
        buf.pop();
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), None);
    }

    #[test]
    fn overlong_input_rejected() {
        let buf = vec![0x80u8; 11];
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), None);
    }

    #[test]
    fn sequence_of_varints() {
        let values = [3u64, 70_000, 0, 42, 9_999_999_999];
        let mut buf = Vec::new();
        for v in values {
            write_u64(&mut buf, v);
        }
        let mut pos = 0;
        for v in values {
            assert_eq!(read_u64(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn roundtrip(v in any::<u64>()) {
                let mut buf = Vec::new();
                write_u64(&mut buf, v);
                let mut pos = 0;
                prop_assert_eq!(read_u64(&buf, &mut pos), Some(v));
                prop_assert_eq!(pos, buf.len());
            }
        }
    }
}
