//! Execution-layer micro-benchmarks (Appendix G ablation): the cost of the
//! optimistic validation phase with and without data parallelism, and of the
//! sequential apply phase, for realistic epoch sizes.
//!
//! Appendix G's trade-off is that execution is sequential within an epoch, so
//! epoch size directly bounds how much the validation parallelism can hide.
//! These benches quantify both halves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use setchain::{Element, ElementId};
use setchain_crypto::{KeyRegistry, ProcessId};
use setchain_exec::{execute_epoch, validate_epoch, ExecutedChain, ExecutionConfig, Transaction};

/// Decoded transfers for one epoch of `count` elements spread over 32 clients.
fn epoch_txs(count: usize) -> Vec<Transaction> {
    let registry = KeyRegistry::bootstrap(5, 4, 32);
    (0..count)
        .map(|i| {
            let client = (i % 32) as u32;
            let keys = registry.lookup(ProcessId::client(client as usize)).unwrap();
            let e = Element::new(
                &keys,
                ElementId::new(client, (i / 32) as u64),
                438,
                (i as u64).wrapping_mul(0x9E37_79B9) + 7,
            );
            Transaction::from_element(&e)
        })
        .collect()
}

fn bench_optimistic_validation(c: &mut Criterion) {
    let mut group = c.benchmark_group("epoch_validation");
    group.sample_size(20);
    for size in [1_000usize, 10_000, 50_000] {
        let txs = epoch_txs(size);
        group.throughput(Throughput::Elements(size as u64));
        group.bench_with_input(BenchmarkId::new("sequential", size), &txs, |b, txs| {
            let config = ExecutionConfig::sequential();
            b.iter(|| validate_epoch(txs, &config))
        });
        group.bench_with_input(BenchmarkId::new("parallel", size), &txs, |b, txs| {
            let config = ExecutionConfig::default();
            b.iter(|| validate_epoch(txs, &config))
        });
    }
    group.finish();
}

fn bench_sequential_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("epoch_apply");
    group.sample_size(20);
    for size in [1_000usize, 10_000, 50_000] {
        let txs = epoch_txs(size);
        let config = ExecutionConfig::sequential();
        let verdicts = validate_epoch(&txs, &config);
        group.throughput(Throughput::Elements(size as u64));
        group.bench_with_input(
            BenchmarkId::new("apply", size),
            &(txs, verdicts),
            |b, (txs, verdicts)| {
                b.iter(|| {
                    let mut state = setchain_exec::WorldState::with_genesis(
                        (0..64u32).map(|i| (setchain_exec::Address::for_client(i), 10_000_000)),
                    );
                    execute_epoch(&mut state, txs, verdicts, &config)
                })
            },
        );
    }
    group.finish();
}

fn bench_end_to_end_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("epoch_end_to_end");
    group.sample_size(15);
    for size in [1_000usize, 10_000] {
        let txs = epoch_txs(size);
        group.throughput(Throughput::Elements(size as u64));
        for (label, config) in [
            ("sequential", ExecutionConfig::sequential()),
            ("parallel_validation", ExecutionConfig::default()),
        ] {
            group.bench_with_input(BenchmarkId::new(label, size), &txs, |b, txs| {
                b.iter(|| {
                    let mut chain = ExecutedChain::for_clients(config, 64, 10_000_000);
                    chain.execute_epoch(1, txs);
                    chain.state_root()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_optimistic_validation,
    bench_sequential_apply,
    bench_end_to_end_epoch
);
criterion_main!(benches);
