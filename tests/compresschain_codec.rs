//! End-to-end guard for the PR 3 codec overhaul: the chunked-LZ77 batch
//! pipeline must be *semantically transparent*. Whatever the codec does to
//! the bytes on the ledger, every server must commit exactly the same
//! element sets into exactly the same epochs — with delivery
//! decompression+validation on (full Compresschain) or off ("Compresschain
//! light", the paper's Fig. 2 left ablation).

use std::collections::BTreeSet;

use setchain::{Algorithm, CompresschainApp, ElementId};
use setchain_simnet::SimTime;
use setchain_workload::{Deployment, ServerHandle};

const SIM_SECS: u64 = 10;

fn run(light: bool) -> Deployment {
    // Injection stops six simulated seconds before the end: both runs fully
    // drain, so every accepted element reaches an epoch in both.
    let mut builder = Deployment::builder(Algorithm::Compresschain)
        .servers(4)
        .rate(800.0)
        .collector(64)
        .injection_secs(4)
        .max_run_secs(SIM_SECS)
        .seed(11);
    if light {
        builder = builder.light();
    }
    let mut deployment = builder.build();
    deployment.sim.run_until(SimTime::from_secs(SIM_SECS));
    deployment
}

/// All element ids stamped into epochs, for one server.
fn committed_ids(server: &ServerHandle<'_>) -> BTreeSet<ElementId> {
    let state = server.state();
    (1..=state.epoch())
        .flat_map(|e| {
            state
                .epoch_elements(e)
                .expect("epoch in range")
                .iter()
                .map(|el| el.id)
                .collect::<Vec<_>>()
        })
        .collect()
}

#[test]
fn full_and_light_commit_identical_element_sets() {
    let full = run(false);
    let light = run(true);

    // Both runs committed real work.
    let committed_full = full.trace.committed_count_by(SimTime::from_secs(SIM_SECS));
    let committed_light = light.trace.committed_count_by(SimTime::from_secs(SIM_SECS));
    assert!(committed_full > 1000, "full run committed too little");
    assert_eq!(
        committed_full, committed_light,
        "decompression/validation on delivery must not change what commits"
    );

    // The committed element *sets* are identical across the two runs. (The
    // partition into epochs may differ: the light ablation consumes less
    // simulated CPU, so batch timing shifts — that is a schedule change,
    // not a codec effect.)
    let full_ids = committed_ids(&full.server(0));
    let light_ids = committed_ids(&light.server(0));
    assert!(!full_ids.is_empty(), "no epochs formed");
    assert_eq!(
        full_ids, light_ids,
        "committed element sets differ between full and light runs"
    );

    // Within each run, every server agrees on every common epoch
    // (Consistent-Gets), and no element is stamped twice (Unique-Epoch).
    for i in 0..4 {
        assert!(full
            .server(0)
            .state()
            .check_consistent_with(full.server(i).state()));
        assert!(light
            .server(0)
            .state()
            .check_consistent_with(light.server(i).state()));
        assert!(full.server(i).state().check_unique_epoch());
    }
}

#[test]
fn full_mode_really_decompresses_and_never_fails() {
    let full = run(false);
    let light = run(true);
    let mut decompressed_total = 0;
    for i in 0..4 {
        let stats = full.server(i).stats();
        // Peer batches were decompressed for real, and every frame decoded
        // back to its declared element bytes.
        assert_eq!(
            stats.batch_decompress_failures, 0,
            "server {i} saw bad frames"
        );
        decompressed_total += stats.batches_decompressed;
        // The light ablation skips delivery decompression entirely.
        assert_eq!(light.server(i).stats().batches_decompressed, 0);
    }
    assert!(decompressed_total > 0, "no batch was ever decompressed");

    // Ratio accounting measures the actually shipped chunked frames: with
    // compressible batch payloads the average must be a real compression
    // ratio, not a pass-through. The variant-specific surface is reached
    // through the `SetchainApp` downcast hook.
    for i in 0..4 {
        let ratio = full
            .server(i)
            .downcast::<CompresschainApp>()
            .expect("expected a Compresschain server")
            .average_ratio();
        assert!(
            ratio > 1.02 && ratio < 10.0,
            "server {i} reports implausible average ratio {ratio}"
        );
    }
}
