//! Experiment scenarios: the parameter space of Table 1 and the concrete
//! scenario grids behind each figure.

use serde::{Deserialize, Serialize};
use setchain::{Algorithm, AuthMode, QuotaConfig, SetchainConfig, StoreConfig};
use setchain_simnet::SimDuration;

use crate::adversary::Adversary;

/// The parameters of one experiment run (one line/bar/curve of a figure).
///
/// The struct is `#[non_exhaustive]`: new knobs will be added as new
/// workloads land. Downstream code should start from [`Scenario::base`] (or
/// [`Scenario::default`]) and chain the `with_*` builders — or use
/// [`Deployment::builder`](crate::Deployment::builder) directly — so it
/// keeps compiling across field additions.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[non_exhaustive]
pub struct Scenario {
    /// Human-readable label used in reports.
    pub label: String,
    /// Which Setchain algorithm runs.
    pub algorithm: Algorithm,
    /// Number of servers (Table 1: 4, 7 or 10).
    pub servers: usize,
    /// Total element injection rate across all clients, in elements/second
    /// (Table 1: 500, 1 000, 5 000, 10 000).
    pub sending_rate: f64,
    /// Collector size (Table 1: 100 or 500); ignored by Vanilla.
    pub collector_limit: usize,
    /// Artificial network delay in milliseconds (Table 1: 0, 30, 100).
    pub network_delay_ms: u64,
    /// Uniform message loss probability in `[0, 1]` (degraded-network
    /// operation; the paper's cluster runs lossless, so the default is 0).
    #[serde(default)]
    pub loss_rate: f64,
    /// How long clients inject elements (the paper uses 50 s).
    pub injection_secs: u64,
    /// Hard stop for the run even if elements remain uncommitted.
    pub max_run_secs: u64,
    /// Ledger block size in bytes (paper default 0.5 MB).
    pub block_bytes: usize,
    /// "Light" ablation: Hashchain without hash reversal, Compresschain
    /// without decompression/validation (Fig. 2 left).
    pub light: bool,
    /// Hashchain variant: restrict counter-signing and epoch-proof emission
    /// to the first `k` servers (the paper's 2f+1 suggestion). `None` runs
    /// the evaluated algorithm where every server signs.
    #[serde(default)]
    pub designated_signers: Option<usize>,
    /// Hashchain variant: push batch contents to all servers at flush time
    /// instead of relying on `Request_batch`.
    #[serde(default)]
    pub push_batches: bool,
    /// How client submissions are authenticated: per-element MACs (the
    /// paper's scheme, the default) or one MAC over the Merkle root of each
    /// injected batch ([`AuthMode::BatchRoot`]).
    #[serde(default)]
    pub auth_mode: AuthMode,
    /// Number of admission shards per server (see [`setchain::shard`]):
    /// each server partitions its admission caches, validation fan-out and
    /// `the_set` across this many shards. Host-side organization only —
    /// schedules, verdicts and epoch digests are identical for every value,
    /// so 1 (the default, the unsharded pipeline) is the correctness
    /// oracle for every other setting.
    #[serde(default = "default_shards")]
    pub shards: usize,
    /// Persistent epoch storage (see [`setchain_store`](setchain::StoreConfig)):
    /// each server opens a segment store under `{dir}/server-{index}`,
    /// appends every committed epoch and recovers from it on restart.
    /// `None` (the default) is the exact in-memory pre-store pipeline.
    /// Store I/O is host-side, so schedules and digests are identical
    /// either way.
    #[serde(default)]
    pub store: Option<StoreConfig>,
    /// Per-client admission quotas (see [`setchain::quota`]): a deterministic
    /// token bucket plus a pending-element cap, enforced before any
    /// authentication work, with excess sent a `Rejected { retry_after }`
    /// hint. `None` (the default) is the exact unmetered pre-quota pipeline —
    /// schedules are byte-identical with quotas off.
    #[serde(default)]
    pub quota: Option<QuotaConfig>,
    /// Adversarial workload preset (see [`crate::adversary`]): one extra
    /// misbehaving client attacking server 0 alongside the honest injection
    /// clients. `None` (the default) runs attack-free.
    #[serde(default)]
    pub adversary: Option<Adversary>,
    /// Record the detailed per-element / per-transaction trace needed for the
    /// latency CDF (Fig. 4). Costs memory, so throughput runs leave it off.
    pub detailed_trace: bool,
    /// RNG seed.
    pub seed: u64,
}

/// Serde default for [`Scenario::shards`]: pre-sharding scenarios read back
/// unsharded, never with zero shards.
fn default_shards() -> usize {
    1
}

impl Default for Scenario {
    /// The paper's base scenario for its primary contribution: Hashchain
    /// (see [`Scenario::base`]).
    fn default() -> Self {
        Scenario::base(Algorithm::Hashchain)
    }
}

impl Scenario {
    /// The paper's base scenario (Section 4.1): 10 servers, 10 000 el/s, no
    /// added delay, collector 100, 50 s of injection.
    pub fn base(algorithm: Algorithm) -> Self {
        Scenario {
            label: algorithm.name().to_string(),
            algorithm,
            servers: 10,
            sending_rate: 10_000.0,
            collector_limit: 100,
            network_delay_ms: 0,
            loss_rate: 0.0,
            injection_secs: 50,
            max_run_secs: 300,
            block_bytes: 524_288, // 0.5 MB, as in the paper's analysis

            light: false,
            designated_signers: None,
            push_batches: false,
            auth_mode: AuthMode::default(),
            shards: default_shards(),
            store: None,
            quota: None,
            adversary: None,
            detailed_trace: false,
            seed: 42,
        }
    }

    /// Builder: sets the label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Builder: sets the total sending rate.
    pub fn with_rate(mut self, rate: f64) -> Self {
        self.sending_rate = rate;
        self
    }

    /// Builder: sets the collector size.
    pub fn with_collector(mut self, limit: usize) -> Self {
        self.collector_limit = limit;
        self
    }

    /// Builder: sets the number of servers.
    pub fn with_servers(mut self, servers: usize) -> Self {
        self.servers = servers;
        self
    }

    /// Builder: sets the artificial network delay (ms).
    pub fn with_delay_ms(mut self, ms: u64) -> Self {
        self.network_delay_ms = ms;
        self
    }

    /// Builder: sets the uniform message loss probability (default 0).
    pub fn with_loss_rate(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "loss rate must be in [0,1], got {rate}"
        );
        self.loss_rate = rate;
        self
    }

    /// Builder: sets the injection duration in seconds.
    pub fn with_injection_secs(mut self, secs: u64) -> Self {
        self.injection_secs = secs;
        self
    }

    /// Builder: sets the maximum run duration in seconds.
    pub fn with_max_run_secs(mut self, secs: u64) -> Self {
        self.max_run_secs = secs;
        self
    }

    /// Builder: sets the ledger block size in bytes.
    pub fn with_block_bytes(mut self, bytes: usize) -> Self {
        self.block_bytes = bytes;
        self
    }

    /// Builder: marks the run as a "light" ablation.
    pub fn light(mut self) -> Self {
        self.light = true;
        self
    }

    /// Builder: restricts counter-signing to the first `k` servers
    /// (Hashchain's 2f+1 variant).
    pub fn with_designated_signers(mut self, k: usize) -> Self {
        self.designated_signers = Some(k);
        self
    }

    /// Builder: enables push-based batch dissemination (Hashchain variant).
    pub fn with_push_batches(mut self) -> Self {
        self.push_batches = true;
        self
    }

    /// Builder: sets the submission authentication mode (default
    /// [`AuthMode::PerElement`]).
    pub fn with_auth_mode(mut self, mode: AuthMode) -> Self {
        self.auth_mode = mode;
        self
    }

    /// Builder: sets the number of admission shards per server (default 1,
    /// the unsharded pipeline).
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard required");
        self.shards = shards;
        self
    }

    /// Builder: enables persistent epoch storage (default in-memory).
    pub fn with_store(mut self, store: StoreConfig) -> Self {
        self.store = Some(store);
        self
    }

    /// Builder: enables per-client admission quotas (default unmetered).
    pub fn with_quota(mut self, quota: QuotaConfig) -> Self {
        self.quota = Some(quota);
        self
    }

    /// Builder: adds an adversarial client running `preset` (default
    /// attack-free).
    pub fn with_adversary(mut self, preset: Adversary) -> Self {
        self.adversary = Some(preset);
        self
    }

    /// Builder: enables the detailed trace.
    pub fn detailed(mut self) -> Self {
        self.detailed_trace = true;
        self
    }

    /// Builder: sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Per-client sending rate (`sending_rate / server_count`), as in the
    /// paper's experiment description.
    pub fn per_client_rate(&self) -> f64 {
        self.sending_rate / self.servers as f64
    }

    /// Collector timeout used by the runs (the paper mentions a timeout but
    /// not its value; 200 ms keeps batches moving at low rates).
    pub fn collector_timeout(&self) -> SimDuration {
        SimDuration::from_millis(200)
    }

    /// The Setchain fault bound `f` for this deployment (`⌊(n−1)/2⌋`).
    pub fn setchain_f(&self) -> usize {
        (self.servers - 1) / 2
    }

    /// The [`SetchainConfig`] this scenario resolves to — the one place the
    /// scenario knobs (collector, timeout, variants, light ablation) are
    /// mapped onto the algorithm configuration.
    pub fn setchain_config(&self) -> SetchainConfig {
        let mut config =
            SetchainConfig::new(self.servers).with_collector_limit(self.collector_limit);
        config.collector_timeout = self.collector_timeout();
        if let Some(k) = self.designated_signers {
            config = config.with_designated_signers(k);
        }
        if self.push_batches {
            config = config.with_push_batches();
        }
        config = config
            .with_auth_mode(self.auth_mode)
            .with_shards(self.shards);
        if let Some(store) = &self.store {
            config = config.with_store(store.clone());
        }
        if let Some(quota) = self.quota {
            config = config.with_quota(quota);
        }
        if self.light {
            config = self.algorithm.light_config(config);
        }
        config
    }

    /// Expected number of injected elements.
    pub fn expected_elements(&self) -> u64 {
        (self.sending_rate * self.injection_secs as f64).round() as u64
    }
}

/// Table 1 of the paper: the evaluated parameter values.
pub mod table1 {
    /// Sending rates (elements per second).
    pub const SENDING_RATES: [f64; 4] = [500.0, 1_000.0, 5_000.0, 10_000.0];
    /// Collector sizes (elements).
    pub const COLLECTOR_LIMITS: [usize; 2] = [100, 500];
    /// Server counts.
    pub const SERVER_COUNTS: [usize; 3] = [4, 7, 10];
    /// Added network delays (ms).
    pub const NETWORK_DELAYS_MS: [u64; 3] = [0, 30, 100];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_scenario_matches_paper() {
        let s = Scenario::base(Algorithm::Hashchain);
        assert_eq!(s.servers, 10);
        assert_eq!(s.sending_rate, 10_000.0);
        assert_eq!(s.network_delay_ms, 0);
        assert_eq!(s.injection_secs, 50);
        assert_eq!(s.block_bytes, 524_288);
        assert_eq!(s.per_client_rate(), 1_000.0);
        assert_eq!(s.setchain_f(), 4);
        assert_eq!(s.expected_elements(), 500_000);
    }

    #[test]
    fn builders_compose() {
        let s = Scenario::base(Algorithm::Compresschain)
            .with_label("Compresschain c=500")
            .with_rate(5_000.0)
            .with_collector(500)
            .with_servers(7)
            .with_delay_ms(30)
            .with_injection_secs(20)
            .with_max_run_secs(60)
            .with_seed(7)
            .light()
            .detailed();
        assert_eq!(s.label, "Compresschain c=500");
        assert_eq!(s.sending_rate, 5_000.0);
        assert_eq!(s.collector_limit, 500);
        assert_eq!(s.servers, 7);
        assert_eq!(s.network_delay_ms, 30);
        assert_eq!(s.injection_secs, 20);
        assert_eq!(s.max_run_secs, 60);
        assert!(s.light);
        assert!(s.detailed_trace);
        assert_eq!(s.seed, 7);
        assert_eq!(s.setchain_f(), 3);
    }

    #[test]
    fn default_is_the_hashchain_base_scenario() {
        let d = Scenario::default();
        assert_eq!(d.algorithm, Algorithm::Hashchain);
        assert_eq!(d.servers, 10);
        let s = Scenario::default().with_block_bytes(4 * 1024 * 1024);
        assert_eq!(s.block_bytes, 4 * 1024 * 1024);
    }

    #[test]
    fn setchain_config_maps_every_knob() {
        let s = Scenario::base(Algorithm::Hashchain)
            .with_servers(10)
            .with_collector(500)
            .with_designated_signers(9)
            .with_push_batches()
            .with_auth_mode(AuthMode::BatchRoot)
            .with_shards(4)
            .with_store(StoreConfig::new("/tmp/setchain-knob-test"))
            .with_quota(QuotaConfig::new().with_rate(500))
            .with_adversary(Adversary::FloodClient);
        let config = s.setchain_config();
        assert_eq!(config.servers, 10);
        assert_eq!(config.collector_limit, 500);
        assert_eq!(config.designated_signers, Some(9));
        assert!(config.push_batches);
        assert_eq!(config.auth_mode, AuthMode::BatchRoot);
        assert_eq!(config.shards, 4);
        assert_eq!(
            config.store.as_ref().map(|s| s.dir.as_str()),
            Some("/tmp/setchain-knob-test")
        );
        assert!(config.hash_reversal, "full mode keeps hash reversal");
        assert_eq!(config.quota.map(|q| q.rate_per_sec), Some(500));
        assert_eq!(s.adversary, Some(Adversary::FloodClient));
        let default_auth = Scenario::base(Algorithm::Hashchain).setchain_config();
        assert_eq!(default_auth.auth_mode, AuthMode::PerElement);
        assert_eq!(default_auth.shards, 1, "unsharded pipeline by default");
        assert!(default_auth.store.is_none(), "in-memory by default");
        assert!(default_auth.quota.is_none(), "unmetered by default");

        let light = Scenario::base(Algorithm::Hashchain)
            .light()
            .setchain_config();
        assert!(!light.hash_reversal, "light hashchain disables reversal");
        assert!(light.decompress_validate);
        let light_c = Scenario::base(Algorithm::Compresschain)
            .light()
            .setchain_config();
        assert!(light_c.hash_reversal);
        assert!(!light_c.decompress_validate);
    }

    #[test]
    fn table1_values() {
        assert_eq!(table1::SENDING_RATES.len(), 4);
        assert_eq!(table1::COLLECTOR_LIMITS, [100, 500]);
        assert_eq!(table1::SERVER_COUNTS, [4, 7, 10]);
        assert_eq!(table1::NETWORK_DELAYS_MS, [0, 30, 100]);
    }
}
