//! The executed chain: consuming consolidated Setchain epochs in order and
//! maintaining the replicated account state across them.
//!
//! This is the "fully functional blockchain" of Appendix G: the Setchain
//! orders *epochs* (not individual elements); within an epoch the elements
//! are taken in the deterministic order every correct server stores them
//! (Consistent-Gets guarantees the common prefix of epochs is identical), so
//! executing epoch after epoch yields the same state root on every correct
//! server. [`ExecutedChain::sync_from_setchain`] performs exactly that
//! catch-up from a server's [`SetchainState`].

use std::collections::BTreeMap;

use setchain::{Element, SetchainState};
use setchain_crypto::Digest256;

use crate::account::{Address, WorldState};
use crate::executor::{validate_and_execute, EpochReceipts, ExecutionConfig};
use crate::transaction::Transaction;

/// Summary of one executed epoch.
#[derive(Clone, Debug)]
pub struct EpochSummary {
    /// The Setchain epoch number.
    pub epoch: u64,
    /// Number of transactions interpreted from the epoch's elements.
    pub txs: usize,
    /// Number applied.
    pub applied: usize,
    /// Number marked void.
    pub void: usize,
    /// Total value moved.
    pub value_moved: u128,
    /// Fees collected.
    pub fees: u128,
    /// State root after executing this epoch.
    pub state_root: Digest256,
}

/// A blockchain state machine driven by consolidated Setchain epochs.
#[derive(Clone, Debug)]
pub struct ExecutedChain {
    config: ExecutionConfig,
    state: WorldState,
    summaries: BTreeMap<u64, EpochSummary>,
    next_epoch: u64,
}

impl ExecutedChain {
    /// Creates a chain with the given execution configuration and an empty
    /// state.
    pub fn new(config: ExecutionConfig) -> Self {
        ExecutedChain {
            config,
            state: WorldState::new(),
            summaries: BTreeMap::new(),
            next_epoch: 1,
        }
    }

    /// Creates a chain whose genesis funds every address in `genesis`.
    pub fn with_genesis(
        config: ExecutionConfig,
        genesis: impl IntoIterator<Item = (Address, u128)>,
    ) -> Self {
        let mut chain = Self::new(config);
        chain.state = WorldState::with_genesis(genesis);
        chain
    }

    /// Creates a chain whose genesis funds the accounts of `clients`
    /// injection clients with `balance` each — the natural genesis for a
    /// Setchain deployment with that many clients.
    pub fn for_clients(config: ExecutionConfig, clients: u32, balance: u128) -> Self {
        Self::with_genesis(
            config,
            (0..clients).map(|i| (Address::for_client(i), balance)),
        )
    }

    /// The next epoch number this chain expects to execute.
    pub fn next_epoch(&self) -> u64 {
        self.next_epoch
    }

    /// Number of epochs executed so far.
    pub fn executed_epochs(&self) -> u64 {
        self.next_epoch - 1
    }

    /// The current account state.
    pub fn state(&self) -> &WorldState {
        &self.state
    }

    /// The state root after the most recently executed epoch (or of the
    /// genesis state if none has been executed).
    pub fn state_root(&self) -> Digest256 {
        self.state.state_root()
    }

    /// The summary recorded for `epoch`, if it has been executed.
    pub fn summary(&self, epoch: u64) -> Option<&EpochSummary> {
        self.summaries.get(&epoch)
    }

    /// Iterates over all epoch summaries in epoch order.
    pub fn summaries(&self) -> impl Iterator<Item = &EpochSummary> {
        self.summaries.values()
    }

    /// Totals across all executed epochs: `(applied, void)`.
    pub fn totals(&self) -> (usize, usize) {
        self.summaries
            .values()
            .fold((0, 0), |(a, v), s| (a + s.applied, v + s.void))
    }

    /// Executes the next epoch from already-decoded transactions. The epoch
    /// number must be exactly `next_epoch()`: epochs are executed strictly in
    /// order, as the paper requires.
    pub fn execute_epoch(&mut self, epoch: u64, txs: &[Transaction]) -> &EpochSummary {
        assert_eq!(
            epoch, self.next_epoch,
            "epochs must be executed in order (expected {}, got {epoch})",
            self.next_epoch
        );
        let receipts: EpochReceipts = validate_and_execute(&mut self.state, txs, &self.config);
        let summary = EpochSummary {
            epoch,
            txs: txs.len(),
            applied: receipts.applied,
            void: receipts.void,
            value_moved: receipts.value_moved,
            fees: receipts.fees,
            state_root: self.state.state_root(),
        };
        self.summaries.insert(epoch, summary);
        self.next_epoch += 1;
        self.summaries.get(&epoch).expect("just inserted")
    }

    /// Decodes a consolidated epoch's elements into transactions and executes
    /// them.
    pub fn execute_elements(&mut self, epoch: u64, elements: &[Element]) -> &EpochSummary {
        let txs: Vec<Transaction> = elements.iter().map(Transaction::from_element).collect();
        self.execute_epoch(epoch, &txs)
    }

    /// Catches up with a Setchain server: executes every consolidated epoch
    /// the server knows about that this chain has not executed yet. Returns
    /// the number of epochs executed.
    pub fn sync_from_setchain(&mut self, setchain: &SetchainState) -> u64 {
        let mut executed = 0;
        while self.next_epoch <= setchain.epoch() {
            let epoch = self.next_epoch;
            let elements = setchain
                .epoch_elements(epoch)
                .expect("epoch <= setchain.epoch()")
                .to_vec();
            self.execute_elements(epoch, &elements);
            executed += 1;
        }
        executed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::ExecutionConfig;
    use setchain::ElementId;
    use setchain_crypto::{KeyRegistry, ProcessId};

    fn chain() -> ExecutedChain {
        ExecutedChain::for_clients(ExecutionConfig::sequential(), 4, 10_000)
    }

    #[test]
    fn epochs_execute_in_order_and_update_roots() {
        let mut chain = chain();
        let genesis_root = chain.state_root();
        let tx1 = Transaction {
            element: ElementId::new(0, 0),
            from: Address::for_client(0),
            to: Address::for_client(1),
            amount: 100,
            fee: 1,
            nonce: Some(0),
            authenticated: true,
        };
        let s1 = chain.execute_epoch(1, &[tx1]).clone();
        assert_eq!(s1.applied, 1);
        assert_ne!(s1.state_root, genesis_root);
        assert_eq!(chain.executed_epochs(), 1);
        assert_eq!(chain.next_epoch(), 2);
        let s2 = chain.execute_epoch(2, &[]).clone();
        assert_eq!(s2.applied, 0);
        assert_eq!(s2.state_root, s1.state_root, "empty epoch leaves the root");
        assert_eq!(chain.totals(), (1, 1 - 1));
        assert_eq!(chain.summary(1).unwrap().epoch, 1);
        assert_eq!(chain.summaries().count(), 2);
    }

    #[test]
    #[should_panic(expected = "executed in order")]
    fn out_of_order_epoch_panics() {
        let mut chain = chain();
        let _ = chain.execute_epoch(3, &[]);
    }

    #[test]
    fn execute_elements_decodes_and_applies() {
        let reg = KeyRegistry::bootstrap(9, 4, 4);
        let keys = reg.lookup(ProcessId::client(1)).unwrap();
        let elements: Vec<Element> = (0..20)
            .map(|i| Element::new(&keys, ElementId::new(1, i), 438, 7 + i * 977))
            .collect();
        let mut chain = ExecutedChain::for_clients(ExecutionConfig::default(), 64, 1_000_000);
        let summary = chain.execute_elements(1, &elements).clone();
        assert_eq!(summary.txs, 20);
        assert_eq!(summary.applied + summary.void, 20);
        // Decoded elements are unsequenced, so the only voids come from
        // decoded self-sends (recipient == sender).
        assert!(summary.applied > 0);
        assert_eq!(chain.state().fees_collected(), summary.fees);
    }

    #[test]
    fn two_replicas_syncing_the_same_setchain_agree() {
        // Build a SetchainState directly (as a correct server would) and let
        // two independent executors sync from it.
        let reg = KeyRegistry::bootstrap(10, 4, 8);
        let mut setchain = SetchainState::new();
        for epoch in 0..3u64 {
            let keys = reg.lookup(ProcessId::client((epoch % 4) as usize)).unwrap();
            let elements: Vec<Element> = (0..50)
                .map(|i| {
                    Element::new(
                        &keys,
                        ElementId::new((epoch % 4) as u32, epoch * 50 + i),
                        438,
                        epoch * 1_000 + i * 13,
                    )
                })
                .collect();
            setchain.record_epoch(elements);
        }
        let mut a = ExecutedChain::for_clients(ExecutionConfig::default(), 64, 1_000_000);
        let mut b = ExecutedChain::for_clients(ExecutionConfig::sequential(), 64, 1_000_000);
        assert_eq!(a.sync_from_setchain(&setchain), 3);
        assert_eq!(b.sync_from_setchain(&setchain), 3);
        assert_eq!(a.state_root(), b.state_root());
        // Syncing again is a no-op.
        assert_eq!(a.sync_from_setchain(&setchain), 0);
        assert_eq!(a.executed_epochs(), 3);
    }
}
