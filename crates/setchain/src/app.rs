//! The variant-agnostic Setchain application API.
//!
//! The journal Setchain papers define *one* distributed object by its API
//! (`add`, `get`, `get_epoch`, epoch-proofs); Vanilla, Compresschain and
//! Hashchain are three interchangeable implementations of it. This module
//! encodes that framing in the type system:
//!
//! * [`SetchainApp`] — the object-safe trait every server application
//!   implements. Deployments, benches and tests talk to `dyn SetchainApp`
//!   and never dispatch on [`Algorithm`] themselves.
//! * [`AppFactory`] — the **single** place where an [`Algorithm`] value is
//!   turned into a concrete application. Everything downstream of the
//!   factory is variant-agnostic; adding a fourth algorithm means one
//!   `impl SetchainApp` plus one arm here.
//!
//! Variant-specific surfaces (Compresschain's measured compression ratio,
//! Hashchain's known-batch count) intentionally stay on the concrete types;
//! [`SetchainApp::as_any`] is the downcast hook for callers that need them:
//!
//! ```
//! use setchain::{Algorithm, AppFactory, CompresschainApp, SetchainConfig, SetchainTrace};
//! use setchain_crypto::{KeyRegistry, ProcessId};
//!
//! let registry = KeyRegistry::bootstrap(7, 4, 1);
//! let factory = AppFactory::new(Algorithm::Compresschain, registry.clone(), SetchainConfig::new(4));
//! let keys = registry.lookup(ProcessId::server(0)).unwrap();
//! let app = factory.build(keys, SetchainTrace::new(), setchain::ServerByzMode::Correct);
//!
//! assert_eq!(app.algorithm(), Algorithm::Compresschain);
//! assert_eq!(app.state().epoch(), 0);
//! // Variant-specific surface through the downcast hook:
//! let concrete = app.as_any().downcast_ref::<CompresschainApp>().unwrap();
//! assert_eq!(concrete.average_ratio(), 1.0);
//! ```

use std::any::Any;

use setchain_crypto::{KeyPair, KeyRegistry};
use setchain_ledger::Application;

use crate::byzantine::ServerByzMode;
use crate::compresschain::CompresschainApp;
use crate::config::SetchainConfig;
use crate::element::Element;
use crate::hashchain::{HashchainApp, SharedBatchRegistry};
use crate::messages::SetchainMsg;
use crate::proofs::EpochProof;
use crate::server::{ServerStats, ShardStats};
use crate::state::SetchainState;
use crate::trace::SetchainTrace;
use crate::tx::SetchainTx;
use crate::vanilla::VanillaApp;
use crate::Algorithm;

/// The variant-agnostic Setchain server application: the accessors shared by
/// all three algorithms, on top of the ledger [`Application`] callbacks.
///
/// The trait is object-safe; deployments hold servers as
/// `LedgerNode<Box<dyn SetchainApp>>` and never match on [`Algorithm`].
/// Construction goes through [`AppFactory`] (or [`Algorithm::build`]), the
/// one place variant dispatch is allowed.
pub trait SetchainApp: Application<Tx = SetchainTx, Msg = SetchainMsg> {
    /// Which of the paper's algorithms this application implements.
    fn algorithm(&self) -> Algorithm;

    /// The Setchain state of this server (`the_set`, `epoch`, `history`,
    /// `proofs`) — the server-side view behind `get`/`get_epoch`.
    fn state(&self) -> &SetchainState;

    /// Server counters for tests and experiment reports.
    fn stats(&self) -> ServerStats;

    /// Per-admission-shard counters ([`ShardStats`]), ring-ordered — one
    /// entry per configured shard (a single entry for the default
    /// unsharded pipeline). Deployments roll these up per server.
    fn shard_stats(&self) -> Vec<ShardStats>;

    /// The deployment configuration this server runs with.
    fn config(&self) -> &SetchainConfig;

    /// The algorithm-agnostic server core: admission caches, quota state,
    /// epoch machinery — shared by all three variants. Read-only inspection
    /// hook for deployments, benches and tests.
    fn core(&self) -> &crate::server::ServerCore;

    /// Epoch-proofs held for `epoch`, borrowed from the state.
    fn proofs_for(&self, epoch: u64) -> &[EpochProof] {
        self.state().proofs_for(epoch)
    }

    /// Elements of epoch `epoch` (1-based), if this server has recorded it.
    fn epoch_elements(&self, epoch: u64) -> Option<&[Element]> {
        self.state().epoch_elements(epoch)
    }

    /// Downcast hook for variant-specific surfaces (e.g.
    /// [`CompresschainApp::average_ratio`], [`HashchainApp::known_batches`]):
    /// the concrete type behind the trait object.
    fn as_any(&self) -> &dyn Any;
}

/// Builds Setchain server applications of one algorithm for one deployment.
///
/// This is the single variant-dispatch site: `SetchainConfig` → application
/// construction lives here and nowhere else. The factory also owns the
/// [`SharedBatchRegistry`] that "Hashchain light" servers share, so every
/// server built by one factory sees the same out-of-band batch availability.
#[derive(Clone)]
pub struct AppFactory {
    algorithm: Algorithm,
    registry: KeyRegistry,
    config: SetchainConfig,
    shared: SharedBatchRegistry,
}

impl AppFactory {
    /// Creates a factory for `algorithm` with the deployment-wide PKI and
    /// configuration. The configuration should already carry any light-mode
    /// flags (see [`Algorithm::light_config`]).
    pub fn new(algorithm: Algorithm, registry: KeyRegistry, config: SetchainConfig) -> Self {
        AppFactory {
            algorithm,
            registry,
            config,
            shared: SharedBatchRegistry::new(),
        }
    }

    /// The algorithm this factory builds.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The configuration every built server shares.
    pub fn config(&self) -> &SetchainConfig {
        &self.config
    }

    /// The shared batch registry "Hashchain light" servers built by this
    /// factory use for out-of-band batch availability.
    pub fn shared_registry(&self) -> &SharedBatchRegistry {
        &self.shared
    }

    /// Builds one server application.
    ///
    /// `byz` is ignored by "Hashchain light" servers (the ablation assumes
    /// all servers correct, matching the paper's Fig. 2 left setup).
    pub fn build(
        &self,
        keys: KeyPair,
        trace: SetchainTrace,
        byz: ServerByzMode,
    ) -> Box<dyn SetchainApp> {
        let registry = self.registry.clone();
        let config = self.config.clone();
        match self.algorithm {
            Algorithm::Vanilla => Box::new(VanillaApp::new(keys, registry, config, trace, byz)),
            Algorithm::Compresschain => {
                Box::new(CompresschainApp::new(keys, registry, config, trace, byz))
            }
            Algorithm::Hashchain if !self.config.hash_reversal => Box::new(
                HashchainApp::new_light(keys, registry, config, trace, self.shared.clone()),
            ),
            Algorithm::Hashchain => Box::new(HashchainApp::new(keys, registry, config, trace, byz)),
        }
    }
}

impl Algorithm {
    /// Applies this algorithm's "light" ablation to a configuration
    /// (Hashchain: no hash reversal; Compresschain: no delivery
    /// decompression/validation; Vanilla: unchanged).
    pub fn light_config(&self, config: SetchainConfig) -> SetchainConfig {
        match self {
            Algorithm::Vanilla => config,
            Algorithm::Compresschain => config.light_compresschain(),
            Algorithm::Hashchain => config.light_hashchain(),
        }
    }

    /// Stable index of this algorithm in [`Algorithm::ALL`] (the paper's
    /// presentation order). Lets callers keep per-algorithm tables without
    /// dispatching on the variants themselves.
    pub fn index(&self) -> usize {
        match self {
            Algorithm::Vanilla => 0,
            Algorithm::Compresschain => 1,
            Algorithm::Hashchain => 2,
        }
    }

    /// Builds one standalone boxed application of this variant — the
    /// convenience form of [`AppFactory::new`] + [`AppFactory::build`].
    ///
    /// Deployments whose servers must share state across instances
    /// ("Hashchain light" needs one [`SharedBatchRegistry`] for all servers)
    /// should create a single [`AppFactory`] and reuse it instead.
    pub fn build(
        self,
        keys: KeyPair,
        registry: KeyRegistry,
        config: SetchainConfig,
        trace: SetchainTrace,
        byz: ServerByzMode,
    ) -> Box<dyn SetchainApp> {
        AppFactory::new(self, registry, config).build(keys, trace, byz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setchain_crypto::ProcessId;

    fn factory(algorithm: Algorithm, light: bool) -> (AppFactory, KeyRegistry) {
        let registry = KeyRegistry::bootstrap(13, 4, 2);
        let mut config = SetchainConfig::new(4);
        if light {
            config = algorithm.light_config(config);
        }
        (
            AppFactory::new(algorithm, registry.clone(), config),
            registry,
        )
    }

    #[test]
    fn factory_builds_every_algorithm() {
        for algorithm in Algorithm::ALL {
            let (factory, registry) = factory(algorithm, false);
            let keys = registry.lookup(ProcessId::server(0)).unwrap();
            let app = factory.build(keys, SetchainTrace::new(), ServerByzMode::Correct);
            assert_eq!(app.algorithm(), algorithm);
            assert_eq!(app.state().epoch(), 0);
            assert_eq!(app.stats(), ServerStats::default());
            assert_eq!(app.config().servers, 4);
            assert!(app.proofs_for(1).is_empty());
            assert!(app.epoch_elements(1).is_none());
        }
    }

    #[test]
    fn downcast_hook_reaches_variant_surfaces() {
        let (factory, registry) = factory(Algorithm::Hashchain, false);
        let keys = registry.lookup(ProcessId::server(1)).unwrap();
        let app = factory.build(keys, SetchainTrace::new(), ServerByzMode::Correct);
        let concrete = app
            .as_any()
            .downcast_ref::<HashchainApp>()
            .expect("hashchain app");
        assert_eq!(concrete.known_batches(), 0);
        assert!(app.as_any().downcast_ref::<VanillaApp>().is_none());
    }

    #[test]
    fn light_hashchain_servers_share_one_registry() {
        let (factory, registry) = factory(Algorithm::Hashchain, true);
        assert!(!factory.config().hash_reversal);
        let a = factory.build(
            registry.lookup(ProcessId::server(0)).unwrap(),
            SetchainTrace::new(),
            ServerByzMode::Correct,
        );
        let _b = factory.build(
            registry.lookup(ProcessId::server(1)).unwrap(),
            SetchainTrace::new(),
            ServerByzMode::Correct,
        );
        // Both servers resolve batches through the factory's registry.
        assert!(factory.shared_registry().is_empty());
        assert_eq!(a.algorithm(), Algorithm::Hashchain);
    }

    #[test]
    fn light_config_only_touches_the_matching_flag() {
        let base = SetchainConfig::new(4);
        let h = Algorithm::Hashchain.light_config(base.clone());
        assert!(!h.hash_reversal && h.decompress_validate);
        let c = Algorithm::Compresschain.light_config(base.clone());
        assert!(c.hash_reversal && !c.decompress_validate);
        let v = Algorithm::Vanilla.light_config(base);
        assert!(v.hash_reversal && v.decompress_validate);
    }

    #[test]
    fn algorithm_index_matches_all_order() {
        for (i, algorithm) in Algorithm::ALL.iter().enumerate() {
            assert_eq!(algorithm.index(), i);
        }
    }

    #[test]
    fn one_shot_build_constructs_an_app() {
        let registry = KeyRegistry::bootstrap(17, 4, 1);
        let keys = registry.lookup(ProcessId::server(2)).unwrap();
        let app = Algorithm::Vanilla.build(
            keys,
            registry,
            SetchainConfig::new(4),
            SetchainTrace::new(),
            ServerByzMode::Correct,
        );
        assert_eq!(app.algorithm(), Algorithm::Vanilla);
    }
}
