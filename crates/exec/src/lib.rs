//! Execution layer extending Setchain to a fully functional blockchain.
//!
//! Appendix G of the paper explains how the Setchain algorithms — which by
//! themselves only order *sets* of opaque elements — can be extended into a
//! blockchain the way Hyperledger Fabric or RedBelly do:
//!
//! 1. while epochs are being built, each transaction is validated
//!    **optimistically and independently** of all others (i.e. in parallel),
//!    ignoring its semantics;
//! 2. once an epoch is consolidated and its transactions ordered, their
//!    effects are computed **sequentially** in their final position, and any
//!    transaction found invalid at that point is marked **void**.
//!
//! This crate implements that extension:
//!
//! * [`Address`] / [`Account`] / [`WorldState`] — the replicated account
//!   state with a Merkle [`state root`](WorldState::state_root).
//! * [`Transaction`] — value transfers decoded deterministically from
//!   Setchain [`Element`](setchain::Element)s, with the stateless
//!   (parallelisable) and stateful (sequential) validity split the paper
//!   describes.
//! * [`validate_epoch`] / [`execute_epoch`] — the two execution phases;
//!   validation fans out over scoped worker threads
//!   ([`parallel::parallel_map`]).
//! * [`ExecutedChain`] — a state machine that follows a Setchain server's
//!   consolidated epochs ([`ExecutedChain::sync_from_setchain`]) so that all
//!   correct servers compute identical state roots.
//!
//! The `token_blockchain` example at the repository root drives this crate
//! from a full simulated Hashchain deployment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod account;
pub mod chain;
pub mod executor;
pub mod parallel;
pub mod transaction;

pub use account::{Account, Address, WorldState};
pub use chain::{EpochSummary, ExecutedChain};
pub use executor::{
    execute_epoch, validate_and_execute, validate_epoch, EpochReceipts, ExecutionConfig, Receipt,
    TxStatus,
};
pub use transaction::{Transaction, VoidReason};
