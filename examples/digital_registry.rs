//! Digital-credential registry on a Setchain (the paper's motivating use
//! case: MIT digital diplomas, government registries).
//!
//! A university issues diploma records; each record only needs to be
//! *registered and provable*, not ordered against other diplomas — exactly
//! the relaxation Setchain exploits. This example runs a 7-server
//! Compresschain deployment, registers a graduating class, and then plays the
//! role of an employer verifying one diploma with `f + 1` epoch-proofs from a
//! single server.
//!
//! ```sh
//! cargo run --release -p setchain-workload --example digital_registry
//! ```

use setchain::{verify_epoch, Algorithm, Element, ElementId, SetchainMsg};
use setchain_crypto::{KeyPair, ProcessId};
use setchain_simnet::SimTime;
use setchain_workload::{Deployment, RequestClient, Scenario};

fn main() {
    let scenario = Scenario::base(Algorithm::Compresschain)
        .with_label("digital-registry")
        .with_servers(7)
        .with_rate(300.0) // other registry traffic in the background
        .with_collector(50)
        .with_injection_secs(6)
        .with_max_run_secs(40)
        .with_seed(7);
    let mut deployment = Deployment::build(&scenario);
    let n = scenario.servers;
    let f = scenario.setchain_f();

    // The university is a Setchain client with its own registered key.
    let university = ProcessId::client(200);
    let university_keys = KeyPair::derive(university, 0xD1_70_0A);
    deployment.registry.register(university_keys);

    // A graduating class of 40 diplomas. A real deployment would store the
    // hash of the credential document; here the content seed stands in for it.
    let diplomas: Vec<Element> = (0..40)
        .map(|i| {
            Element::new(
                &university_keys,
                ElementId::new(200, i),
                620,
                0xACAD_0000 + i,
            )
        })
        .collect();
    println!("Registering {} diplomas through server 1 …", diplomas.len());

    let mut script: Vec<(SimTime, ProcessId, SetchainMsg)> = diplomas
        .iter()
        .enumerate()
        .map(|(i, d)| {
            (
                SimTime::from_millis(400 + 25 * i as u64),
                ProcessId::server(1),
                SetchainMsg::Add(*d),
            )
        })
        .collect();
    // Later, the employer asks a different server for the state and for the
    // epochs that might contain the diploma of interest.
    script.push((
        SimTime::from_secs(25),
        ProcessId::server(5),
        SetchainMsg::Get { request_id: 1 },
    ));
    for epoch in 1..=12u64 {
        script.push((
            SimTime::from_secs(26),
            ProcessId::server(5),
            SetchainMsg::GetEpoch {
                request_id: 100 + epoch,
                epoch,
            },
        ));
    }
    deployment
        .sim
        .add_process(university, Box::new(RequestClient::new(script)));

    deployment.sim.run_until(SimTime::from_secs(32));

    // The employer wants to verify diploma #17.
    let wanted = diplomas[17];
    let client: &RequestClient = deployment.sim.process(university).expect("client actor");
    let mut found = None;
    for (_, _, response) in client.responses() {
        if let SetchainMsg::EpochResponse {
            epoch,
            elements,
            proofs,
            ..
        } = response
        {
            if elements.iter().any(|e| e.id == wanted.id) {
                let verdict = verify_epoch(&deployment.registry, n, f, *epoch, elements, proofs);
                found = Some((*epoch, elements.len(), proofs.len(), verdict));
                break;
            }
        }
    }
    match found {
        Some((epoch, elements, proofs, verdict)) => {
            println!(
                "Diploma {:?} found in epoch {epoch} ({elements} records, {proofs} proofs): {verdict:?}",
                wanted.id
            );
            println!(
                "A single server response was enough: f + 1 = {} proofs bound the epoch.",
                f + 1
            );
        }
        None => {
            println!("Diploma not yet in a retrievable epoch — the employer should retry later.")
        }
    }

    // Registry-wide summary.
    let committed = deployment.trace.committed_count_by(SimTime::from_secs(32));
    let added = deployment.trace.added_count();
    println!("Registry totals: {added} records added, {committed} already committed with a proof quorum.");
    let s0 = deployment.server(0);
    println!(
        "Server 0 history: {} epochs, {} records; Unique-Epoch holds: {}",
        s0.state().epoch(),
        s0.state().history_elements(),
        s0.state().check_unique_epoch()
    );
}
