//! The discrete-event scheduler.
//!
//! [`Simulation`] owns the processes, the network and the event queue. It is
//! single-threaded and deterministic: events are ordered by `(time, sequence
//! number)`, where the sequence number is assigned at insertion time, so two
//! runs with the same seed and the same inputs produce identical schedules.
//! Parallelism in the evaluation harness comes from running many independent
//! simulations on different OS threads, not from inside one simulation.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use setchain_crypto::ProcessId;

use crate::network::{Network, NetworkConfig, Partition};
use crate::process::{Action, Context, Process, TimerToken, Wire};
use crate::time::{SimDuration, SimTime};

/// Top-level simulation parameters.
#[derive(Clone, Debug)]
pub struct SimulationConfig {
    /// Seed for the simulation RNG (network jitter, process randomness).
    pub seed: u64,
    /// Network model configuration.
    pub network: NetworkConfig,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            seed: 42,
            network: NetworkConfig::lan(),
        }
    }
}

/// Why a call to [`Simulation::run_until_quiescent`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely at the given time.
    Quiescent(SimTime),
    /// The time limit was reached with events still pending.
    TimeLimit(SimTime),
}

enum EventKind<M> {
    Deliver {
        from: ProcessId,
        to: ProcessId,
        /// Shared payload: a broadcast enqueues one allocation for all
        /// recipients. Ownership is materialized at delivery time
        /// (`Arc::try_unwrap`), so the last — often the only — recipient
        /// takes the message without a copy.
        msg: Arc<M>,
    },
    Timer {
        node: ProcessId,
        token: TimerToken,
    },
}

struct Event<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering so the BinaryHeap (a max-heap) pops the earliest
        // event first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Slot<M: Wire> {
    process: Box<dyn Process<M>>,
    /// Node CPU is busy until this time; deliveries are deferred past it.
    busy_until: SimTime,
}

/// A deterministic discrete-event simulation.
pub struct Simulation<M: Wire> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Event<M>>,
    processes: BTreeMap<ProcessId, Slot<M>>,
    network: Network,
    rng: StdRng,
    started: bool,
    events_processed: u64,
    messages_deferred: u64,
}

impl<M: Wire> Simulation<M> {
    /// Creates an empty simulation.
    pub fn new(config: SimulationConfig) -> Self {
        Simulation {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            processes: BTreeMap::new(),
            network: Network::new(config.network),
            rng: StdRng::seed_from_u64(config.seed),
            started: false,
            events_processed: 0,
            messages_deferred: 0,
        }
    }

    /// Registers a process. Panics if the id is already taken or if the
    /// simulation has already started.
    pub fn add_process(&mut self, id: ProcessId, process: Box<dyn Process<M>>) {
        assert!(
            !self.started,
            "cannot add processes after the simulation started"
        );
        let prev = self.processes.insert(
            id,
            Slot {
                process,
                busy_until: SimTime::ZERO,
            },
        );
        assert!(prev.is_none(), "duplicate process id {id}");
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of deliveries deferred because the target node's CPU was busy.
    pub fn messages_deferred(&self) -> u64 {
        self.messages_deferred
    }

    /// Read access to the network (for drop/delivery counters).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Installs a network partition; returns its index.
    pub fn add_partition(&mut self, partition: Partition) -> usize {
        self.network.add_partition(partition)
    }

    /// Heals all network partitions.
    pub fn heal_all_partitions(&mut self) {
        self.network.heal_all_partitions()
    }

    /// Ids of all registered processes.
    pub fn process_ids(&self) -> Vec<ProcessId> {
        self.processes.keys().copied().collect()
    }

    /// Typed read access to a process, for post-run inspection.
    pub fn process<T: 'static>(&self, id: ProcessId) -> Option<&T> {
        self.processes
            .get(&id)
            .and_then(|s| s.process.as_any().downcast_ref::<T>())
    }

    /// Typed mutable access to a process.
    pub fn process_mut<T: 'static>(&mut self, id: ProcessId) -> Option<&mut T> {
        self.processes
            .get_mut(&id)
            .and_then(|s| s.process.as_any_mut().downcast_mut::<T>())
    }

    /// Schedules a message injection from outside the simulation (used by
    /// tests and by workload drivers that are not modelled as actors).
    pub fn schedule_message(&mut self, at: SimTime, from: ProcessId, to: ProcessId, msg: M) {
        assert!(at >= self.now, "cannot schedule in the past");
        self.push(
            at,
            EventKind::Deliver {
                from,
                to,
                msg: Arc::new(msg),
            },
        );
    }

    /// Schedules a timer for `node` from outside the simulation.
    pub fn schedule_timer(&mut self, at: SimTime, node: ProcessId, token: TimerToken) {
        assert!(at >= self.now, "cannot schedule in the past");
        self.push(at, EventKind::Timer { node, token });
    }

    fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event { at, seq, kind });
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let ids: Vec<ProcessId> = self.processes.keys().copied().collect();
        for id in ids {
            self.run_handler(id, |process, ctx| process.on_start(ctx));
        }
    }

    /// Runs the handler `f` for process `id` at the current time, then applies
    /// the actions it produced.
    fn run_handler<F>(&mut self, id: ProcessId, f: F)
    where
        F: FnOnce(&mut dyn Process<M>, &mut Context<'_, M>),
    {
        let now = self.now;
        let slot = match self.processes.get_mut(&id) {
            Some(s) => s,
            None => return, // message to an unknown process: dropped
        };
        let mut ctx = Context {
            self_id: id,
            now,
            actions: Vec::new(),
            cpu_consumed: SimDuration::ZERO,
            rng: &mut self.rng,
        };
        f(slot.process.as_mut(), &mut ctx);
        let Context {
            actions,
            cpu_consumed,
            ..
        } = ctx;
        if !cpu_consumed.is_zero() {
            let base = if slot.busy_until > now {
                slot.busy_until
            } else {
                now
            };
            slot.busy_until = base + cpu_consumed;
        }
        for action in actions {
            match action {
                Action::Send { to, msg } => {
                    let size = msg.wire_size();
                    if let Some(at) = self.network.delivery_time(&mut self.rng, now, id, to, size) {
                        self.push(at, EventKind::Deliver { from: id, to, msg });
                    }
                }
                Action::SetTimer { delay, token } => {
                    self.push(now + delay, EventKind::Timer { node: id, token });
                }
            }
        }
    }

    /// Processes a single event. Returns `false` if the queue is empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        let event = match self.queue.pop() {
            Some(e) => e,
            None => return false,
        };
        debug_assert!(event.at >= self.now, "time went backwards");
        self.now = event.at;
        let target = match &event.kind {
            EventKind::Deliver { to, .. } => *to,
            EventKind::Timer { node, .. } => *node,
        };
        // If the target node is still busy with CPU work, defer the event.
        if let Some(slot) = self.processes.get(&target) {
            if slot.busy_until > self.now {
                let at = slot.busy_until;
                self.messages_deferred += 1;
                self.push(at, event.kind);
                return true;
            }
        }
        self.events_processed += 1;
        match event.kind {
            EventKind::Deliver { from, to, msg } => {
                // Take ownership of the payload: free for the last holder of
                // a shared broadcast payload and for all point-to-point
                // messages; earlier broadcast recipients clone here, lazily,
                // instead of at send time.
                let msg = Arc::try_unwrap(msg).unwrap_or_else(|shared| (*shared).clone());
                self.run_handler(to, |p, ctx| p.on_message(from, msg, ctx));
            }
            EventKind::Timer { node, token } => {
                self.run_handler(node, |p, ctx| p.on_timer(token, ctx));
            }
        }
        true
    }

    /// Runs every event scheduled at or before `deadline`, then advances the
    /// clock to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.ensure_started();
        while let Some(event) = self.queue.peek() {
            if event.at > deadline {
                break;
            }
            self.step();
        }
        if deadline > self.now {
            self.now = deadline;
        }
    }

    /// Runs until the event queue drains or `limit` is reached.
    pub fn run_until_quiescent(&mut self, limit: SimTime) -> RunOutcome {
        self.ensure_started();
        loop {
            match self.queue.peek() {
                None => return RunOutcome::Quiescent(self.now),
                Some(e) if e.at > limit => {
                    self.now = limit;
                    return RunOutcome::TimeLimit(limit);
                }
                Some(_) => {
                    self.step();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    #[derive(Clone, Debug)]
    enum Msg {
        Ping(u64),
        // The payload is never read; it mirrors Ping so both directions have
        // a realistic body.
        Pong(#[allow(dead_code)] u64),
        Big(usize),
    }

    impl Wire for Msg {
        fn wire_size(&self) -> usize {
            match self {
                Msg::Ping(_) | Msg::Pong(_) => 16,
                Msg::Big(n) => *n,
            }
        }
    }

    /// Sends a ping to its peer on start and counts pongs.
    struct Pinger {
        peer: ProcessId,
        pings_to_send: u64,
        pongs_received: u64,
        last_pong_at: SimTime,
    }

    impl Process<Msg> for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            for i in 0..self.pings_to_send {
                ctx.send(self.peer, Msg::Ping(i));
            }
        }
        fn on_message(&mut self, _from: ProcessId, msg: Msg, ctx: &mut Context<'_, Msg>) {
            if let Msg::Pong(_) = msg {
                self.pongs_received += 1;
                self.last_pong_at = ctx.now();
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Replies to pings, optionally consuming CPU per ping.
    struct Ponger {
        cpu_per_ping: SimDuration,
        pings_handled: u64,
    }

    impl Process<Msg> for Ponger {
        fn on_message(&mut self, from: ProcessId, msg: Msg, ctx: &mut Context<'_, Msg>) {
            if let Msg::Ping(i) = msg {
                self.pings_handled += 1;
                if !self.cpu_per_ping.is_zero() {
                    ctx.consume_cpu(self.cpu_per_ping);
                }
                ctx.send(from, Msg::Pong(i));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Fires a periodic timer `count` times.
    struct Ticker {
        period: SimDuration,
        remaining: u32,
        fired: Vec<SimTime>,
    }

    impl Process<Msg> for Ticker {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            if self.remaining > 0 {
                ctx.set_timer(self.period, 1);
            }
        }
        fn on_message(&mut self, _: ProcessId, _: Msg, _: &mut Context<'_, Msg>) {}
        fn on_timer(&mut self, _token: TimerToken, ctx: &mut Context<'_, Msg>) {
            self.fired.push(ctx.now());
            self.remaining -= 1;
            if self.remaining > 0 {
                ctx.set_timer(self.period, 1);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn ping_pong_sim(seed: u64, pings: u64, cpu: SimDuration) -> Simulation<Msg> {
        let mut sim = Simulation::new(SimulationConfig {
            seed,
            network: NetworkConfig::lan(),
        });
        sim.add_process(
            ProcessId::server(0),
            Box::new(Pinger {
                peer: ProcessId::server(1),
                pings_to_send: pings,
                pongs_received: 0,
                last_pong_at: SimTime::ZERO,
            }),
        );
        sim.add_process(
            ProcessId::server(1),
            Box::new(Ponger {
                cpu_per_ping: cpu,
                pings_handled: 0,
            }),
        );
        sim
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut sim = ping_pong_sim(1, 10, SimDuration::ZERO);
        let outcome = sim.run_until_quiescent(SimTime::from_secs(10));
        assert!(matches!(outcome, RunOutcome::Quiescent(_)));
        let pinger: &Pinger = sim.process(ProcessId::server(0)).unwrap();
        assert_eq!(pinger.pongs_received, 10);
        assert!(pinger.last_pong_at > SimTime::ZERO);
        let ponger: &Ponger = sim.process(ProcessId::server(1)).unwrap();
        assert_eq!(ponger.pings_handled, 10);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = |seed| {
            let mut sim = ping_pong_sim(seed, 50, SimDuration::from_micros(30));
            sim.run_until_quiescent(SimTime::from_secs(10));
            let pinger: &Pinger = sim.process(ProcessId::server(0)).unwrap();
            (
                pinger.pongs_received,
                pinger.last_pong_at,
                sim.events_processed(),
            )
        };
        assert_eq!(run(7), run(7));
        // Different seeds give different schedules (jitter differs).
        assert_ne!(run(7).1, run(8).1);
    }

    #[test]
    fn cpu_consumption_delays_completion() {
        let mut fast = ping_pong_sim(3, 100, SimDuration::ZERO);
        fast.run_until_quiescent(SimTime::from_secs(60));
        let fast_done: &Pinger = fast.process(ProcessId::server(0)).unwrap();

        let mut slow = ping_pong_sim(3, 100, SimDuration::from_millis(10));
        slow.run_until_quiescent(SimTime::from_secs(60));
        let slow_done: &Pinger = slow.process(ProcessId::server(0)).unwrap();

        assert_eq!(fast_done.pongs_received, 100);
        assert_eq!(slow_done.pongs_received, 100);
        // 100 pings × 10 ms CPU each ≈ 1 s of serialized processing.
        assert!(slow_done.last_pong_at.as_secs_f64() > 0.9);
        assert!(fast_done.last_pong_at.as_secs_f64() < 0.1);
        assert!(slow.messages_deferred() > 0);
    }

    #[test]
    fn timers_fire_periodically() {
        let mut sim: Simulation<Msg> = Simulation::new(SimulationConfig::default());
        sim.add_process(
            ProcessId::server(0),
            Box::new(Ticker {
                period: SimDuration::from_millis(100),
                remaining: 5,
                fired: Vec::new(),
            }),
        );
        let outcome = sim.run_until_quiescent(SimTime::from_secs(10));
        assert!(matches!(outcome, RunOutcome::Quiescent(_)));
        let ticker: &Ticker = sim.process(ProcessId::server(0)).unwrap();
        assert_eq!(ticker.fired.len(), 5);
        assert_eq!(ticker.fired[0], SimTime::from_millis(100));
        assert_eq!(ticker.fired[4], SimTime::from_millis(500));
    }

    #[test]
    fn run_until_advances_clock_and_stops() {
        let mut sim: Simulation<Msg> = Simulation::new(SimulationConfig::default());
        sim.add_process(
            ProcessId::server(0),
            Box::new(Ticker {
                period: SimDuration::from_secs(1),
                remaining: 100,
                fired: Vec::new(),
            }),
        );
        sim.run_until(SimTime::from_millis(3500));
        assert_eq!(sim.now(), SimTime::from_millis(3500));
        let ticker: &Ticker = sim.process(ProcessId::server(0)).unwrap();
        assert_eq!(ticker.fired.len(), 3);
    }

    #[test]
    fn time_limit_outcome_when_events_remain() {
        let mut sim: Simulation<Msg> = Simulation::new(SimulationConfig::default());
        sim.add_process(
            ProcessId::server(0),
            Box::new(Ticker {
                period: SimDuration::from_secs(1),
                remaining: u32::MAX,
                fired: Vec::new(),
            }),
        );
        let outcome = sim.run_until_quiescent(SimTime::from_secs(5));
        assert_eq!(outcome, RunOutcome::TimeLimit(SimTime::from_secs(5)));
    }

    #[test]
    fn external_message_injection() {
        let mut sim = ping_pong_sim(1, 0, SimDuration::ZERO);
        sim.schedule_message(
            SimTime::from_secs(1),
            ProcessId::server(0),
            ProcessId::server(1),
            Msg::Ping(99),
        );
        sim.run_until_quiescent(SimTime::from_secs(5));
        let ponger: &Ponger = sim.process(ProcessId::server(1)).unwrap();
        assert_eq!(ponger.pings_handled, 1);
        let pinger: &Pinger = sim.process(ProcessId::server(0)).unwrap();
        assert_eq!(pinger.pongs_received, 1);
    }

    #[test]
    fn message_to_unknown_process_is_dropped() {
        let mut sim = ping_pong_sim(1, 0, SimDuration::ZERO);
        sim.schedule_message(
            SimTime::from_secs(1),
            ProcessId::server(0),
            ProcessId::server(9),
            Msg::Ping(1),
        );
        let outcome = sim.run_until_quiescent(SimTime::from_secs(5));
        assert!(matches!(outcome, RunOutcome::Quiescent(_)));
    }

    #[test]
    fn partition_blocks_ping_pong() {
        let mut sim = ping_pong_sim(1, 5, SimDuration::ZERO);
        sim.add_partition(Partition::between(
            [ProcessId::server(0)],
            [ProcessId::server(1)],
        ));
        sim.run_until_quiescent(SimTime::from_secs(5));
        let pinger: &Pinger = sim.process(ProcessId::server(0)).unwrap();
        assert_eq!(pinger.pongs_received, 0);
        assert_eq!(sim.network().dropped(), 5);
    }

    #[test]
    fn bandwidth_model_orders_large_transfers() {
        // A large message sent before a small one from the same sender delays
        // the small one (link serialisation).
        struct Sender;
        impl Process<Msg> for Sender {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.send(ProcessId::server(1), Msg::Big(10_000_000)); // ~80 ms at 1 Gbps
                ctx.send(ProcessId::server(1), Msg::Ping(0));
            }
            fn on_message(&mut self, _: ProcessId, _: Msg, _: &mut Context<'_, Msg>) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        struct Receiver {
            arrivals: Vec<(SimTime, bool)>, // (time, is_big)
        }
        impl Process<Msg> for Receiver {
            fn on_message(&mut self, _: ProcessId, msg: Msg, ctx: &mut Context<'_, Msg>) {
                self.arrivals.push((ctx.now(), matches!(msg, Msg::Big(_))));
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim: Simulation<Msg> = Simulation::new(SimulationConfig::default());
        sim.add_process(ProcessId::server(0), Box::new(Sender));
        sim.add_process(
            ProcessId::server(1),
            Box::new(Receiver { arrivals: vec![] }),
        );
        sim.run_until_quiescent(SimTime::from_secs(5));
        let rx: &Receiver = sim.process(ProcessId::server(1)).unwrap();
        assert_eq!(rx.arrivals.len(), 2);
        // Both messages arrive after the big transfer completes (~80 ms).
        assert!(rx.arrivals.iter().all(|(t, _)| t.as_secs_f64() > 0.07));
    }

    #[test]
    #[should_panic(expected = "duplicate process id")]
    fn duplicate_process_id_panics() {
        let mut sim: Simulation<Msg> = Simulation::new(SimulationConfig::default());
        sim.add_process(ProcessId::server(0), Box::new(Sender0));
        sim.add_process(ProcessId::server(0), Box::new(Sender0));
    }

    struct Sender0;
    impl Process<Msg> for Sender0 {
        fn on_message(&mut self, _: ProcessId, _: Msg, _: &mut Context<'_, Msg>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
}
