//! Fault-injection integration tests: application-level Byzantine Setchain
//! servers and consensus-level Byzantine ledger validators, within the bounds
//! the paper assumes (f < n/2 Setchain servers, f < n/3 ledger validators).

use setchain::{Algorithm, ServerByzMode};
use setchain_ledger::ByzMode;
use setchain_simnet::SimTime;
use setchain_workload::{Deployment, DeploymentBuilder, Scenario};

fn builder(algorithm: Algorithm, servers: usize, seed: u64) -> DeploymentBuilder {
    Deployment::builder(algorithm)
        .label(format!("byzantine {algorithm}"))
        .servers(servers)
        .rate(300.0)
        .collector(40)
        .injection_secs(5)
        .max_run_secs(90)
        .seed(seed)
}

fn run(mut deployment: Deployment, secs: u64) -> Deployment {
    deployment.sim.run_until(SimTime::from_secs(secs));
    deployment
}

fn correct_servers_consistent(deployment: &Deployment, correct: &[usize]) {
    let reference = deployment.server(correct[0]);
    assert!(reference.state().check_unique_epoch());
    assert!(reference.state().check_consistent_sets());
    for &i in &correct[1..] {
        let other = deployment.server(i);
        assert!(
            reference.state().check_consistent_with(other.state()),
            "correct servers {} and {i} diverged",
            correct[0]
        );
    }
}

#[test]
fn hashchain_tolerates_a_server_refusing_batch_service() {
    let deployment = builder(Algorithm::Hashchain, 4, 1)
        .server_fault(3, ServerByzMode::RefuseBatchService)
        .build();
    let deployment = run(deployment, 60);
    let records = deployment.trace.element_records();
    assert!(records.len() > 1_000);
    // Elements added through the three correct servers all commit. Elements
    // added through the refusing server cannot: only it holds their batch
    // contents, so no other server will sign those hashes — the client's
    // remedy (per the paper) is to retry with a different server.
    let via_correct: Vec<_> = records
        .iter()
        .filter(|r| r.id.client_index() != 3)
        .collect();
    let committed_correct = via_correct
        .iter()
        .filter(|r| r.committed_at.is_some())
        .count();
    assert!(
        committed_correct as f64 >= 0.90 * via_correct.len() as f64,
        "commits despite the refusing server: {committed_correct}/{}",
        via_correct.len()
    );
    correct_servers_consistent(&deployment, &[0, 1, 2]);
    // The correct servers had to fall back to other signers at least once.
    let stats = deployment.server(0).stats();
    assert!(stats.batch_requests_sent > 0);
}

#[test]
fn forged_epoch_proofs_are_never_counted() {
    for algorithm in [
        Algorithm::Vanilla,
        Algorithm::Compresschain,
        Algorithm::Hashchain,
    ] {
        let deployment = builder(algorithm, 4, 2)
            .server_fault(2, ServerByzMode::ForgeProofs)
            .build();
        let deployment = run(deployment, 60);
        let state_holder = deployment.server(0);
        let state = state_holder.state();
        for epoch in 1..=state.epoch() {
            assert!(
                !state
                    .proofs_for(epoch)
                    .iter()
                    .any(|p| p.signer == setchain_crypto::ProcessId::server(2)),
                "{algorithm}: forged proof from server 2 accepted for epoch {epoch}"
            );
        }
        // Commits still happen: the remaining 3 correct servers exceed f+1=2.
        let added = deployment.trace.added_count();
        let committed = deployment.trace.committed_count_by(SimTime::from_secs(60));
        assert!(
            committed as f64 >= 0.9 * added as f64,
            "{algorithm}: {committed}/{added} committed with a proof forger present"
        );
    }
}

#[test]
fn invalid_elements_injected_by_a_server_never_enter_epochs() {
    let deployment = builder(Algorithm::Vanilla, 4, 3)
        .server_fault(1, ServerByzMode::InjectInvalidElements)
        .build();
    let deployment = run(deployment, 45);
    // Every element in every epoch of a correct server must be a client-added
    // element recorded by the trace (forged ones are not in the trace).
    let added: std::collections::HashSet<_> = deployment
        .trace
        .element_records()
        .iter()
        .map(|r| r.id)
        .collect();
    let server = deployment.server(0);
    let state = server.state();
    let mut checked = 0;
    for epoch in 1..=state.epoch() {
        for e in state.epoch_elements(epoch).unwrap() {
            assert!(
                added.contains(&e.id),
                "forged element {:?} reached epoch {epoch}",
                e.id
            );
            checked += 1;
        }
    }
    assert!(
        checked > 500,
        "epochs actually contained elements ({checked})"
    );
}

#[test]
fn silent_ledger_validator_does_not_stop_the_setchain() {
    let deployment = builder(Algorithm::Compresschain, 4, 4)
        .ledger_fault(3, ByzMode::Silent)
        .build();
    let deployment = run(deployment, 75);
    let records = deployment.trace.element_records();
    assert!(records.len() > 1_000);
    // A crashed validator loses the requests of the client talking to it; the
    // elements added through the three live servers all commit.
    let via_live: Vec<_> = records
        .iter()
        .filter(|r| r.id.client_index() != 3)
        .collect();
    let committed_live = via_live.iter().filter(|r| r.committed_at.is_some()).count();
    assert!(
        committed_live as f64 >= 0.9 * via_live.len() as f64,
        "{committed_live}/{} committed with a crashed validator",
        via_live.len()
    );
    correct_servers_consistent(&deployment, &[0, 1, 2]);
}

#[test]
fn equivocating_proposer_does_not_split_the_setchain() {
    let deployment = builder(Algorithm::Hashchain, 4, 5)
        .ledger_fault(1, ByzMode::EquivocatingProposer)
        .build();
    let deployment = run(deployment, 75);
    correct_servers_consistent(&deployment, &[0, 2, 3]);
    let committed = deployment.trace.committed_count_by(SimTime::from_secs(75));
    assert!(committed > 500, "progress under an equivocating proposer");
}

#[test]
fn a_server_dropping_client_adds_only_hurts_its_own_clients() {
    let deployment = builder(Algorithm::Hashchain, 4, 6)
        .server_fault(2, ServerByzMode::DropClientAdds)
        .build();
    let deployment = run(deployment, 60);
    // Elements sent to server 2's local client are lost (the paper's remedy
    // is client retry with another server), but everything sent to the other
    // three servers commits.
    let records = deployment.trace.element_records();
    let (to_faulty, to_correct): (
        Vec<&setchain::trace::ElementRecord>,
        Vec<&setchain::trace::ElementRecord>,
    ) = records.iter().partition(|r| r.id.client_index() == 2);
    assert!(!to_faulty.is_empty() && !to_correct.is_empty());
    let committed_correct = to_correct
        .iter()
        .filter(|r| r.committed_at.is_some())
        .count();
    assert!(
        committed_correct as f64 >= 0.9 * to_correct.len() as f64,
        "{committed_correct}/{} elements via correct servers committed",
        to_correct.len()
    );
    let committed_faulty = to_faulty
        .iter()
        .filter(|r| r.committed_at.is_some())
        .count();
    assert_eq!(committed_faulty, 0, "dropped adds must not commit");
}

#[test]
fn ten_servers_tolerate_multiple_mixed_faults() {
    // n = 10: f_ledger = 3, f_setchain = 4. Inject three application faults
    // and two consensus faults simultaneously.
    // Exercise the legacy `build_with_faults` wrapper once: it must stay a
    // faithful thin delegation to the builder path.
    let scenario = Scenario::base(Algorithm::Hashchain)
        .with_label("mixed faults")
        .with_servers(10)
        .with_rate(500.0)
        .with_collector(50)
        .with_injection_secs(4)
        .with_max_run_secs(90)
        .with_seed(7);
    let deployment = Deployment::build_with_faults(
        &scenario,
        &[
            (7, ServerByzMode::RefuseBatchService),
            (8, ServerByzMode::ForgeProofs),
            (9, ServerByzMode::InjectInvalidElements),
        ],
        &[(5, ByzMode::Silent), (6, ByzMode::WithholdPrecommit)],
    );
    let deployment = run(deployment, 90);
    let added = deployment.trace.added_count();
    let committed = deployment.trace.committed_count_by(SimTime::from_secs(90));
    assert!(added > 1_000);
    assert!(
        committed as f64 >= 0.75 * added as f64,
        "{committed}/{added} committed under mixed faults"
    );
    correct_servers_consistent(&deployment, &[0, 1, 2, 3, 4]);
}
