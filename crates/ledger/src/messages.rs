//! Wire messages exchanged by ledger nodes (consensus, mempool gossip,
//! block sync) and the application-level envelope.

use setchain_crypto::{ProcessId, Signature};
use setchain_simnet::Wire;

use crate::types::{Block, BlockId, TxData};

/// The two Tendermint voting phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VoteKind {
    /// First voting phase after a proposal.
    Prevote,
    /// Second voting phase; 2f+1 precommits commit the block.
    Precommit,
}

/// Messages carried by the simulated network between ledger nodes (and from
/// clients to the application running on a node).
#[derive(Clone, Debug)]
pub enum NetMsg<T, AM> {
    /// A proposer announces a block for a height/round.
    Proposal {
        /// Consensus height.
        height: u64,
        /// Consensus round within the height.
        round: u32,
        /// The proposed block.
        block: Block<T>,
        /// Proposer signature over the block id.
        signature: Signature,
    },
    /// A prevote or precommit for a block id.
    Vote {
        /// Which voting phase this vote belongs to.
        kind: VoteKind,
        /// Consensus height.
        height: u64,
        /// Consensus round.
        round: u32,
        /// Block being voted for.
        block_id: BlockId,
        /// The voting validator.
        voter: ProcessId,
        /// Voter signature over (kind, height, round, block id).
        signature: Signature,
    },
    /// Batched mempool gossip.
    TxGossip {
        /// Transactions not yet seen by the peer (best effort).
        txs: Vec<T>,
    },
    /// Request for a committed block (catch-up sync).
    BlockSyncRequest {
        /// Height of the requested block.
        height: u64,
    },
    /// Response carrying a committed block and its commit certificate
    /// (2f+1 precommit signatures).
    BlockSyncResponse {
        /// The committed block.
        block: Block<T>,
        /// Precommit signatures proving the commit.
        certificate: Vec<Signature>,
    },
    /// Application-level message (client requests, Hashchain batch exchange…).
    App(AM),
}

/// Approximate header overhead of consensus messages, in bytes.
const HEADER_BYTES: usize = 96;
/// Approximate size of a vote on the wire (header + id + signature).
const VOTE_BYTES: usize = 168;

impl<T, AM> Wire for NetMsg<T, AM>
where
    T: TxData,
    AM: Wire,
{
    fn wire_size(&self) -> usize {
        match self {
            NetMsg::Proposal { block, .. } => {
                HEADER_BYTES + 64 + block.payload_bytes() + block.len() * 8
            }
            NetMsg::Vote { .. } => VOTE_BYTES,
            NetMsg::TxGossip { txs } => {
                HEADER_BYTES + txs.iter().map(|t| t.wire_size()).sum::<usize>() + txs.len() * 8
            }
            NetMsg::BlockSyncRequest { .. } => HEADER_BYTES,
            NetMsg::BlockSyncResponse { block, certificate } => {
                HEADER_BYTES + 64 + block.payload_bytes() + block.len() * 8 + certificate.len() * 72
            }
            NetMsg::App(m) => m.wire_size(),
        }
    }
}

/// Bytes signed by a proposer for a proposal.
pub fn proposal_sign_bytes(height: u64, round: u32, block_id: &BlockId) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(b"proposal");
    out.extend_from_slice(&height.to_le_bytes());
    out.extend_from_slice(&round.to_le_bytes());
    out.extend_from_slice(block_id.0.as_bytes());
    out
}

/// Bytes signed by a validator for a vote.
pub fn vote_sign_bytes(kind: VoteKind, height: u64, round: u32, block_id: &BlockId) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(match kind {
        VoteKind::Prevote => b"prevote_",
        VoteKind::Precommit => b"precommit",
    });
    out.extend_from_slice(&height.to_le_bytes());
    out.extend_from_slice(&round.to_le_bytes());
    out.extend_from_slice(block_id.0.as_bytes());
    out
}

/// Bytes signed for a commit certificate entry (same as a precommit vote).
pub fn certificate_sign_bytes(height: u64, block_id: &BlockId) -> Vec<u8> {
    let mut out = Vec::with_capacity(48);
    out.extend_from_slice(b"commit");
    out.extend_from_slice(&height.to_le_bytes());
    out.extend_from_slice(block_id.0.as_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use setchain_crypto::sha256;
    use setchain_simnet::SimTime;

    use crate::types::TxId;

    #[derive(Clone, Debug)]
    struct Tx(u128, usize);
    impl TxData for Tx {
        fn tx_id(&self) -> TxId {
            TxId(self.0)
        }
        fn wire_size(&self) -> usize {
            self.1
        }
    }

    #[derive(Clone, Debug)]
    struct AppMsg(usize);
    impl Wire for AppMsg {
        fn wire_size(&self) -> usize {
            self.0
        }
    }

    fn block() -> Block<Tx> {
        Block {
            height: 3,
            proposer: ProcessId::server(1),
            proposed_at: SimTime::ZERO,
            txs: vec![Tx(1, 100), Tx(2, 200)],
        }
    }

    #[test]
    fn wire_sizes_scale_with_payload() {
        let b = block();
        let sig = Signature::forged(ProcessId::server(1));
        let proposal: NetMsg<Tx, AppMsg> = NetMsg::Proposal {
            height: 3,
            round: 0,
            block: b.clone(),
            signature: sig,
        };
        assert!(proposal.wire_size() > 300);
        let vote: NetMsg<Tx, AppMsg> = NetMsg::Vote {
            kind: VoteKind::Prevote,
            height: 3,
            round: 0,
            block_id: b.id(),
            voter: ProcessId::server(0),
            signature: sig,
        };
        assert_eq!(vote.wire_size(), 168);
        let gossip: NetMsg<Tx, AppMsg> = NetMsg::TxGossip {
            txs: vec![Tx(1, 100)],
        };
        assert!(gossip.wire_size() >= 100);
        let app: NetMsg<Tx, AppMsg> = NetMsg::App(AppMsg(4242));
        assert_eq!(app.wire_size(), 4242);
        let req: NetMsg<Tx, AppMsg> = NetMsg::BlockSyncRequest { height: 1 };
        assert_eq!(req.wire_size(), 96);
        let resp: NetMsg<Tx, AppMsg> = NetMsg::BlockSyncResponse {
            block: b,
            certificate: vec![sig; 3],
        };
        assert!(resp.wire_size() > 300 + 3 * 72);
    }

    #[test]
    fn sign_bytes_distinguish_contexts() {
        let id = BlockId(sha256(b"block"));
        let p = proposal_sign_bytes(1, 0, &id);
        let pv = vote_sign_bytes(VoteKind::Prevote, 1, 0, &id);
        let pc = vote_sign_bytes(VoteKind::Precommit, 1, 0, &id);
        let c = certificate_sign_bytes(1, &id);
        assert_ne!(p, pv);
        assert_ne!(pv, pc);
        assert_ne!(pc, c);
        // Height and round are bound.
        assert_ne!(
            vote_sign_bytes(VoteKind::Prevote, 1, 0, &id),
            vote_sign_bytes(VoteKind::Prevote, 2, 0, &id)
        );
        assert_ne!(
            vote_sign_bytes(VoteKind::Prevote, 1, 0, &id),
            vote_sign_bytes(VoteKind::Prevote, 1, 1, &id)
        );
    }
}
