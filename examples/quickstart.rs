//! Quickstart: run a 4-server Hashchain Setchain, add a Merkle-batched set
//! of elements (one MAC for the whole batch) through a typed client session,
//! and verify an epoch with `f + 1` epoch-proofs while talking to a single
//! server — including element→epoch inclusion proofs that need no element
//! set.
//!
//! ```sh
//! cargo run --release -p setchain-bench --example quickstart
//! ```

use setchain::{Algorithm, AuthMode};
use setchain_simnet::SimTime;
use setchain_workload::Deployment;

fn main() {
    // 1. Describe the deployment: 4 servers running Hashchain, a light
    //    background load, small collector so epochs form quickly. The
    //    injection clients also submit under batch-root authentication:
    //    servers verify one MAC per batch, not one per element.
    let mut deployment = Deployment::builder(Algorithm::Hashchain)
        .label("quickstart")
        .servers(4)
        .rate(200.0)
        .collector(25)
        .injection_secs(5)
        .max_run_secs(30)
        .auth_mode(AuthMode::BatchRoot)
        .seed(2024)
        .build();
    let n = deployment.scenario.servers;
    let f = deployment.scenario.setchain_f();
    println!(
        "Deployment: {n} Hashchain servers, f = {f}, collector = {}, auth = {:?}",
        deployment.scenario.collector_limit, deployment.scenario.auth_mode
    );

    // 2. Open a typed client session (registers our key pair in the PKI) and
    //    script it: one Merkle-batched add of three elements to server 0
    //    early on, then ask a *different* server (server 2) for epoch 1 and
    //    a state summary.
    let mut session = deployment.client_session(100, 777);
    let receipt = session.add_batch(
        SimTime::from_millis(500),
        0,
        (0..3u64).map(|i| (438, 1000 + i)),
    );
    println!(
        "sealed batch of {} elements under one MAC (root {:?})",
        receipt.len(),
        receipt.root
    );
    session.get(SimTime::from_secs(20), 2);
    session.get_epochs(SimTime::from_secs(20), 2, 1..=20);
    session.install(&mut deployment);

    // 3. Run the simulation.
    deployment.sim.run_until(SimTime::from_secs(25));

    // 4. Read the typed results: the snapshot summary and the verified epoch.
    let outcome = session.outcome(&deployment);
    for view in &outcome.snapshots {
        println!(
            "[{}] get() from {}: |the_set| = {}, epoch = {}, {} epochs have ≥ f+1 proofs",
            view.at,
            view.server,
            view.snapshot.the_set_len,
            view.snapshot.epoch,
            view.snapshot.epochs_with_quorum
        );
    }
    for epoch in &outcome.epochs {
        let mine = receipt.ids.iter().filter(|id| epoch.contains(**id)).count();
        if epoch.epoch > 1 && mine == 0 {
            continue; // only narrate epoch 1 and the epochs holding our adds
        }
        println!(
            "[{}] get_epoch({}) from {}: {} elements, {} proofs -> {:?} ({mine} of my elements)",
            epoch.at,
            epoch.epoch,
            epoch.server,
            epoch.elements.len(),
            epoch.proof_count,
            epoch.verification
        );
    }
    println!(
        "elements confirmed through a single server: {} / {}",
        outcome.confirmed_ids().len(),
        receipt.len()
    );

    // 4b. Element→epoch inclusion proofs: membership verifiable from the
    //     epoch's (number, count, root) triple plus f+1 epoch-proofs alone —
    //     no element set required.
    let mut proven = 0;
    for epoch in outcome.verified() {
        for (i, id) in receipt.ids.iter().enumerate() {
            if let Some(proof) = epoch.inclusion_proof(*id) {
                let element = &receipt.elements()[i];
                let ok = proof.verify(&deployment.registry, n, f, element, &epoch.proofs);
                assert!(ok, "inclusion proof must verify");
                proven += 1;
            }
        }
    }
    println!("inclusion proofs verified without the element set: {proven} / 3");

    // 5. Cross-check the safety properties directly on two servers.
    let s0 = deployment.server(0);
    let s3 = deployment.server(3);
    println!(
        "server 0: epoch = {}, |the_set| = {}; consistent with server 3: {}",
        s0.state().epoch(),
        s0.state().the_set_len(),
        s0.state().check_consistent_with(s3.state())
    );
    let committed = deployment.trace.committed_count_by(SimTime::from_secs(25));
    println!(
        "elements committed (epoch has ≥ f+1 proofs on the ledger): {committed} / {}",
        deployment.trace.added_count()
    );
}
