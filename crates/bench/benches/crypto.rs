//! Micro-benchmarks of the cryptographic substrate: hashing, signing,
//! verification and Merkle tree construction. These are the per-operation
//! costs behind the `CostModel` used by the simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use setchain_crypto::{sha256, sha512, sign, verify, KeyRegistry, MerkleTree, ProcessId};

fn bench_hashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("hashing");
    for size in [439usize, 4 * 1024, 64 * 1024, 1024 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| sha256(d))
        });
        group.bench_with_input(BenchmarkId::new("sha512", size), &data, |b, d| {
            b.iter(|| sha512(d))
        });
    }
    group.finish();
}

fn bench_signatures(c: &mut Criterion) {
    let registry = KeyRegistry::bootstrap(1, 4, 1);
    let keys = registry.lookup(ProcessId::server(0)).unwrap();
    let msg = vec![0x42u8; 64];
    let sig = sign(&keys, &msg);
    let mut group = c.benchmark_group("signatures");
    group.bench_function("sign_64B", |b| b.iter(|| sign(&keys, &msg)));
    group.bench_function("verify_64B", |b| b.iter(|| verify(&registry, &msg, &sig)));
    group.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle");
    for leaves in [128usize, 1024] {
        let items: Vec<Vec<u8>> = (0..leaves)
            .map(|i| format!("tx-{i}").into_bytes())
            .collect();
        group.bench_with_input(BenchmarkId::new("build", leaves), &items, |b, items| {
            b.iter(|| MerkleTree::build(items))
        });
        let tree = MerkleTree::build(&items);
        let proof = tree.prove(leaves / 2);
        let root = tree.root();
        group.bench_with_input(
            BenchmarkId::new("verify_proof", leaves),
            &items,
            |b, items| b.iter(|| proof.verify(&items[leaves / 2], &root)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hashing, bench_signatures, bench_merkle);
criterion_main!(benches);
