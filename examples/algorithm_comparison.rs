//! Side-by-side comparison of the three Setchain algorithms on the same
//! workload — a miniature version of the paper's Fig. 1 that runs in a few
//! seconds. The loop body is identical for every algorithm: the deployment
//! builder and the `SetchainApp` trait hide the variant entirely.
//!
//! ```sh
//! cargo run --release -p setchain-bench --example algorithm_comparison
//! ```

use setchain::Algorithm;
use setchain_workload::{analysis::AnalysisParams, Deployment, ThroughputSeries};

fn main() {
    let rate = 3_000.0;
    let collector = 100;
    println!(
        "Workload: {rate} el/s for 10 s, 4 servers, collector = {collector}, block = 0.5 MB @ 0.8 blocks/s\n"
    );
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>12} {:>16}",
        "algorithm", "added", "committed", "avg el/s", "peak el/s", "analytical el/s"
    );
    for algorithm in Algorithm::ALL {
        let result = Deployment::builder(algorithm)
            .label(format!("{algorithm} comparison"))
            .servers(4)
            .rate(rate)
            .collector(collector)
            .injection_secs(10)
            .max_run_secs(60)
            .seed(9)
            .run();
        let series = ThroughputSeries::compute(&result.trace, 9, result.finished_at);
        let analytical = AnalysisParams::default()
            .with_servers(4)
            .with_collector(collector)
            .throughput(algorithm);
        println!(
            "{:<14} {:>10} {:>10} {:>12.0} {:>12.0} {:>16.0}",
            algorithm.name(),
            result.added,
            result.committed,
            result.average_throughput(10),
            series.peak(),
            analytical
        );
    }
    println!("\nExpected ordering (paper): Hashchain > Compresschain > Vanilla, with Vanilla and");
    println!("Compresschain saturating well below the sending rate and Hashchain keeping up.");
}
