//! Offline stand-in for `serde`.
//!
//! The container building this workspace has no route to a crates.io mirror,
//! and the codebase only uses serde for `#[derive(Serialize, Deserialize)]`
//! markers (nothing is actually serialized to a wire format — the simulator
//! passes messages in-memory). The derives therefore expand to nothing; the
//! `#[serde(...)]` field attributes are accepted and ignored.
//!
//! Swapping in the real crate is a one-line change in the workspace manifest
//! and requires no source edits.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`. Accepts and ignores `#[serde(...)]` attrs.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`. Accepts and ignores `#[serde(...)]` attrs.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
