//! Side-by-side comparison of the three Setchain algorithms on the same
//! workload — a miniature version of the paper's Fig. 1 that runs in a few
//! seconds.
//!
//! ```sh
//! cargo run --release -p setchain-workload --example algorithm_comparison
//! ```

use setchain::Algorithm;
use setchain_workload::{analysis::AnalysisParams, run_scenario, Scenario, ThroughputSeries};

fn main() {
    let rate = 3_000.0;
    let collector = 100;
    println!(
        "Workload: {rate} el/s for 10 s, 4 servers, collector = {collector}, block = 0.5 MB @ 0.8 blocks/s\n"
    );
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>12} {:>16}",
        "algorithm", "added", "committed", "avg el/s", "peak el/s", "analytical el/s"
    );
    for algorithm in Algorithm::ALL {
        let scenario = Scenario::base(algorithm)
            .with_label(format!("{algorithm} comparison"))
            .with_servers(4)
            .with_rate(rate)
            .with_collector(collector)
            .with_injection_secs(10)
            .with_max_run_secs(60)
            .with_seed(9);
        let result = run_scenario(&scenario);
        let series = ThroughputSeries::compute(&result.trace, 9, result.finished_at);
        let analytical = AnalysisParams::default()
            .with_servers(4)
            .with_collector(collector)
            .throughput(algorithm);
        println!(
            "{:<14} {:>10} {:>10} {:>12.0} {:>12.0} {:>16.0}",
            algorithm.name(),
            result.added,
            result.committed,
            result.average_throughput(10),
            series.peak(),
            analytical
        );
    }
    println!("\nExpected ordering (paper): Hashchain > Compresschain > Vanilla, with Vanilla and");
    println!("Compresschain saturating well below the sending rate and Hashchain keeping up.");
}
