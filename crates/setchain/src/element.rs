//! Setchain elements.
//!
//! The paper uses transactions downloaded from Arbitrum as elements (average
//! size 438 bytes, standard deviation 753.5). To keep multi-million-element
//! simulations within memory, an [`Element`] stores only its identity, its
//! authenticated origin, its wire size and a content seed; the actual payload
//! bytes are *materialized on demand* (deterministically from the seed) when
//! an algorithm genuinely needs them — compressing a batch, hashing a batch —
//! so sizes, compression ratios and CPU costs are computed on real bytes
//! while the resident representation stays compact.

use serde::{Deserialize, Serialize};
use setchain_crypto::{hmac_sha256, HmacSha256Key, KeyPair, KeyRegistry, ProcessId};

/// Unique identifier of an element: the creating client's index in the high
/// bits and a per-client sequence number in the low bits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct ElementId(pub u64);

impl ElementId {
    /// Builds an id from a client index and a per-client sequence number.
    pub fn new(client_index: u32, seq: u64) -> Self {
        assert!(seq < (1 << 40), "element sequence number overflow");
        ElementId(((client_index as u64) << 40) | seq)
    }

    /// The creating client's index.
    pub fn client_index(&self) -> u32 {
        (self.0 >> 40) as u32
    }

    /// The per-client sequence number.
    pub fn seq(&self) -> u64 {
        self.0 & ((1 << 40) - 1)
    }
}

/// A Setchain element: an opaque, client-signed piece of data.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Element {
    /// Unique element identifier.
    pub id: ElementId,
    /// The client that created (and signed) the element.
    pub client: ProcessId,
    /// Size of the element on the wire, in bytes (drawn from the Arbitrum
    /// size distribution by the workload generator).
    pub size: u32,
    /// Seed from which the payload bytes are materialized.
    pub content_seed: u64,
    /// Compact authenticator: the first 8 bytes of
    /// `HMAC-SHA-256(client_secret, id ‖ size ‖ seed)`. Stands in for the
    /// client's ed25519 signature over the element (see DESIGN.md §3);
    /// elements forged by servers fail validation because servers do not hold
    /// client keys.
    pub auth: u64,
}

impl Element {
    fn auth_message(id: ElementId, size: u32, content_seed: u64) -> [u8; 20] {
        let mut msg = [0u8; 20];
        msg[..8].copy_from_slice(&id.0.to_le_bytes());
        msg[8..12].copy_from_slice(&size.to_le_bytes());
        msg[12..20].copy_from_slice(&content_seed.to_le_bytes());
        msg
    }

    /// Creates a new element signed by `client_keys`.
    pub fn new(client_keys: &KeyPair, id: ElementId, size: u32, content_seed: u64) -> Self {
        let msg = Self::auth_message(id, size, content_seed);
        let mac = hmac_sha256(&client_keys.secret.0, &msg);
        Element {
            id,
            client: client_keys.id,
            size,
            content_seed,
            auth: u64::from_le_bytes(mac.0[..8].try_into().expect("8 bytes")),
        }
    }

    /// [`Element::new`] through a precomputed HMAC key schedule for
    /// `client`: the client-side signing twin of the server-side
    /// [`auth_matches`](Self::auth_matches) fast path. A client that signs
    /// many elements (the workload generator, a scripted session) pays the
    /// key-pad absorptions once instead of once per element.
    pub fn new_with_key(
        key: &HmacSha256Key,
        client: ProcessId,
        id: ElementId,
        size: u32,
        content_seed: u64,
    ) -> Self {
        let msg = Self::auth_message(id, size, content_seed);
        let mac = key.mac(&msg);
        Element {
            id,
            client,
            size,
            content_seed,
            auth: u64::from_le_bytes(mac.0[..8].try_into().expect("8 bytes")),
        }
    }

    /// Creates an element with an invalid authenticator (what a Byzantine
    /// server fabricating elements would produce).
    pub fn forged(client: ProcessId, id: ElementId, size: u32) -> Self {
        Element {
            id,
            client,
            size,
            content_seed: 0,
            auth: 0xBAD0_BAD0_BAD0_BAD0,
        }
    }

    /// Size sanity check shared by every validation path.
    pub fn size_in_bounds(&self) -> bool {
        self.size != 0 && self.size <= 1_000_000
    }

    /// The paper's `valid_element(e)`: checks the client authenticator
    /// against the PKI registry and sanity-checks the size.
    pub fn is_valid(&self, registry: &KeyRegistry) -> bool {
        if !self.size_in_bounds() {
            return false;
        }
        let Some(pair) = registry.lookup(self.client) else {
            return false;
        };
        if pair.id.is_server() {
            // Servers cannot create valid elements (model assumption from
            // Section 2 of the paper).
            return false;
        }
        let msg = Self::auth_message(self.id, self.size, self.content_seed);
        let mac = hmac_sha256(&pair.secret.0, &msg);
        u64::from_le_bytes(mac.0[..8].try_into().expect("8 bytes")) == self.auth
    }

    /// Authenticator check against a precomputed HMAC key schedule for the
    /// claimed client. Callers are responsible for the size check and for
    /// having resolved the schedule from the *claimed* client's registered
    /// (non-server) key — that is what batched server-side validation does,
    /// paying the key schedule once per client instead of once per element.
    pub fn auth_matches(&self, key: &HmacSha256Key) -> bool {
        let msg = Self::auth_message(self.id, self.size, self.content_seed);
        let mac = key.mac(&msg);
        u64::from_le_bytes(mac.0[..8].try_into().expect("8 bytes")) == self.auth
    }

    /// Length of [`Element::pack`]'s fixed encoding.
    pub const PACKED_LEN: usize = 36;

    /// The element's full identity in a fixed 36-byte little-endian layout
    /// (`id ‖ client ‖ size ‖ seed ‖ auth`) — the canonical unit hashed into
    /// batch digests, epoch digests and Merkle leaves. Two elements pack
    /// equal iff every field is equal, so digests over packed bytes bind the
    /// complete identity, authenticator included.
    pub fn pack(&self) -> [u8; Self::PACKED_LEN] {
        let mut buf = [0u8; Self::PACKED_LEN];
        buf[..8].copy_from_slice(&self.id.0.to_le_bytes());
        buf[8..16].copy_from_slice(&self.client.0.to_le_bytes());
        buf[16..20].copy_from_slice(&self.size.to_le_bytes());
        buf[20..28].copy_from_slice(&self.content_seed.to_le_bytes());
        buf[28..36].copy_from_slice(&self.auth.to_le_bytes());
        buf
    }

    /// Inverse of [`Element::pack`]: rebuilds the element from its fixed
    /// 36-byte encoding. Used by the persistence layer when reading epochs
    /// back from the segment log; the layout contract (id in the first 8
    /// little-endian bytes) is what lets `setchain-store` index elements
    /// without this type.
    pub fn unpack(buf: &[u8; Self::PACKED_LEN]) -> Self {
        Element {
            id: ElementId(u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"))),
            client: ProcessId(u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"))),
            size: u32::from_le_bytes(buf[16..20].try_into().expect("4 bytes")),
            content_seed: u64::from_le_bytes(buf[20..28].try_into().expect("8 bytes")),
            auth: u64::from_le_bytes(buf[28..36].try_into().expect("8 bytes")),
        }
    }

    /// Wire size of the element in bytes.
    pub fn wire_size(&self) -> usize {
        self.size as usize
    }

    /// Materializes the payload bytes. The payload imitates an Arbitrum-style
    /// JSON transaction: structured fields with hex calldata, so that the
    /// compression ratio achieved by `setchain-compress` lands in the range
    /// the paper reports for Brotli on real Arbitrum data.
    pub fn materialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size as usize);
        self.materialize_into(&mut out);
        out
    }

    /// Appends the materialized payload bytes to `out` (not cleared).
    ///
    /// This is the allocation-free path Compresschain uses to build a whole
    /// batch into one reusable encode buffer — one `reserve` on the caller's
    /// buffer instead of one `Vec` per element.
    pub fn materialize_into(&self, out: &mut Vec<u8>) {
        use std::io::Write;
        let start = out.len();
        let end = start + self.size as usize;
        out.reserve(self.size as usize);
        // Written straight into the buffer: a `format!` here would allocate
        // one String per element on the flush hot path.
        write!(
            out,
            "{{\"id\":\"{:016x}\",\"from\":\"0x{:040x}\",\"nonce\":{},\"gas\":{},\"data\":\"0x",
            self.id.0,
            self.content_seed,
            self.id.seq(),
            21000 + (self.content_seed % 400_000),
        )
        .expect("writing to a Vec cannot fail");
        // Deterministic pseudo-calldata: hex nibbles derived from a small
        // xorshift, eight characters per state step (one per state byte)
        // rather than one — generation is on Compresschain's flush hot path.
        let mut state = self.content_seed | 1;
        const HEX: &[u8; 16] = b"0123456789abcdef";
        let mut chunk = [0u8; 8];
        while out.len() + 2 + chunk.len() <= end {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            for (slot, b) in chunk.iter_mut().zip(state.to_le_bytes()) {
                // Bias towards a small alphabet so batches compress like
                // real calldata (long zero runs and repeated selectors).
                let nibble = if b.is_multiple_of(3) {
                    0
                } else {
                    (b >> 3) & 0x0F
                };
                *slot = HEX[nibble as usize];
            }
            out.extend_from_slice(&chunk);
        }
        while out.len() + 2 < end {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let b = state as u8;
            let nibble = if b.is_multiple_of(3) {
                0
            } else {
                (b >> 3) & 0x0F
            };
            out.push(HEX[nibble as usize]);
        }
        out.extend_from_slice(b"\"}");
        out.truncate(end);
    }
}

/// Deterministic generator of valid elements for one client, used by the
/// workload driver and by tests.
///
/// The client's HMAC key schedule is computed once at construction, so
/// generating an element costs two SHA-256 compressions instead of four —
/// element generation runs inside the measured window of every throughput
/// experiment.
#[derive(Clone)]
pub struct ElementGenerator {
    client: ProcessId,
    key: HmacSha256Key,
    client_index: u32,
    next_seq: u64,
}

impl std::fmt::Debug for ElementGenerator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElementGenerator")
            .field("client", &self.client)
            .field("next_seq", &self.next_seq)
            .finish_non_exhaustive()
    }
}

impl ElementGenerator {
    /// Creates a generator for the client owning `keys`.
    pub fn new(keys: KeyPair) -> Self {
        let client_index = keys.id.client_index() as u32;
        ElementGenerator {
            client: keys.id,
            key: HmacSha256Key::new(&keys.secret.0),
            client_index,
            next_seq: 0,
        }
    }

    /// Number of elements generated so far.
    pub fn generated(&self) -> u64 {
        self.next_seq
    }

    /// The client's precomputed HMAC key schedule — the same schedule that
    /// signs each element, reused by batch-mode submitters to seal a whole
    /// batch under one root MAC ([`crate::AuthedBatch::seal`]).
    pub fn auth_key(&self) -> &HmacSha256Key {
        &self.key
    }

    /// The client this generator signs for.
    pub fn client(&self) -> ProcessId {
        self.client
    }

    /// Generates the next element with the given size and content seed.
    pub fn next_element(&mut self, size: u32, content_seed: u64) -> Element {
        let id = ElementId::new(self.client_index, self.next_seq);
        self.next_seq += 1;
        Element::new_with_key(&self.key, self.client, id, size, content_seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> KeyRegistry {
        KeyRegistry::bootstrap(7, 4, 3)
    }

    fn client_keys(reg: &KeyRegistry, i: usize) -> KeyPair {
        reg.lookup(ProcessId::client(i)).unwrap()
    }

    #[test]
    fn element_id_packing() {
        let id = ElementId::new(3, 12345);
        assert_eq!(id.client_index(), 3);
        assert_eq!(id.seq(), 12345);
        assert_ne!(ElementId::new(3, 1), ElementId::new(4, 1));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn element_id_seq_overflow_panics() {
        let _ = ElementId::new(0, 1 << 40);
    }

    #[test]
    fn valid_element_roundtrip() {
        let reg = registry();
        let keys = client_keys(&reg, 0);
        let e = Element::new(&keys, ElementId::new(0, 1), 438, 99);
        assert!(e.is_valid(&reg));
        assert_eq!(e.wire_size(), 438);
    }

    #[test]
    fn tampered_element_is_invalid() {
        let reg = registry();
        let keys = client_keys(&reg, 0);
        let mut e = Element::new(&keys, ElementId::new(0, 1), 438, 99);
        e.size = 500;
        assert!(!e.is_valid(&reg));
        let mut e2 = Element::new(&keys, ElementId::new(0, 2), 438, 99);
        e2.content_seed = 100;
        assert!(!e2.is_valid(&reg));
    }

    #[test]
    fn forged_and_server_created_elements_are_invalid() {
        let reg = registry();
        let forged = Element::forged(ProcessId::client(0), ElementId::new(0, 9), 200);
        assert!(!forged.is_valid(&reg));
        // An element "signed" with a server key is invalid by model assumption.
        let server_keys = reg.lookup(ProcessId::server(0)).unwrap();
        let e = Element::new(&server_keys, ElementId::new(1, 1), 300, 5);
        assert!(!e.is_valid(&reg));
        // Unknown client.
        let unknown = KeyPair::derive(ProcessId::client(99), 1234);
        let e2 = Element::new(&unknown, ElementId::new(99, 1), 300, 5);
        assert!(!e2.is_valid(&reg));
    }

    #[test]
    fn degenerate_sizes_are_invalid() {
        let reg = registry();
        let keys = client_keys(&reg, 0);
        let zero = Element::new(&keys, ElementId::new(0, 1), 0, 1);
        let huge = Element::new(&keys, ElementId::new(0, 2), 2_000_000, 1);
        assert!(!zero.is_valid(&reg));
        assert!(!huge.is_valid(&reg));
    }

    #[test]
    fn materialize_matches_declared_size_and_is_deterministic() {
        let reg = registry();
        let keys = client_keys(&reg, 1);
        for size in [64u32, 139, 438, 1500, 4096] {
            let e = Element::new(&keys, ElementId::new(1, size as u64), size, 42);
            let bytes = e.materialize();
            assert_eq!(bytes.len(), size as usize);
            assert_eq!(bytes, e.materialize());
        }
    }

    #[test]
    fn materialize_into_matches_materialize_and_appends() {
        let reg = registry();
        let keys = client_keys(&reg, 0);
        let mut buf = b"prefix".to_vec();
        for size in [64u32, 139, 438, 1500] {
            let e = Element::new(&keys, ElementId::new(0, size as u64), size, 7 * size as u64);
            let before = buf.len();
            e.materialize_into(&mut buf);
            assert_eq!(&buf[..6], b"prefix");
            assert_eq!(&buf[before..], e.materialize(), "size={size}");
        }
    }

    #[test]
    fn materialized_batches_compress_in_paper_range() {
        let reg = registry();
        let keys = client_keys(&reg, 1);
        let mut gen = ElementGenerator::new(keys);
        let mut batch = Vec::new();
        for i in 0..200u64 {
            let e = gen.next_element(438, 1000 + i);
            batch.extend_from_slice(&e.materialize());
        }
        let stats = setchain_compress::CompressionStats::measure(&batch);
        assert!(
            stats.ratio() >= 2.0 && stats.ratio() <= 6.0,
            "expected a Brotli-like ratio (paper: 2.5-3.5), got {:.2}",
            stats.ratio()
        );
    }

    #[test]
    fn auth_matches_agrees_with_is_valid() {
        let reg = registry();
        let keys = client_keys(&reg, 0);
        let schedule = HmacSha256Key::new(&keys.secret.0);
        let good = Element::new(&keys, ElementId::new(0, 1), 438, 99);
        assert!(good.auth_matches(&schedule));
        let mut tampered = good;
        tampered.content_seed ^= 1;
        assert!(!tampered.auth_matches(&schedule));
        let forged = Element::forged(keys.id, ElementId::new(0, 2), 200);
        assert!(!forged.auth_matches(&schedule));
        assert!(good.size_in_bounds());
        assert!(!Element::forged(keys.id, ElementId::new(0, 3), 0).size_in_bounds());
    }

    #[test]
    fn pack_binds_the_full_identity() {
        let reg = registry();
        let keys = client_keys(&reg, 0);
        let e = Element::new(&keys, ElementId::new(0, 5), 438, 99);
        let packed = e.pack();
        assert_eq!(packed.len(), Element::PACKED_LEN);
        // Each field perturbation changes the packed bytes.
        for tampered in [
            Element {
                id: ElementId::new(0, 6),
                ..e
            },
            Element {
                client: ProcessId::client(1),
                ..e
            },
            Element { size: 439, ..e },
            Element {
                content_seed: 100,
                ..e
            },
            Element {
                auth: e.auth ^ 1,
                ..e
            },
        ] {
            assert_ne!(tampered.pack(), packed);
        }
        assert_eq!(e.pack(), packed, "packing is deterministic");
    }

    #[test]
    fn unpack_inverts_pack() {
        let reg = registry();
        let keys = client_keys(&reg, 1);
        for (size, seed) in [(1u32, 0u64), (438, 99), (1_000_000, u64::MAX)] {
            let e = Element::new(&keys, ElementId::new(1, seed & 0xFFFF), size, seed);
            assert_eq!(Element::unpack(&e.pack()), e);
        }
        // The store-layer contract: the first 8 packed bytes are the id.
        let e = Element::new(&keys, ElementId::new(2, 77), 438, 5);
        let packed = e.pack();
        assert_eq!(u64::from_le_bytes(packed[..8].try_into().unwrap()), e.id.0);
        assert_eq!(Element::PACKED_LEN, setchain_store::ELEMENT_LEN);
    }

    #[test]
    fn generator_produces_unique_valid_elements() {
        let reg = registry();
        let mut gen = ElementGenerator::new(client_keys(&reg, 2));
        let a = gen.next_element(438, 1);
        let b = gen.next_element(438, 1);
        assert_ne!(a.id, b.id);
        assert!(a.is_valid(&reg));
        assert!(b.is_valid(&reg));
        assert_eq!(gen.generated(), 2);
    }
}
