//! Algorithm **Vanilla** (Appendix B of the paper): the baseline Setchain.
//!
//! Every client element is appended to the ledger as its own transaction, and
//! the valid elements of each ledger block form one epoch. Epoch-proofs are
//! appended to the ledger directly as transactions. Throughput and latency
//! are therefore those of the underlying ledger — this is the reference point
//! the other two algorithms improve on.

use setchain_crypto::{KeyPair, KeyRegistry, ProcessId};
use setchain_ledger::{Application, Block};
use setchain_simnet::TimerToken;

use crate::app::SetchainApp;
use crate::byzantine::ServerByzMode;
use crate::config::SetchainConfig;
use crate::element::Element;
use crate::messages::SetchainMsg;
use crate::server::{Ctx, ServerCore, ServerStats};
use crate::state::SetchainState;
use crate::tx::SetchainTx;
use crate::Algorithm;

/// The Vanilla Setchain server application.
pub struct VanillaApp {
    core: ServerCore,
}

impl VanillaApp {
    /// Creates a Vanilla server.
    pub fn new(
        keys: KeyPair,
        registry: KeyRegistry,
        config: SetchainConfig,
        trace: crate::trace::SetchainTrace,
        byz: ServerByzMode,
    ) -> Self {
        VanillaApp {
            core: ServerCore::new(keys, registry, config, trace, byz),
        }
    }

    /// The Setchain state of this server (for `get`-style inspection).
    pub fn state(&self) -> &SetchainState {
        &self.core.state
    }

    /// Server counters.
    pub fn stats(&self) -> ServerStats {
        self.core.stats
    }

    fn handle_add(&mut self, element: Element, ctx: &mut Ctx<'_, '_, '_>) {
        if self.core.accept_add(&element, ctx) {
            // L.append(e): the element becomes its own ledger transaction.
            let tx = SetchainTx::Element(element);
            self.core
                .trace
                .record_tx_assignment(element.id, setchain_ledger::TxData::tx_id(&tx));
            ctx.append(tx);
        }
        if self.core.byz == ServerByzMode::InjectInvalidElements {
            // A Byzantine server also appends a fabricated element; correct
            // servers must filter it out during block processing.
            let forged = Element::forged(
                ProcessId::client(0),
                crate::element::ElementId::new(u32::MAX, element.id.seq()),
                200,
            );
            ctx.append(SetchainTx::Element(forged));
        }
    }
}

impl SetchainApp for VanillaApp {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Vanilla
    }

    fn state(&self) -> &SetchainState {
        &self.core.state
    }

    fn stats(&self) -> ServerStats {
        self.core.stats
    }

    fn shard_stats(&self) -> Vec<crate::server::ShardStats> {
        self.core.shard_stats()
    }

    fn config(&self) -> &SetchainConfig {
        &self.core.config
    }

    fn core(&self) -> &ServerCore {
        &self.core
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl Application for VanillaApp {
    type Tx = SetchainTx;
    type Msg = SetchainMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, '_, '_>) {
        // No timers to arm; a *restart* (retained state) probes peers for
        // epochs missed while down. A cold start is a no-op.
        self.core.maybe_request_catchup(ctx);
    }

    fn check_tx(&self, tx: &SetchainTx) -> bool {
        match tx {
            // Full element validation happens again at block processing time
            // (a Byzantine server may have gossiped anything); here we only
            // keep obviously malformed sizes out of the mempool.
            SetchainTx::Element(e) => e.size > 0 && e.size <= 1_000_000,
            // Structural check only; content is verified against history when
            // the proof is extracted from a block.
            SetchainTx::Proof(p) => {
                p.signer.is_server() && p.signer.server_index() < self.core.config.servers
            }
            // Vanilla never uses batch transactions.
            SetchainTx::Compressed(_) | SetchainTx::HashBatch(_) => false,
        }
    }

    fn finalize_block(&mut self, block: &Block<SetchainTx>, ctx: &mut Ctx<'_, '_, '_>) {
        let now = ctx.now();
        // 1. Extract the valid epoch-proofs of the block.
        for tx in &block.txs {
            if let SetchainTx::Proof(p) = tx {
                self.core.ingest_proof(*p, now, ctx);
            }
        }
        // 2. The valid elements of the block that are not yet in an epoch
        //    form the new epoch G.
        let elements: Vec<Element> = block
            .txs
            .iter()
            .filter_map(|tx| match tx {
                SetchainTx::Element(e) => Some(*e),
                _ => None,
            })
            .collect();
        let g = self.core.extract_epoch_candidates(&elements, true, ctx);
        // 3. epoch ← epoch + 1; history[epoch] ← G; append the epoch-proof.
        let (_, proof) = self.core.create_epoch(g, now, ctx);
        ctx.append(SetchainTx::Proof(proof));
    }

    fn on_message(&mut self, from: ProcessId, msg: SetchainMsg, ctx: &mut Ctx<'_, '_, '_>) {
        match msg {
            SetchainMsg::Add(e) => {
                if self.core.admit_source(from, 1, ctx) {
                    self.handle_add(e, ctx);
                }
            }
            SetchainMsg::AddBatch(es) => {
                if self.core.admit_source(from, es.len() as u64, ctx) {
                    for e in es {
                        self.handle_add(e, ctx);
                    }
                }
            }
            SetchainMsg::BatchedAdd(batch) => {
                // The quota gate runs first: a shed batch costs zero root
                // verification.
                if !self
                    .core
                    .admit_source(from, batch.elements.len() as u64, ctx)
                {
                    return;
                }
                // One root-cache probe / MAC check authenticates the whole
                // batch; the per-element admission probes inside
                // `handle_add` then hit the warmed cache.
                let valid = self.core.verify_batched_add(&batch, ctx);
                if from.is_server() {
                    // Peer-forwarded envelope: verifying it warmed this
                    // server's caches; the elements themselves arrive as
                    // ledger transactions.
                } else if valid {
                    if self.core.byz != ServerByzMode::DropClientAdds {
                        self.core.gossip_batched_add(&batch, ctx);
                    }
                    for e in batch.elements {
                        self.handle_add(e, ctx);
                    }
                } else {
                    self.core.stats.adds_rejected_invalid += batch.elements.len() as u64;
                }
            }
            other => {
                let _ = self.core.handle_get(from, &other, ctx);
            }
        }
    }

    fn on_timer(&mut self, _token: TimerToken, _ctx: &mut Ctx<'_, '_, '_>) {
        // Vanilla has no collector and therefore no timers.
    }
}
