//! Account-based world state for the blockchain extension.
//!
//! Appendix G of the paper sketches how a Setchain becomes a full blockchain:
//! after an epoch is consolidated and its transactions ordered, their effects
//! are computed sequentially against a replicated state. This module provides
//! that state: a map from [`Address`] to [`Account`] with a Merkle commitment
//! ([`WorldState::state_root`]) so correct servers can cross-check that they
//! computed the same effects for the same epochs.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use setchain_crypto::{Digest256, MerkleTree};

/// An account address.
///
/// The reproduction derives addresses deterministically from Setchain
/// elements (see [`crate::transaction::Transaction::from_element`]), so a
/// 64-bit identifier is sufficient; a production chain would use a hash of a
/// public key instead.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Address(pub u64);

impl Address {
    /// The address credited with transaction fees (the "validator" account
    /// in the paper's framing; a single sink keeps conservation checkable).
    pub const FEE_SINK: Address = Address(u64::MAX);

    /// Derives the address owned by injection client `index`.
    pub fn for_client(index: u32) -> Self {
        Address(0x1000_0000_0000 | index as u64)
    }
}

/// The balance/nonce pair stored per account.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct Account {
    /// Spendable balance.
    pub balance: u128,
    /// Number of transactions this account has successfully sent. A transfer
    /// is void unless its nonce equals the sender's current nonce.
    pub nonce: u64,
}

/// The replicated account state.
///
/// A `BTreeMap` keeps iteration order deterministic so that the Merkle root
/// is identical on every correct server regardless of insertion order.
#[derive(Clone, Debug, Default)]
pub struct WorldState {
    accounts: BTreeMap<Address, Account>,
    /// Fees collected by executed transactions and credited to
    /// [`Address::FEE_SINK`] lazily at root computation time. Kept separate
    /// so [`WorldState::total_supply`] stays a pure sum over accounts.
    fees_collected: u128,
}

impl WorldState {
    /// Creates an empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a state in which every address in `genesis` starts with the
    /// given balance and nonce 0.
    pub fn with_genesis(genesis: impl IntoIterator<Item = (Address, u128)>) -> Self {
        let mut state = Self::new();
        for (addr, balance) in genesis {
            state.accounts.insert(addr, Account { balance, nonce: 0 });
        }
        state
    }

    /// Number of accounts with state (including zero-balance accounts that
    /// have sent transactions).
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// True if no account has any state.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }

    /// The account stored for `addr` (default account if never touched).
    pub fn account(&self, addr: Address) -> Account {
        self.accounts.get(&addr).copied().unwrap_or_default()
    }

    /// The balance of `addr`.
    pub fn balance(&self, addr: Address) -> u128 {
        self.account(addr).balance
    }

    /// The nonce of `addr`.
    pub fn nonce(&self, addr: Address) -> u64 {
        self.account(addr).nonce
    }

    /// Mutable access to the account of `addr`, creating it if needed.
    pub fn account_mut(&mut self, addr: Address) -> &mut Account {
        self.accounts.entry(addr).or_default()
    }

    /// Credits `amount` to `addr`.
    pub fn credit(&mut self, addr: Address, amount: u128) {
        self.account_mut(addr).balance += amount;
    }

    /// Debits `amount` from `addr`; returns false (and leaves the account
    /// untouched) if the balance is insufficient.
    pub fn debit(&mut self, addr: Address, amount: u128) -> bool {
        let account = self.account_mut(addr);
        if account.balance < amount {
            return false;
        }
        account.balance -= amount;
        true
    }

    /// Records `fee` as collected (credited to [`Address::FEE_SINK`]).
    pub fn collect_fee(&mut self, fee: u128) {
        self.fees_collected += fee;
        self.credit(Address::FEE_SINK, fee);
    }

    /// Total fees collected so far.
    pub fn fees_collected(&self) -> u128 {
        self.fees_collected
    }

    /// Sum of all account balances (including the fee sink). Execution never
    /// creates or destroys value, so this is invariant under
    /// [`crate::executor::execute_epoch`].
    pub fn total_supply(&self) -> u128 {
        self.accounts.values().map(|a| a.balance).sum()
    }

    /// Iterates over all accounts in address order.
    pub fn iter(&self) -> impl Iterator<Item = (&Address, &Account)> {
        self.accounts.iter()
    }

    /// Merkle root over the (address, balance, nonce) triples in address
    /// order: the state commitment correct servers compare after executing an
    /// epoch.
    pub fn state_root(&self) -> Digest256 {
        let leaves: Vec<[u8; 32]> = self
            .accounts
            .iter()
            .map(|(addr, acct)| {
                let mut leaf = [0u8; 32];
                leaf[..8].copy_from_slice(&addr.0.to_le_bytes());
                leaf[8..24].copy_from_slice(&acct.balance.to_le_bytes());
                leaf[24..32].copy_from_slice(&acct.nonce.to_le_bytes());
                leaf
            })
            .collect();
        MerkleTree::build(&leaves).root()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genesis_funds_accounts() {
        let state = WorldState::with_genesis([(Address(1), 100), (Address(2), 50)]);
        assert_eq!(state.len(), 2);
        assert_eq!(state.balance(Address(1)), 100);
        assert_eq!(state.balance(Address(2)), 50);
        assert_eq!(state.balance(Address(3)), 0);
        assert_eq!(state.nonce(Address(1)), 0);
        assert_eq!(state.total_supply(), 150);
    }

    #[test]
    fn credit_and_debit() {
        let mut state = WorldState::new();
        state.credit(Address(7), 10);
        assert_eq!(state.balance(Address(7)), 10);
        assert!(state.debit(Address(7), 4));
        assert_eq!(state.balance(Address(7)), 6);
        assert!(!state.debit(Address(7), 7), "overdraft refused");
        assert_eq!(state.balance(Address(7)), 6, "failed debit leaves balance");
        assert!(!state.debit(Address(99), 1), "unknown account has nothing");
    }

    #[test]
    fn fee_collection_goes_to_the_sink() {
        let mut state = WorldState::with_genesis([(Address(1), 100)]);
        state.collect_fee(3);
        state.collect_fee(2);
        assert_eq!(state.fees_collected(), 5);
        assert_eq!(state.balance(Address::FEE_SINK), 5);
        assert_eq!(state.total_supply(), 105);
    }

    #[test]
    fn state_root_is_order_independent_and_content_sensitive() {
        let a = WorldState::with_genesis([(Address(1), 10), (Address(2), 20)]);
        let b = WorldState::with_genesis([(Address(2), 20), (Address(1), 10)]);
        assert_eq!(a.state_root(), b.state_root());
        let c = WorldState::with_genesis([(Address(1), 10), (Address(2), 21)]);
        assert_ne!(a.state_root(), c.state_root());
        let mut d = a.clone();
        d.account_mut(Address(1)).nonce = 1;
        assert_ne!(a.state_root(), d.state_root());
    }

    #[test]
    fn empty_state_has_a_well_defined_root() {
        let a = WorldState::new();
        let b = WorldState::new();
        assert_eq!(a.state_root(), b.state_root());
        assert!(a.is_empty());
    }

    #[test]
    fn client_addresses_are_distinct_from_fee_sink() {
        for i in 0..1000 {
            assert_ne!(Address::for_client(i), Address::FEE_SINK);
        }
        assert_ne!(Address::for_client(0), Address::for_client(1));
    }
}
