//! The Setchain state maintained by every server: `the_set`, `epoch`,
//! `history` and `proofs`, plus helpers for the safety properties the paper
//! proves (Consistent-Sets, Unique-Epoch, Consistent-Gets).

use std::collections::HashSet;

use setchain_crypto::{Digest512, FxHashMap, FxHashSet};

use crate::element::{Element, ElementId};
use crate::messages::GetSnapshot;
use crate::proofs::{epoch_hash, epoch_hash_for_root, epoch_root, EpochProof};
use crate::shard::{aggregate_epoch, ShardRing, SubEpoch};

/// The four components of a Setchain returned by `get()`:
/// `(the_set, history, epoch, proofs)`.
#[derive(Debug)]
pub struct SetchainState {
    /// Grow-only set of element ids that have been added, partitioned by
    /// the admission ring: `shard_sets[s]` holds the ids the ring maps to
    /// shard `s`. With one shard (the default) this is exactly the old
    /// single `the_set`.
    shard_sets: Vec<FxHashSet<ElementId>>,
    /// The consistent-hash ring routing ids to `shard_sets` partitions.
    ring: ShardRing,
    /// Current epoch number (`history` holds epochs `1..=epoch`).
    epoch: u64,
    /// `history[i - 1]` holds the elements stamped with epoch `i`.
    history: Vec<Vec<Element>>,
    /// `epoch_digests[i - 1]` caches `Hash(i, history[i])`, computed exactly
    /// once when the epoch is recorded. Every proof made or verified for the
    /// epoch reuses it instead of re-hashing the elements.
    epoch_digests: Vec<Digest512>,
    /// `sub_epochs[i - 1]` holds epoch `i`'s per-shard sub-epoch
    /// commitments when the state is sharded (empty for the unsharded
    /// pipeline, whose digest path never computes them).
    sub_epochs: Vec<Vec<SubEpoch>>,
    /// Reverse index: element id → epoch it was stamped with.
    element_epoch: FxHashMap<ElementId, u64>,
    /// Epoch-proofs received, per epoch, at most one per signer. The inner
    /// collection is a `Vec` so `proofs_for` can hand out a borrowed slice;
    /// signer sets are tiny (≤ n servers) so the linear dedup is cheap.
    proofs: FxHashMap<u64, Vec<EpochProof>>,
    /// Bounded-memory mode: epochs `1..=evicted_epochs` have had their
    /// elements evicted from `shard_sets`, `history` and `element_epoch`
    /// (they live in the persistent store instead; digests, sub-epoch
    /// commitments and proofs stay resident). Eviction is strictly
    /// prefix-ordered. 0 (always, without a store) means fully resident.
    evicted_epochs: u64,
    /// Elements dropped by eviction, so the *logical* set and history sizes
    /// reported to clients stay correct.
    evicted_elements: u64,
}

impl Default for SetchainState {
    /// The unsharded empty state — identical to [`SetchainState::new`].
    fn default() -> Self {
        Self::with_shards(1)
    }
}

impl SetchainState {
    /// Creates an empty state (`the_set = ∅`, `epoch = 0`, `history = ∅`,
    /// `proofs = ∅`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty state whose `the_set` is partitioned across
    /// `shards` admission shards. `with_shards(1)` is exactly [`Self::new`].
    pub fn with_shards(shards: usize) -> Self {
        SetchainState {
            shard_sets: (0..shards.max(1)).map(|_| FxHashSet::default()).collect(),
            ring: ShardRing::new(shards.max(1)),
            epoch: 0,
            history: Vec::new(),
            epoch_digests: Vec::new(),
            sub_epochs: Vec::new(),
            element_epoch: FxHashMap::default(),
            proofs: FxHashMap::default(),
            evicted_epochs: 0,
            evicted_elements: 0,
        }
    }

    /// Current epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of `the_set` partitions (1 for the unsharded pipeline).
    pub fn shard_count(&self) -> usize {
        self.shard_sets.len()
    }

    /// Number of elements the ring has routed to `the_set` partition
    /// `shard`. The per-shard term of [`Self::the_set_len`].
    pub fn shard_set_len(&self, shard: usize) -> usize {
        self.shard_sets.get(shard).map(FxHashSet::len).unwrap_or(0)
    }

    /// Number of elements in `the_set` (the rollup across all partitions,
    /// plus elements evicted to the persistent store — the *logical* size,
    /// unchanged by eviction).
    pub fn the_set_len(&self) -> usize {
        self.shard_sets.iter().map(FxHashSet::len).sum::<usize>() + self.evicted_elements as usize
    }

    /// True if `the_set` contains the element.
    pub fn contains(&self, id: &ElementId) -> bool {
        self.shard_sets[self.ring.shard_of(*id)].contains(id)
    }

    /// Adds an element id to `the_set`. Returns true if it was new.
    pub fn insert(&mut self, id: ElementId) -> bool {
        self.shard_sets[self.ring.shard_of(id)].insert(id)
    }

    /// True if the element has already been stamped with an epoch
    /// (the algorithms' `e ∈ history` check).
    pub fn in_history(&self, id: &ElementId) -> bool {
        self.element_epoch.contains_key(id)
    }

    /// The epoch an element was stamped with, if any.
    pub fn epoch_of(&self, id: &ElementId) -> Option<u64> {
        self.element_epoch.get(id).copied()
    }

    /// Elements of epoch `i` (1-based), if it exists *and is resident* —
    /// `None` for epochs evicted to the persistent store (callers with a
    /// store fall back to reading the segment log).
    pub fn epoch_elements(&self, epoch: u64) -> Option<&[Element]> {
        if epoch <= self.evicted_epochs || epoch > self.epoch {
            return None;
        }
        Some(&self.history[(epoch - 1) as usize])
    }

    /// Total number of elements across all epochs (logical: evicted epochs
    /// still count).
    pub fn history_elements(&self) -> u64 {
        self.history.iter().map(|g| g.len() as u64).sum::<u64>() + self.evicted_elements
    }

    /// Creates a new epoch from `elements`, inserting them into `the_set`
    /// (Consistent-Sets requires `history ⊆ the_set`) and recording the
    /// reverse index. Returns the new epoch number.
    ///
    /// Callers are responsible for having filtered out elements already in
    /// `history` (Unique-Epoch); this is asserted in debug builds.
    pub fn record_epoch(&mut self, elements: Vec<Element>) -> u64 {
        self.epoch += 1;
        // Pre-size both per-element maps from the epoch's cardinality: one
        // rehash check here instead of incremental growth mid-loop. (With
        // multiple shards the per-partition counts are not known up front;
        // the partitions grow incrementally instead.)
        if self.shard_sets.len() == 1 {
            self.shard_sets[0].reserve(elements.len());
        }
        self.element_epoch.reserve(elements.len());
        for e in &elements {
            debug_assert!(
                !self.element_epoch.contains_key(&e.id),
                "element {:?} stamped twice",
                e.id
            );
            self.shard_sets[self.ring.shard_of(e.id)].insert(e.id);
            self.element_epoch.insert(e.id, self.epoch);
        }
        // The epoch digest is computed exactly once, here; every proof site
        // (signing our own proof, verifying up to n peer proofs) reuses it.
        if self.ring.shards() == 1 {
            // Unsharded: the original digest path, untouched.
            self.epoch_digests.push(epoch_hash(self.epoch, &elements));
            self.sub_epochs.push(Vec::new());
        } else {
            // Sharded: per-shard sub-roots merged by the cross-shard
            // aggregator. The merged root is exactly `epoch_root`, so the
            // signed digest is byte-identical to the unsharded pipeline —
            // asserted in debug builds, proven differentially by
            // `tests/shard_conformance.rs`.
            let agg = aggregate_epoch(&self.ring, &elements);
            debug_assert_eq!(agg.root, epoch_root(&elements));
            self.epoch_digests.push(epoch_hash_for_root(
                self.epoch,
                elements.len() as u64,
                &agg.root,
            ));
            self.sub_epochs.push(agg.sub_epochs);
        }
        self.history.push(elements);
        self.epoch
    }

    /// Epoch `i`'s per-shard sub-epoch commitments, if the state is sharded
    /// and the epoch exists. The unsharded pipeline records none (its
    /// digest path never computes them) and returns an empty slice.
    pub fn epoch_sub_epochs(&self, epoch: u64) -> Option<&[SubEpoch]> {
        if epoch == 0 || epoch > self.epoch {
            return None;
        }
        Some(&self.sub_epochs[(epoch - 1) as usize])
    }

    /// Installs one epoch recovered through the catch-up protocol. The
    /// caller must already have verified the bundle against `f + 1` valid
    /// epoch-proof signers; this method only enforces sequencing: catch-up
    /// replays strictly in order, so `epoch` must be exactly
    /// `self.epoch + 1`. Returns `false` (state untouched) otherwise.
    pub fn install_epoch(&mut self, epoch: u64, elements: Vec<Element>) -> bool {
        if epoch != self.epoch + 1 {
            return false;
        }
        self.record_epoch(elements);
        true
    }

    /// Number of epochs whose elements have been evicted to the persistent
    /// store (a strict prefix `1..=evicted_epochs` of the history).
    pub fn evicted_epochs(&self) -> u64 {
        self.evicted_epochs
    }

    /// True if the epoch's elements are resident in RAM (false for epoch 0,
    /// unknown epochs, and evicted epochs).
    pub fn epoch_is_resident(&self, epoch: u64) -> bool {
        epoch > self.evicted_epochs && epoch <= self.epoch
    }

    /// Bounded-memory mode: drops epoch `epoch`'s elements from RAM —
    /// `shard_sets`, `element_epoch` and the `history` entry — keeping the
    /// digest, sub-epoch commitments and proofs. Returns the number of
    /// elements evicted.
    ///
    /// The caller owns two obligations: the epoch must already be durable
    /// in the persistent store (membership and readback fall back to it),
    /// and eviction proceeds strictly in epoch order — `epoch` must be
    /// exactly `evicted_epochs() + 1` and an existing epoch. The logical
    /// sizes ([`Self::the_set_len`], [`Self::history_elements`]) are
    /// unchanged by eviction.
    pub fn evict_epoch(&mut self, epoch: u64) -> usize {
        assert_eq!(
            epoch,
            self.evicted_epochs + 1,
            "eviction is strictly prefix-ordered"
        );
        assert!(epoch <= self.epoch, "cannot evict an epoch not yet held");
        let elements = std::mem::take(&mut self.history[(epoch - 1) as usize]);
        for e in &elements {
            self.shard_sets[self.ring.shard_of(e.id)].remove(&e.id);
            self.element_epoch.remove(&e.id);
        }
        self.evicted_epochs = epoch;
        self.evicted_elements += elements.len() as u64;
        elements.len()
    }

    /// The cached digest `Hash(i, history[i])` of epoch `i` (1-based), if the
    /// epoch exists.
    pub fn epoch_digest(&self, epoch: u64) -> Option<&Digest512> {
        if epoch == 0 || epoch > self.epoch {
            return None;
        }
        self.epoch_digests.get((epoch - 1) as usize)
    }

    /// Records an epoch-proof. Returns the number of distinct signers now
    /// known for that epoch.
    pub fn add_proof(&mut self, proof: EpochProof) -> usize {
        let per_epoch = self.proofs.entry(proof.epoch).or_default();
        if !per_epoch.iter().any(|p| p.signer == proof.signer) {
            per_epoch.push(proof);
        }
        per_epoch.len()
    }

    /// Number of distinct proof signers for `epoch`.
    pub fn proof_count(&self, epoch: u64) -> usize {
        self.proofs.get(&epoch).map(|m| m.len()).unwrap_or(0)
    }

    /// The proofs held for `epoch`, borrowed — no clone per call. Callers
    /// that need ownership (e.g. to ship the proofs to a client) copy
    /// explicitly with `.to_vec()`.
    pub fn proofs_for(&self, epoch: u64) -> &[EpochProof] {
        self.proofs.get(&epoch).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of proofs held across all epochs.
    pub fn proofs_total(&self) -> u64 {
        self.proofs.values().map(|m| m.len() as u64).sum()
    }

    /// Number of epochs with at least `quorum` proofs.
    pub fn epochs_with_quorum(&self, quorum: usize) -> u64 {
        (1..=self.epoch)
            .filter(|i| self.proof_count(*i) >= quorum)
            .count() as u64
    }

    /// The `get()` summary returned to clients.
    pub fn snapshot(&self, quorum: usize) -> GetSnapshot {
        GetSnapshot {
            the_set_len: self.the_set_len() as u64,
            epoch: self.epoch,
            history_elements: self.history_elements(),
            proofs_total: self.proofs_total(),
            epochs_with_quorum: self.epochs_with_quorum(quorum),
        }
    }

    // ------------------------------------------------------------------
    // Property checkers (used by tests and by the verification example)
    // ------------------------------------------------------------------

    /// Property 1 (Consistent-Sets): every epoch is a subset of `the_set`.
    pub fn check_consistent_sets(&self) -> bool {
        self.history
            .iter()
            .all(|g| g.iter().all(|e| self.contains(&e.id)))
    }

    /// Property 5 (Unique-Epoch): epochs are pairwise disjoint.
    pub fn check_unique_epoch(&self) -> bool {
        let mut seen = HashSet::new();
        for g in &self.history {
            for e in g {
                if !seen.insert(e.id) {
                    return false;
                }
            }
        }
        true
    }

    /// Property 6 (Consistent-Gets) between two servers: the common prefix of
    /// epochs must be identical (as sets). Epochs either side has evicted
    /// to its store are skipped — only resident history can be compared
    /// here (differential tests of evicting runs compare epoch *digests*,
    /// which are never evicted, instead).
    pub fn check_consistent_with(&self, other: &SetchainState) -> bool {
        let common = self.epoch.min(other.epoch);
        let start = self.evicted_epochs.max(other.evicted_epochs) + 1;
        for i in start..=common {
            let a: HashSet<ElementId> = self
                .epoch_elements(i)
                .expect("epoch in range")
                .iter()
                .map(|e| e.id)
                .collect();
            let b: HashSet<ElementId> = other
                .epoch_elements(i)
                .expect("epoch in range")
                .iter()
                .map(|e| e.id)
                .collect();
            if a != b {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::ElementId;
    use crate::proofs::make_epoch_proof;
    use setchain_crypto::{KeyRegistry, ProcessId};

    fn elements(range: std::ops::Range<u64>) -> Vec<Element> {
        let reg = KeyRegistry::bootstrap(1, 1, 1);
        let keys = reg.lookup(ProcessId::client(0)).unwrap();
        range
            .map(|i| Element::new(&keys, ElementId::new(0, i), 400, i))
            .collect()
    }

    #[test]
    fn empty_state_snapshot() {
        let st = SetchainState::new();
        assert_eq!(st.epoch(), 0);
        assert_eq!(st.the_set_len(), 0);
        assert_eq!(st.epoch_elements(0), None);
        assert_eq!(st.epoch_elements(1), None);
        let snap = st.snapshot(2);
        assert_eq!(snap.epoch, 0);
        assert!(st.check_consistent_sets());
        assert!(st.check_unique_epoch());
    }

    #[test]
    fn record_epoch_updates_everything() {
        let mut st = SetchainState::new();
        let es = elements(0..5);
        let epoch = st.record_epoch(es.clone());
        assert_eq!(epoch, 1);
        assert_eq!(st.epoch(), 1);
        assert_eq!(st.history_elements(), 5);
        assert_eq!(st.epoch_elements(1).unwrap().len(), 5);
        for e in &es {
            assert!(st.contains(&e.id));
            assert!(st.in_history(&e.id));
            assert_eq!(st.epoch_of(&e.id), Some(1));
        }
        assert!(st.check_consistent_sets());
        assert!(st.check_unique_epoch());
        // Second, disjoint epoch.
        let epoch2 = st.record_epoch(elements(5..8));
        assert_eq!(epoch2, 2);
        assert!(st.check_unique_epoch());
    }

    #[test]
    fn epoch_digests_are_cached_and_match_recomputation() {
        let mut st = SetchainState::new();
        assert!(st.epoch_digest(0).is_none());
        assert!(st.epoch_digest(1).is_none());
        let es = elements(0..5);
        st.record_epoch(es.clone());
        st.record_epoch(elements(5..7));
        assert_eq!(st.epoch_digest(1), Some(&epoch_hash(1, &es)));
        assert_eq!(
            st.epoch_digest(2),
            Some(&epoch_hash(2, st.epoch_elements(2).unwrap()))
        );
        assert!(st.epoch_digest(3).is_none());
    }

    #[test]
    fn install_epoch_is_strictly_sequential() {
        let mut st = SetchainState::new();
        let e1 = elements(0..3);
        let e2 = elements(3..5);
        // Out-of-order install is refused without touching the state.
        assert!(!st.install_epoch(2, e2.clone()));
        assert!(!st.install_epoch(0, e1.clone()));
        assert_eq!(st.epoch(), 0);
        // In-order installs behave exactly like record_epoch.
        assert!(st.install_epoch(1, e1.clone()));
        assert!(st.install_epoch(2, e2.clone()));
        assert_eq!(st.epoch(), 2);
        assert_eq!(st.epoch_digest(1), Some(&epoch_hash(1, &e1)));
        assert!(st.check_consistent_sets());
        assert!(st.check_unique_epoch());
        // Re-installing an already-held epoch is refused.
        assert!(!st.install_epoch(2, e2));
    }

    #[test]
    fn insert_tracks_the_set_independently_of_history() {
        let mut st = SetchainState::new();
        let e = elements(0..1)[0];
        assert!(st.insert(e.id));
        assert!(!st.insert(e.id));
        assert!(st.contains(&e.id));
        assert!(!st.in_history(&e.id));
        // Consistent-Sets still holds: history is empty.
        assert!(st.check_consistent_sets());
    }

    #[test]
    fn proofs_and_quorum_counting() {
        let reg = KeyRegistry::bootstrap(1, 5, 1);
        let mut st = SetchainState::new();
        let es = elements(0..3);
        st.record_epoch(es.clone());
        for i in 0..3 {
            let keys = reg.lookup(ProcessId::server(i)).unwrap();
            let count = st.add_proof(make_epoch_proof(&keys, 1, &es));
            assert_eq!(count, i + 1);
        }
        // Duplicate signer does not increase the count.
        let keys = reg.lookup(ProcessId::server(0)).unwrap();
        assert_eq!(st.add_proof(make_epoch_proof(&keys, 1, &es)), 3);
        assert_eq!(st.proof_count(1), 3);
        assert_eq!(st.proof_count(2), 0);
        assert_eq!(st.proofs_total(), 3);
        assert_eq!(st.epochs_with_quorum(3), 1);
        assert_eq!(st.epochs_with_quorum(4), 0);
        assert_eq!(st.proofs_for(1).len(), 3);
        let snap = st.snapshot(3);
        assert_eq!(snap.epochs_with_quorum, 1);
        assert_eq!(snap.proofs_total, 3);
        assert_eq!(snap.history_elements, 3);
    }

    #[test]
    fn consistency_check_between_servers() {
        let mut a = SetchainState::new();
        let mut b = SetchainState::new();
        let e1 = elements(0..4);
        let e2 = elements(4..6);
        a.record_epoch(e1.clone());
        a.record_epoch(e2.clone());
        b.record_epoch(e1.clone());
        // b is one epoch behind: still consistent on the common prefix.
        assert!(a.check_consistent_with(&b));
        assert!(b.check_consistent_with(&a));
        // Divergent epoch 2 breaks consistency once both have it.
        b.record_epoch(elements(6..8));
        assert!(!a.check_consistent_with(&b));
    }

    #[test]
    fn sharded_state_matches_the_unsharded_oracle() {
        // The state-level slice of the conformance argument: same inserts
        // and epochs, identical membership, lengths and — crucially —
        // epoch digests, for every shard count.
        let es1 = elements(0..40);
        let es2 = elements(40..55);
        let mut oracle = SetchainState::new();
        oracle.record_epoch(es1.clone());
        oracle.record_epoch(es2.clone());
        for shards in [1usize, 2, 4, 8] {
            let mut st = SetchainState::with_shards(shards);
            assert_eq!(st.shard_count(), shards);
            st.record_epoch(es1.clone());
            st.record_epoch(es2.clone());
            assert_eq!(st.the_set_len(), oracle.the_set_len());
            assert_eq!(
                (0..shards).map(|s| st.shard_set_len(s)).sum::<usize>(),
                st.the_set_len(),
                "partition rollup covers the_set"
            );
            for e in es1.iter().chain(&es2) {
                assert!(st.contains(&e.id));
                assert_eq!(st.epoch_of(&e.id), oracle.epoch_of(&e.id));
            }
            assert_eq!(st.epoch_digest(1), oracle.epoch_digest(1));
            assert_eq!(st.epoch_digest(2), oracle.epoch_digest(2));
            assert!(st.check_consistent_sets());
            assert!(st.check_unique_epoch());
            assert!(st.check_consistent_with(&oracle));
            // Sub-epoch commitments exist exactly when sharded, and their
            // counts cover each epoch.
            let subs = st.epoch_sub_epochs(1).unwrap();
            if shards == 1 {
                assert!(subs.is_empty());
            } else {
                assert_eq!(subs.len(), shards);
                assert_eq!(subs.iter().map(|s| s.count).sum::<u64>(), es1.len() as u64);
            }
        }
    }

    #[test]
    fn eviction_preserves_logical_sizes_and_digests() {
        for shards in [1usize, 4] {
            let mut st = SetchainState::with_shards(shards);
            st.record_epoch(elements(0..5));
            st.record_epoch(elements(5..8));
            st.record_epoch(elements(8..12));
            let digests: Vec<_> = (1..=3).map(|e| *st.epoch_digest(e).unwrap()).collect();
            assert_eq!(st.evicted_epochs(), 0);
            assert!(st.epoch_is_resident(1));
            assert_eq!(st.evict_epoch(1), 5);
            assert_eq!(st.evict_epoch(2), 3);
            assert_eq!(st.evicted_epochs(), 2);
            // Logical sizes are unchanged; residency and direct lookups are.
            assert_eq!(st.the_set_len(), 12);
            assert_eq!(st.history_elements(), 12);
            assert!(!st.epoch_is_resident(2));
            assert!(st.epoch_is_resident(3));
            assert!(st.epoch_elements(1).is_none());
            assert!(st.epoch_elements(2).is_none());
            assert_eq!(st.epoch_elements(3).unwrap().len(), 4);
            let evicted = elements(0..5);
            assert!(!st.contains(&evicted[0].id));
            assert!(!st.in_history(&evicted[0].id));
            // Digests (what proofs verify against) are never evicted.
            for (i, d) in digests.iter().enumerate() {
                assert_eq!(st.epoch_digest(i as u64 + 1), Some(d));
            }
            // Snapshot still reports logical sizes.
            let snap = st.snapshot(1);
            assert_eq!(snap.the_set_len, 12);
            assert_eq!(snap.history_elements, 12);
            // New epochs keep recording on top of the evicted prefix.
            st.record_epoch(elements(12..14));
            assert_eq!(st.epoch(), 4);
            assert_eq!(st.the_set_len(), 14);
            // Consistency checks skip the evicted prefix instead of
            // panicking, and still hold on the resident suffix.
            assert!(st.check_consistent_sets());
            assert!(st.check_unique_epoch());
            let mut full = SetchainState::with_shards(shards);
            full.record_epoch(elements(0..5));
            full.record_epoch(elements(5..8));
            full.record_epoch(elements(8..12));
            full.record_epoch(elements(12..14));
            assert!(st.check_consistent_with(&full));
            assert!(full.check_consistent_with(&st));
        }
    }

    #[test]
    #[should_panic(expected = "prefix-ordered")]
    fn out_of_order_eviction_panics() {
        let mut st = SetchainState::new();
        st.record_epoch(elements(0..3));
        st.record_epoch(elements(3..5));
        let _ = st.evict_epoch(2);
    }

    #[test]
    #[should_panic(expected = "not yet held")]
    fn evicting_a_future_epoch_panics() {
        let mut st = SetchainState::new();
        let _ = st.evict_epoch(1);
    }

    #[test]
    fn unique_epoch_violation_detected() {
        let mut st = SetchainState::new();
        let es = elements(0..2);
        st.record_epoch(es.clone());
        // Bypass record_epoch's contract to simulate a buggy/Byzantine state.
        st.history.push(vec![es[0]]);
        st.epoch += 1;
        assert!(!st.check_unique_epoch());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Partitions `total` generated elements into consecutive epochs whose
        /// sizes are given by `sizes` (truncated once the elements run out).
        fn build_state(total: u64, sizes: &[usize]) -> (SetchainState, Vec<Element>) {
            let pool = elements(0..total);
            let mut st = SetchainState::new();
            let mut cursor = 0usize;
            for &size in sizes {
                if cursor >= pool.len() {
                    break;
                }
                let end = (cursor + size.max(1)).min(pool.len());
                st.record_epoch(pool[cursor..end].to_vec());
                cursor = end;
            }
            (st, pool)
        }

        proptest! {
            /// Properties 1 and 5 (Consistent-Sets, Unique-Epoch) hold for any
            /// partition of elements into epochs built through the public API,
            /// and the reverse index agrees with the history.
            #[test]
            fn prop_partition_preserves_safety_invariants(
                total in 1u64..200,
                sizes in proptest::collection::vec(1usize..40, 1..12),
            ) {
                let (st, pool) = build_state(total, &sizes);
                prop_assert!(st.check_consistent_sets());
                prop_assert!(st.check_unique_epoch());
                // Every stamped element is findable through epoch_of and its
                // epoch really contains it.
                let mut stamped = 0u64;
                for epoch in 1..=st.epoch() {
                    for e in st.epoch_elements(epoch).unwrap() {
                        prop_assert_eq!(st.epoch_of(&e.id), Some(epoch));
                        stamped += 1;
                    }
                }
                prop_assert_eq!(stamped, st.history_elements());
                prop_assert!(stamped <= pool.len() as u64);
                // Out-of-range epochs are not exposed.
                prop_assert!(st.epoch_elements(0).is_none());
                prop_assert!(st.epoch_elements(st.epoch() + 1).is_none());
            }

            /// Property 6 (Consistent-Gets): two servers that build the same
            /// epoch partition agree on every common epoch, and a server that
            /// is a prefix of another is still consistent with it.
            #[test]
            fn prop_prefix_states_are_consistent(
                total in 1u64..150,
                sizes in proptest::collection::vec(1usize..30, 1..10),
                cut in 0usize..10,
            ) {
                let (full, pool) = build_state(total, &sizes);
                let cut = cut.min(sizes.len());
                let (prefix, _) = build_state(pool.len() as u64, &sizes[..cut]);
                prop_assert!(full.check_consistent_with(&prefix));
                prop_assert!(prefix.check_consistent_with(&full));
                prop_assert!(prefix.epoch() <= full.epoch());
            }

            /// Proof bookkeeping: distinct signers accumulate, duplicates do
            /// not, and the quorum counter matches a recount.
            #[test]
            fn prop_proof_counting(signers in proptest::collection::vec(0usize..8, 0..40)) {
                let reg = KeyRegistry::bootstrap(3, 8, 1);
                let mut st = SetchainState::new();
                let es = elements(0..4);
                st.record_epoch(es.clone());
                for &s in &signers {
                    let keys = reg.lookup(ProcessId::server(s)).unwrap();
                    st.add_proof(make_epoch_proof(&keys, 1, &es));
                }
                let distinct: std::collections::HashSet<_> = signers.iter().collect();
                prop_assert_eq!(st.proof_count(1), distinct.len());
                prop_assert_eq!(st.proofs_for(1).len(), distinct.len());
                for quorum in 1..=9usize {
                    let expected = if distinct.len() >= quorum { 1 } else { 0 };
                    prop_assert_eq!(st.epochs_with_quorum(quorum), expected);
                }
            }
        }
    }
}
