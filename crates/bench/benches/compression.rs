//! Compression micro-benchmarks: what Compresschain pays per batch flush and
//! per batch delivery, for the two collector sizes of the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use setchain_compress::{compress, decompress};
use setchain_crypto::{KeyRegistry, ProcessId};
use setchain_workload::ArbitrumWorkload;

fn batch_bytes(collector: usize) -> Vec<u8> {
    let registry = KeyRegistry::bootstrap(3, 1, 1);
    let mut workload = ArbitrumWorkload::for_client(&registry, ProcessId::client(0), 7);
    let mut raw = Vec::new();
    for e in workload.take(collector) {
        raw.extend_from_slice(&e.materialize());
    }
    raw
}

fn bench_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("compresschain_batch");
    for collector in [100usize, 500] {
        let raw = batch_bytes(collector);
        let compressed = compress(&raw);
        let ratio = raw.len() as f64 / compressed.len() as f64;
        println!(
            "collector={collector}: batch {} B -> {} B (ratio {:.2}, paper reports 2.5-3.5)",
            raw.len(),
            compressed.len(),
            ratio
        );
        group.throughput(Throughput::Bytes(raw.len() as u64));
        group.bench_with_input(BenchmarkId::new("compress", collector), &raw, |b, d| {
            b.iter(|| compress(d))
        });
        group.bench_with_input(
            BenchmarkId::new("decompress", collector),
            &compressed,
            |b, d| b.iter(|| decompress(d).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_compression);
criterion_main!(benches);
