//! The segment-log frame codec.
//!
//! One frame per committed epoch, laid out as
//!
//! ```text
//! magic      u32 LE   FRAME_MAGIC
//! payload_len u32 LE  length of the payload section
//! epoch      u64 LE   1-based epoch number
//! payload             digest[64] ‖ element_count u32 ‖ proof_count u32
//!                     ‖ elements (count × ELEMENT_LEN)
//!                     ‖ proofs   (count × PROOF_LEN)
//! checksum   u64 LE   FNV-1a 64 over epoch_le ‖ payload
//! ```
//!
//! The decoder distinguishes an *incomplete* frame (fewer bytes than the
//! header promises — the torn tail a crash mid-append leaves behind) from a
//! *corrupt* one (bad magic, inconsistent lengths, checksum mismatch), so
//! recovery can truncate at the former and refuse to trust the latter. It
//! never panics on arbitrary input; that is property-tested.

use crate::{EpochRecord, ELEMENT_LEN, PROOF_LEN};

/// Frame magic: `"SEG1"` little-endian.
pub const FRAME_MAGIC: u32 = 0x3147_4553;

/// Fixed bytes before the payload: magic, payload length, epoch number.
pub const FRAME_HEADER_LEN: usize = 4 + 4 + 8;

/// Fixed bytes after the payload: the FNV-1a 64 checksum.
pub const FRAME_TRAILER_LEN: usize = 8;

/// Payload bytes before the variable sections: digest plus the two counts.
const PAYLOAD_FIXED_LEN: usize = 64 + 4 + 4;

/// Why a frame failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the frame does: a torn tail. Recovery
    /// truncates the segment here and keeps everything before it.
    Incomplete,
    /// The bytes are structurally or cryptographically wrong (bad magic,
    /// inconsistent lengths, checksum mismatch). Recovery must not trust
    /// this frame or anything after it.
    Corrupt(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Incomplete => write!(f, "incomplete frame (torn tail)"),
            FrameError::Corrupt(why) => write!(f, "corrupt frame: {why}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// FNV-1a 64-bit over the concatenation of the given byte slices.
///
/// Not cryptographic — the epoch digest and proof MACs inside the payload
/// carry the cryptographic weight; the checksum only detects torn or
/// bit-rotted frames.
pub fn fnv64(parts: &[&[u8]]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in *part {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Encodes one epoch record as a frame.
pub fn encode_frame(record: &EpochRecord) -> Vec<u8> {
    let payload_len = PAYLOAD_FIXED_LEN + record.elements.len() + record.proofs.len();
    let mut buf = Vec::with_capacity(FRAME_HEADER_LEN + payload_len + FRAME_TRAILER_LEN);
    buf.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    buf.extend_from_slice(&(payload_len as u32).to_le_bytes());
    buf.extend_from_slice(&record.epoch.to_le_bytes());
    buf.extend_from_slice(&record.digest);
    buf.extend_from_slice(&(record.element_count() as u32).to_le_bytes());
    buf.extend_from_slice(&(record.proof_count() as u32).to_le_bytes());
    buf.extend_from_slice(&record.elements);
    buf.extend_from_slice(&record.proofs);
    let checksum = fnv64(&[&buf[8..]]);
    buf.extend_from_slice(&checksum.to_le_bytes());
    buf
}

/// Decodes the frame at the start of `buf`. On success returns the record
/// and the total number of bytes the frame occupies.
pub fn decode_frame(buf: &[u8]) -> Result<(EpochRecord, usize), FrameError> {
    if buf.len() < FRAME_HEADER_LEN {
        return Err(FrameError::Incomplete);
    }
    let magic = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
    if magic != FRAME_MAGIC {
        return Err(FrameError::Corrupt("bad magic"));
    }
    let payload_len = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes")) as usize;
    if payload_len < PAYLOAD_FIXED_LEN {
        return Err(FrameError::Corrupt("payload shorter than fixed section"));
    }
    let total = FRAME_HEADER_LEN + payload_len + FRAME_TRAILER_LEN;
    if buf.len() < total {
        return Err(FrameError::Incomplete);
    }
    let epoch = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
    let payload = &buf[FRAME_HEADER_LEN..FRAME_HEADER_LEN + payload_len];
    let stored = u64::from_le_bytes(
        buf[FRAME_HEADER_LEN + payload_len..total]
            .try_into()
            .expect("8 bytes"),
    );
    if fnv64(&[&buf[8..FRAME_HEADER_LEN + payload_len]]) != stored {
        return Err(FrameError::Corrupt("checksum mismatch"));
    }
    let element_count = u32::from_le_bytes(payload[64..68].try_into().expect("4 bytes")) as usize;
    let proof_count = u32::from_le_bytes(payload[68..72].try_into().expect("4 bytes")) as usize;
    let expected = element_count
        .checked_mul(ELEMENT_LEN)
        .and_then(|e| proof_count.checked_mul(PROOF_LEN).map(|p| (e, p)));
    match expected {
        Some((e, p)) if PAYLOAD_FIXED_LEN + e + p == payload_len => {
            let mut digest = [0u8; 64];
            digest.copy_from_slice(&payload[..64]);
            let elements = payload[PAYLOAD_FIXED_LEN..PAYLOAD_FIXED_LEN + e].to_vec();
            let proofs = payload[PAYLOAD_FIXED_LEN + e..].to_vec();
            Ok((
                EpochRecord {
                    epoch,
                    digest,
                    elements,
                    proofs,
                },
                total,
            ))
        }
        _ => Err(FrameError::Corrupt("section counts disagree with length")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(epoch: u64, elements: usize, proofs: usize) -> EpochRecord {
        EpochRecord {
            epoch,
            digest: [epoch as u8; 64],
            elements: (0..elements * ELEMENT_LEN).map(|i| i as u8).collect(),
            proofs: (0..proofs * PROOF_LEN).map(|i| (i * 7) as u8).collect(),
        }
    }

    #[test]
    fn roundtrip() {
        for (e, p) in [(0usize, 0usize), (1, 1), (5, 3), (40, 4)] {
            let rec = record(9, e, p);
            let frame = encode_frame(&rec);
            let (decoded, len) = decode_frame(&frame).expect("valid frame");
            assert_eq!(len, frame.len());
            assert_eq!(decoded, rec);
            assert_eq!(decoded.element_count(), e);
            assert_eq!(decoded.proof_count(), p);
        }
    }

    #[test]
    fn decodes_the_first_of_a_concatenation() {
        let mut buf = encode_frame(&record(1, 3, 2));
        let first_len = buf.len();
        buf.extend_from_slice(&encode_frame(&record(2, 1, 2)));
        let (decoded, len) = decode_frame(&buf).expect("valid frame");
        assert_eq!(len, first_len);
        assert_eq!(decoded.epoch, 1);
        let (second, _) = decode_frame(&buf[len..]).expect("second frame");
        assert_eq!(second.epoch, 2);
    }

    #[test]
    fn truncation_is_incomplete_not_corrupt() {
        let frame = encode_frame(&record(3, 4, 2));
        for cut in 0..frame.len() {
            assert_eq!(
                decode_frame(&frame[..cut]),
                Err(FrameError::Incomplete),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bitflips_are_corrupt() {
        let frame = encode_frame(&record(3, 4, 2));
        // Flip one bit in every byte position past the length field; each
        // must surface as Corrupt (a length-field flip may legitimately
        // read as Incomplete instead — the torn-tail path covers it).
        for pos in 8..frame.len() {
            let mut bad = frame.clone();
            bad[pos] ^= 0x01;
            match decode_frame(&bad) {
                Err(FrameError::Corrupt(_)) => {}
                other => panic!("flip at {pos} gave {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut frame = encode_frame(&record(1, 0, 0));
        frame[0] ^= 0xFF;
        assert!(matches!(
            decode_frame(&frame),
            Err(FrameError::Corrupt("bad magic"))
        ));
    }

    #[test]
    fn fnv_is_stable_and_split_invariant() {
        // Reference value computed from the FNV-1a 64 definition.
        assert_eq!(fnv64(&[b""]), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(&[b"a"]), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(&[b"ab", b"c"]), fnv64(&[b"abc"]));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The decoder never panics on arbitrary bytes.
            #[test]
            fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
                let _ = decode_frame(&bytes);
            }

            /// Any valid frame survives a roundtrip with arbitrary garbage
            /// appended: the decoder recovers exactly the frame and reports
            /// its true length.
            #[test]
            fn prop_roundtrip_with_suffix(
                epoch in 1u64..1_000_000,
                elements in 0usize..20,
                proofs in 0usize..8,
                suffix in proptest::collection::vec(any::<u8>(), 0..256),
            ) {
                let rec = record(epoch, elements, proofs);
                let frame = encode_frame(&rec);
                let mut buf = frame.clone();
                buf.extend_from_slice(&suffix);
                let (decoded, len) = decode_frame(&buf).expect("valid prefix");
                prop_assert_eq!(len, frame.len());
                prop_assert_eq!(decoded, rec);
            }

            /// Corrupting any single payload/checksum byte is detected.
            #[test]
            fn prop_corruption_detected(
                elements in 0usize..10,
                pos_seed in any::<usize>(),
                flip in 1u8..=255,
            ) {
                let rec = record(7, elements, 2);
                let frame = encode_frame(&rec);
                let pos = 8 + pos_seed % (frame.len() - 8);
                let mut bad = frame.clone();
                bad[pos] ^= flip;
                prop_assert!(decode_frame(&bad).is_err());
            }
        }
    }
}
