//! The names `use proptest::prelude::*` is expected to bring in.

pub use crate::{
    any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, ProptestConfig, Strategy,
};
