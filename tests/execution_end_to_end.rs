//! End-to-end tests for the Appendix G blockchain extension: executing the
//! consolidated epochs of full simulated Setchain deployments through
//! `setchain-exec` and checking the replication guarantees (identical state
//! roots on all correct servers, value conservation, void accounting).

use setchain::Algorithm;
use setchain_exec::{ExecutedChain, ExecutionConfig, Transaction};
use setchain_simnet::SimTime;
use setchain_workload::{Deployment, Scenario};

const GENESIS_ACCOUNTS: u32 = 64;
const GENESIS_BALANCE: u128 = 10_000_000;

fn run(algorithm: Algorithm, seed: u64) -> Deployment {
    let scenario = Scenario::base(algorithm)
        .with_servers(4)
        .with_rate(400.0)
        .with_collector(40)
        .with_injection_secs(4)
        .with_max_run_secs(45)
        .with_seed(seed);
    let mut deployment = Deployment::build(&scenario);
    deployment.sim.run_until(SimTime::from_secs(45));
    deployment
}

#[test]
fn replicas_of_different_servers_compute_identical_state_roots() {
    for algorithm in [Algorithm::Compresschain, Algorithm::Hashchain] {
        let deployment = run(algorithm, 61);
        let mut replicas: Vec<ExecutedChain> = (0..4)
            .map(|i| {
                let config = if i % 2 == 0 {
                    ExecutionConfig::default()
                } else {
                    ExecutionConfig::sequential()
                };
                let mut chain =
                    ExecutedChain::for_clients(config, GENESIS_ACCOUNTS, GENESIS_BALANCE);
                chain.sync_from_setchain(deployment.server(i).state());
                chain
            })
            .collect();
        let common = replicas.iter().map(|c| c.executed_epochs()).min().unwrap();
        assert!(common > 0, "{algorithm}: at least one epoch executed");
        for epoch in 1..=common {
            let root = replicas[0].summary(epoch).unwrap().state_root;
            for replica in &replicas[1..] {
                assert_eq!(
                    replica.summary(epoch).unwrap().state_root,
                    root,
                    "{algorithm}: replicas diverged at epoch {epoch}"
                );
            }
        }
        // Value is conserved on every replica.
        for replica in &mut replicas {
            assert_eq!(
                replica.state().total_supply(),
                GENESIS_ACCOUNTS as u128 * GENESIS_BALANCE,
                "{algorithm}: supply changed"
            );
        }
    }
}

#[test]
fn every_epoch_element_gets_a_receipt() {
    let deployment = run(Algorithm::Hashchain, 62);
    let server = deployment.server(0);
    let state = server.state();
    let mut chain = ExecutedChain::for_clients(
        ExecutionConfig::default(),
        GENESIS_ACCOUNTS,
        GENESIS_BALANCE,
    );
    chain.sync_from_setchain(state);
    let epoch_elements: usize = (1..=state.epoch())
        .map(|e| state.epoch_elements(e).unwrap().len())
        .sum();
    let (applied, void) = chain.totals();
    assert_eq!(applied + void, epoch_elements);
    assert!(applied > 0, "some transfers apply");
    // Decoded transfers are unsequenced (no account nonce), so the vast
    // majority execute; voids come only from decoded self-sends.
    assert!(
        applied as f64 >= 0.8 * epoch_elements as f64,
        "{applied}/{epoch_elements} applied"
    );
    // Fees collected match the per-epoch summaries.
    let fee_total: u128 = chain.summaries().map(|s| s.fees).sum();
    assert_eq!(chain.state().fees_collected(), fee_total);
}

#[test]
fn incremental_sync_matches_one_shot_sync() {
    let deployment = run(Algorithm::Compresschain, 63);
    let server = deployment.server(1);
    let state = server.state();
    let mut one_shot = ExecutedChain::for_clients(
        ExecutionConfig::default(),
        GENESIS_ACCOUNTS,
        GENESIS_BALANCE,
    );
    one_shot.sync_from_setchain(state);
    // Incremental: execute epoch by epoch via the element API.
    let mut incremental = ExecutedChain::for_clients(
        ExecutionConfig::default(),
        GENESIS_ACCOUNTS,
        GENESIS_BALANCE,
    );
    for epoch in 1..=state.epoch() {
        let elements = state.epoch_elements(epoch).unwrap();
        let txs: Vec<Transaction> = elements.iter().map(Transaction::from_element).collect();
        incremental.execute_epoch(epoch, &txs);
    }
    assert_eq!(one_shot.executed_epochs(), incremental.executed_epochs());
    assert_eq!(one_shot.state_root(), incremental.state_root());
}

#[test]
fn executed_chain_follows_a_server_as_it_advances() {
    // Sync in the middle of the run, then again at the end: the chain picks
    // up only the new epochs and the final root matches a fresh replica.
    let scenario = Scenario::base(Algorithm::Hashchain)
        .with_servers(4)
        .with_rate(400.0)
        .with_collector(40)
        .with_injection_secs(4)
        .with_max_run_secs(45)
        .with_seed(64);
    let mut deployment = Deployment::build(&scenario);
    let mut follower = ExecutedChain::for_clients(
        ExecutionConfig::default(),
        GENESIS_ACCOUNTS,
        GENESIS_BALANCE,
    );

    deployment.sim.run_until(SimTime::from_secs(10));
    let first = follower.sync_from_setchain(deployment.server(0).state());
    deployment.sim.run_until(SimTime::from_secs(45));
    let second = follower.sync_from_setchain(deployment.server(0).state());
    assert!(first > 0 && second > 0, "both syncs made progress");

    let mut fresh = ExecutedChain::for_clients(
        ExecutionConfig::default(),
        GENESIS_ACCOUNTS,
        GENESIS_BALANCE,
    );
    fresh.sync_from_setchain(deployment.server(0).state());
    assert_eq!(follower.executed_epochs(), fresh.executed_epochs());
    assert_eq!(follower.state_root(), fresh.state_root());
}
