//! Light-client integration tests: a client adds elements through one server
//! and later verifies their inclusion by querying a *different* (single)
//! server, relying only on `f + 1` epoch-proofs.

use setchain::{verify_epoch, Algorithm, Element, ElementId, EpochProof, LightClient, SetchainMsg};
use setchain_crypto::{KeyPair, ProcessId, Signature};
use setchain_simnet::SimTime;
use setchain_workload::{Deployment, RequestClient, Scenario};

fn scenario(algorithm: Algorithm, seed: u64) -> Scenario {
    Scenario::base(algorithm)
        .with_label(format!("light client {algorithm}"))
        .with_servers(4)
        .with_rate(200.0)
        .with_collector(25)
        .with_injection_secs(4)
        .with_max_run_secs(40)
        .with_seed(seed)
}

/// Adds three client-owned elements through server 0, then queries server 2
/// for every epoch and checks that a quorum-verified epoch contains them.
fn end_to_end(algorithm: Algorithm, seed: u64) {
    let scenario = scenario(algorithm, seed);
    let mut deployment = Deployment::build(&scenario);
    let n = scenario.servers;
    let f = scenario.setchain_f();

    let me = ProcessId::client(300);
    let keys = KeyPair::derive(me, seed ^ 0xC11E47);
    deployment.registry.register(keys);
    let mut light = LightClient::new(deployment.registry.clone(), n, f);

    let my_elements: Vec<Element> = (0..3)
        .map(|i| Element::new(&keys, ElementId::new(300, i), 438, seed + i))
        .collect();
    let mut script: Vec<(SimTime, ProcessId, SetchainMsg)> = my_elements
        .iter()
        .map(|e| {
            (
                SimTime::from_millis(600),
                ProcessId::server(0),
                light.add(*e),
            )
        })
        .collect();
    // Query a different server for a summary and for the first 20 epochs.
    script.push((SimTime::from_secs(25), ProcessId::server(2), light.get()));
    for epoch in 1..=20 {
        script.push((
            SimTime::from_secs(26),
            ProcessId::server(2),
            light.get_epoch(epoch),
        ));
    }
    deployment
        .sim
        .add_process(me, Box::new(RequestClient::new(script)));
    deployment.sim.run_until(SimTime::from_secs(32));

    let client: &RequestClient = deployment.sim.process(me).unwrap();
    let mut confirmed: std::collections::HashSet<ElementId> = std::collections::HashSet::new();
    let mut verified_epochs = 0;
    let mut got_summary = false;
    for (_, from, response) in client.responses() {
        assert_eq!(
            *from,
            ProcessId::server(2),
            "responses come from the queried server"
        );
        if let SetchainMsg::GetResponse { snapshot, .. } = response {
            got_summary = true;
            assert!(snapshot.epoch > 0);
            assert!(snapshot.epochs_with_quorum > 0);
            assert!(snapshot.the_set_len >= snapshot.history_elements);
        }
        if let Some((verification, mine)) = light.verify_response(response) {
            if verification.is_verified() {
                verified_epochs += 1;
                confirmed.extend(mine);
            }
        }
    }
    assert!(got_summary, "{algorithm}: get() summary received");
    assert!(
        verified_epochs > 0,
        "{algorithm}: at least one epoch verified with f+1 proofs"
    );
    assert_eq!(
        confirmed.len(),
        3,
        "{algorithm}: all three client elements confirmed through a single server"
    );
}

#[test]
fn light_client_verifies_inclusion_on_vanilla() {
    end_to_end(Algorithm::Vanilla, 11);
}

#[test]
fn light_client_verifies_inclusion_on_compresschain() {
    end_to_end(Algorithm::Compresschain, 22);
}

#[test]
fn light_client_verifies_inclusion_on_hashchain() {
    end_to_end(Algorithm::Hashchain, 33);
}

#[test]
fn fabricated_epoch_response_from_a_byzantine_server_is_rejected() {
    // A Byzantine server cannot convince a light client of a fabricated
    // epoch: it controls at most f signatures, and forged ones do not verify.
    let scenario = scenario(Algorithm::Hashchain, 44);
    let deployment = Deployment::build(&scenario);
    let n = scenario.servers;
    let f = scenario.setchain_f();

    let attacker_keys = deployment
        .registry
        .lookup(ProcessId::server(3))
        .expect("server key");
    let victim_client = KeyPair::derive(ProcessId::client(301), 99);
    deployment.registry.register(victim_client);
    let fabricated: Vec<Element> = (0..5)
        .map(|i| Element::new(&victim_client, ElementId::new(301, i), 438, i))
        .collect();

    // One genuine signature from the attacker plus forged ones in other
    // servers' names.
    let mut proofs: Vec<EpochProof> =
        vec![setchain::make_epoch_proof(&attacker_keys, 1, &fabricated)];
    for i in 0..2 {
        let mut forged = proofs[0];
        forged.signer = ProcessId::server(i);
        forged.signature = Signature::forged(ProcessId::server(i));
        proofs.push(forged);
    }
    let verdict = verify_epoch(&deployment.registry, n, f, 1, &fabricated, &proofs);
    assert!(
        !verdict.is_verified(),
        "fabricated epoch must not verify: {verdict:?}"
    );
}
