//! Builds a complete simulated deployment for a scenario: `n` ledger
//! validators each running the configured Setchain algorithm, plus one
//! injection client per validator — mirroring the paper's setup of one Docker
//! container per machine containing one client, one collector and one
//! CometBFT server.
//!
//! Every server runs behind the variant-agnostic
//! [`SetchainApp`] trait: the deployment holds
//! `LedgerNode<Box<dyn SetchainApp>>` nodes and never dispatches on
//! [`Algorithm`](setchain::Algorithm) itself — construction goes through
//! [`setchain::AppFactory`], the single variant-dispatch site.
//!
//! Deployments are assembled with the fluent [`Deployment::builder`]:
//!
//! ```
//! use setchain::Algorithm;
//! use setchain_workload::Deployment;
//!
//! let deployment = Deployment::builder(Algorithm::Hashchain)
//!     .servers(4)
//!     .rate(200.0)
//!     .collector(25)
//!     .injection_secs(2)
//!     .max_run_secs(10)
//!     .build();
//! assert_eq!(deployment.server(0).algorithm(), Algorithm::Hashchain);
//! ```

use setchain::{
    AppFactory, ServerByzMode, ServerStats, SetchainApp, SetchainConfig, SetchainMsg,
    SetchainState, SetchainTrace, SetchainTx,
};
use setchain_crypto::{KeyRegistry, ProcessId};
use setchain_ledger::{ByzMode, LedgerConfig, LedgerNode, LedgerTrace, NetMsg};
use setchain_simnet::{FaultPlan, NetworkConfig, SimTime, Simulation, SimulationConfig};

use crate::adversary::{Adversary, AdversaryDriver};
use crate::driver::ClientDriver;
use crate::generator::ArbitrumWorkload;
use crate::scenario::Scenario;
use crate::session::ClientSession;

/// Message type of Setchain deployments.
pub type Msg = NetMsg<SetchainTx, SetchainMsg>;

/// The one concrete node type every deployment server uses, regardless of
/// algorithm: a ledger validator driving a boxed [`SetchainApp`].
pub type ServerNode = LedgerNode<Box<dyn SetchainApp>>;

/// A built deployment, ready to run.
pub struct Deployment {
    /// The simulation holding all servers and clients.
    pub sim: Simulation<Msg>,
    /// The scenario this deployment was built from.
    pub scenario: Scenario,
    /// The PKI shared by every process.
    pub registry: KeyRegistry,
    /// Setchain-level experiment trace.
    pub trace: SetchainTrace,
    /// Ledger-level trace (mempool / block stages).
    pub ledger_trace: LedgerTrace,
    /// The Setchain configuration used by every server.
    pub config: SetchainConfig,
}

/// Typed access to a server after (or during) a run, independent of which
/// algorithm it runs.
///
/// The handle wraps the deployment's one concrete node type
/// ([`ServerNode`]); every accessor goes through the
/// [`SetchainApp`] trait, so there is no per-variant dispatch here. Variant
/// surfaces stay reachable through [`ServerHandle::downcast`]:
///
/// ```no_run
/// # use setchain::{Algorithm, CompresschainApp};
/// # use setchain_workload::Deployment;
/// # let deployment = Deployment::builder(Algorithm::Compresschain).build();
/// let ratio = deployment
///     .server(0)
///     .downcast::<CompresschainApp>()
///     .expect("compresschain deployment")
///     .average_ratio();
/// ```
#[derive(Clone, Copy)]
pub struct ServerHandle<'a> {
    node: &'a ServerNode,
}

impl<'a> ServerHandle<'a> {
    /// The server's application behind the variant-agnostic trait.
    pub fn app(&self) -> &'a dyn SetchainApp {
        &**self.node.app()
    }

    /// The concrete application type, for variant-specific surfaces
    /// (e.g. `CompresschainApp::average_ratio`,
    /// `HashchainApp::known_batches`).
    pub fn downcast<T: SetchainApp>(&self) -> Option<&'a T> {
        self.app().as_any().downcast_ref::<T>()
    }

    /// The algorithm this server runs.
    pub fn algorithm(&self) -> setchain::Algorithm {
        self.app().algorithm()
    }

    /// The server's Setchain state.
    pub fn state(&self) -> &'a SetchainState {
        self.app().state()
    }

    /// The server's application counters.
    pub fn stats(&self) -> ServerStats {
        self.app().stats()
    }

    /// Per-admission-shard counters for this server, ring-ordered — a single
    /// entry for the default unsharded pipeline.
    pub fn shard_stats(&self) -> Vec<setchain::ShardStats> {
        self.app().shard_stats()
    }

    /// The algorithm-agnostic server core: admission caches, quota state,
    /// catch-up machinery — read-only inspection across all variants.
    pub fn core(&self) -> &'a setchain::ServerCore {
        self.app().core()
    }

    /// The server's per-client quota state, if quotas are enabled.
    pub fn quota(&self) -> Option<&'a setchain::QuotaState> {
        self.core().quota()
    }

    /// The underlying ledger node (consensus-side inspection).
    pub fn node(&self) -> &'a ServerNode {
        self.node
    }

    /// The ledger height the server has reached.
    pub fn height(&self) -> u64 {
        self.node.height()
    }

    /// The server's current mempool occupancy.
    pub fn mempool_len(&self) -> usize {
        self.node.mempool_len()
    }
}

/// Fluent constructor for [`Deployment`]: scenario knobs and fault injection
/// in one chain, replacing the old `Scenario::base(..).with_*` +
/// `build`/`build_with_faults` split.
///
/// ```
/// use setchain::{Algorithm, ServerByzMode};
/// use setchain_ledger::ByzMode;
/// use setchain_workload::Deployment;
///
/// let deployment = Deployment::builder(Algorithm::Hashchain)
///     .servers(7)
///     .rate(700.0)
///     .collector(50)
///     .injection_secs(2)
///     .max_run_secs(10)
///     .server_fault(4, ServerByzMode::RefuseBatchService)
///     .ledger_fault(6, ByzMode::Silent)
///     .build();
/// assert_eq!(deployment.scenario.servers, 7);
/// ```
#[derive(Clone, Debug)]
pub struct DeploymentBuilder {
    scenario: Scenario,
    server_faults: Vec<(usize, ServerByzMode)>,
    ledger_faults: Vec<(usize, ByzMode)>,
    fault_plan: Option<FaultPlan>,
}

impl DeploymentBuilder {
    /// Starts from an existing scenario (all processes correct until faults
    /// are added).
    pub fn from_scenario(scenario: Scenario) -> Self {
        DeploymentBuilder {
            scenario,
            server_faults: Vec::new(),
            ledger_faults: Vec::new(),
            fault_plan: None,
        }
    }

    /// The scenario as configured so far.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Sets the human-readable label used in reports.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.scenario.label = label.into();
        self
    }

    /// Sets the number of servers (and injection clients).
    pub fn servers(mut self, servers: usize) -> Self {
        self.scenario.servers = servers;
        self
    }

    /// Sets the total element injection rate across all clients (el/s).
    pub fn rate(mut self, rate: f64) -> Self {
        self.scenario.sending_rate = rate;
        self
    }

    /// Sets the collector size (ignored by Vanilla).
    pub fn collector(mut self, limit: usize) -> Self {
        self.scenario.collector_limit = limit;
        self
    }

    /// Sets the artificial network delay in milliseconds.
    pub fn delay_ms(mut self, ms: u64) -> Self {
        self.scenario.network_delay_ms = ms;
        self
    }

    /// Sets how long clients inject elements, in seconds.
    pub fn injection_secs(mut self, secs: u64) -> Self {
        self.scenario.injection_secs = secs;
        self
    }

    /// Sets the hard stop for the run, in seconds.
    pub fn max_run_secs(mut self, secs: u64) -> Self {
        self.scenario.max_run_secs = secs;
        self
    }

    /// Sets the ledger block size in bytes.
    pub fn block_bytes(mut self, bytes: usize) -> Self {
        self.scenario.block_bytes = bytes;
        self
    }

    /// Runs the algorithm's "light" ablation (Fig. 2 left).
    ///
    /// The light ablations assume all servers correct; for "Hashchain
    /// light" any [`server_fault`](Self::server_fault) is ignored by the
    /// built servers (see [`AppFactory::build`]).
    pub fn light(mut self) -> Self {
        self.scenario.light = true;
        self
    }

    /// Restricts counter-signing to the first `k` servers (Hashchain's
    /// 2f+1 variant).
    pub fn designated_signers(mut self, k: usize) -> Self {
        self.scenario.designated_signers = Some(k);
        self
    }

    /// Enables push-based batch dissemination (Hashchain variant).
    pub fn push_batches(mut self) -> Self {
        self.scenario.push_batches = true;
        self
    }

    /// Sets how client submissions are authenticated: per-element MACs (the
    /// default) or one MAC over the Merkle root of each injected batch
    /// ([`setchain::AuthMode::BatchRoot`]).
    pub fn auth_mode(mut self, mode: setchain::AuthMode) -> Self {
        self.scenario.auth_mode = mode;
        self
    }

    /// Partitions each server's admission pipeline and `the_set` into
    /// `shards` consistent-hash shards ([`setchain::ShardRing`]). `1` (the
    /// default) is the exact unsharded code path.
    pub fn shards(mut self, shards: usize) -> Self {
        self.scenario = self.scenario.with_shards(shards);
        self
    }

    /// Enables persistent epoch storage: every server opens a segment store
    /// under `{dir}/server-{index}`, appends each committed epoch, and on a
    /// later deployment over the same directories recovers its committed
    /// prefix locally before asking any peer. Default is in-memory (the
    /// exact pre-store pipeline).
    pub fn store(mut self, config: setchain::StoreConfig) -> Self {
        self.scenario = self.scenario.with_store(config);
        self
    }

    /// Enables per-client admission quotas on every server: a deterministic
    /// token bucket plus a pending-element cap, enforced before any
    /// authentication work, with shed clients sent a
    /// `Rejected { retry_after }` hint. Default is unmetered (the exact
    /// pre-quota pipeline — schedules are byte-identical with quotas off).
    pub fn quota(mut self, config: setchain::QuotaConfig) -> Self {
        self.scenario = self.scenario.with_quota(config);
        self
    }

    /// Adds one adversarial client running `preset` against server 0,
    /// occupying client index `servers` (the first index above the honest
    /// injection clients). Its traffic never enters the shared experiment
    /// trace, so added/committed totals keep measuring honest goodput only.
    pub fn adversary(mut self, preset: Adversary) -> Self {
        self.scenario = self.scenario.with_adversary(preset);
        self
    }

    /// Records the detailed per-element trace (needed for the latency CDF).
    pub fn detailed(mut self) -> Self {
        self.scenario.detailed_trace = true;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.scenario.seed = seed;
        self
    }

    /// Injects an application-level fault on server `index`.
    ///
    /// Ignored by "Hashchain light" servers ([`light`](Self::light)): the
    /// ablation assumes all servers correct. The faulty server is still
    /// excluded from the shared experiment trace either way.
    pub fn server_fault(mut self, index: usize, mode: ServerByzMode) -> Self {
        self.server_faults.push((index, mode));
        self
    }

    /// Injects a consensus-level fault on validator `index`.
    pub fn ledger_fault(mut self, index: usize, mode: ByzMode) -> Self {
        self.ledger_faults.push((index, mode));
        self
    }

    /// Installs a deterministic fault schedule (crashes, restarts,
    /// partitions, loss-rate changes) on the built simulation — applied at
    /// its scheduled instants during the run, before any same-instant
    /// message or timer dispatches. Chained calls merge their entries.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        match &mut self.fault_plan {
            Some(existing) => {
                for (at, event) in plan.entries() {
                    existing.push(*at, event.clone());
                }
            }
            None => self.fault_plan = Some(plan),
        }
        self
    }

    /// Sets a uniform message loss probability in `[0, 1]` active from the
    /// start of the run (degraded-network operation; loopback messages are
    /// never dropped). For losses that start mid-run, schedule
    /// [`FaultEvent::SetLossRate`](setchain_simnet::FaultEvent::SetLossRate)
    /// in a [`fault_plan`](Self::fault_plan) instead.
    pub fn loss_rate(mut self, rate: f64) -> Self {
        self.scenario.loss_rate = rate;
        self
    }

    /// Builds the deployment. This is the only construction body: the
    /// all-correct and faulty paths share it, and per-server application
    /// construction goes through one [`AppFactory`].
    pub fn build(self) -> Deployment {
        let scenario = self.scenario;
        let n = scenario.servers;
        let registry = KeyRegistry::bootstrap(scenario.seed, n, n);
        let trace = if scenario.detailed_trace {
            SetchainTrace::detailed()
        } else {
            SetchainTrace::new()
        };
        let ledger_trace = if scenario.detailed_trace {
            LedgerTrace::new()
        } else {
            LedgerTrace::disabled()
        };

        let setchain_config = scenario.setchain_config();
        let factory = AppFactory::new(
            scenario.algorithm,
            registry.clone(),
            setchain_config.clone(),
        );

        let mut ledger_config = LedgerConfig::with_validators(n);
        ledger_config.max_block_bytes = scenario.block_bytes;

        let network = NetworkConfig::lan()
            .with_extra_delay_ms(scenario.network_delay_ms)
            .with_loss_rate(scenario.loss_rate);
        let mut sim: Simulation<Msg> = Simulation::new(SimulationConfig {
            seed: scenario.seed,
            network,
        });
        if let Some(plan) = self.fault_plan {
            // Installed before the first run step, so faults due at T apply
            // ahead of any message or timer scheduled at T.
            sim.install_fault_plan(plan);
        }

        for i in 0..n {
            let id = ProcessId::server(i);
            let keys = registry.lookup(id).expect("server registered");
            let server_byz = self
                .server_faults
                .iter()
                .find(|(idx, _)| *idx == i)
                .map(|(_, m)| *m)
                .unwrap_or(ServerByzMode::Correct);
            let ledger_byz = self
                .ledger_faults
                .iter()
                .find(|(idx, _)| *idx == i)
                .map(|(_, m)| *m)
                .unwrap_or(ByzMode::Correct);
            // Byzantine servers do not get to pollute the shared experiment
            // trace: their observations are not trusted measurements.
            let server_trace = if server_byz.is_faulty() || ledger_byz.is_faulty() {
                SetchainTrace::new()
            } else {
                trace.clone()
            };
            let app = factory.build(keys, server_trace, server_byz);
            sim.add_process(
                id,
                Box::new(LedgerNode::new(
                    id,
                    ledger_config.clone(),
                    keys,
                    registry.clone(),
                    app,
                    ledger_trace.clone(),
                    ledger_byz,
                )),
            );
        }

        // One injection client per server, as in the paper's deployment.
        let injection_end = SimTime::from_secs(scenario.injection_secs);
        for i in 0..n {
            let client_id = ProcessId::client(i);
            let workload = ArbitrumWorkload::for_client(
                &registry,
                client_id,
                scenario.seed ^ (i as u64) << 17,
            );
            let driver = ClientDriver::new(
                ProcessId::server(i),
                workload,
                scenario.per_client_rate(),
                injection_end,
                trace.clone(),
            )
            .with_auth_mode(scenario.auth_mode);
            sim.add_process(client_id, Box::new(driver));
        }

        // The adversarial client, if any: one extra registered identity at
        // the first index above the injection clients, attacking server 0.
        // It shares the honest clients' tick cadence but never the shared
        // trace — attack traffic is not goodput.
        if let Some(preset) = scenario.adversary {
            let adv_id = ProcessId::client(n);
            let keys = setchain_crypto::KeyPair::derive(adv_id, scenario.seed ^ 0xAD);
            registry.register(keys);
            let driver = AdversaryDriver::new(
                preset,
                ProcessId::server(0),
                registry.clone(),
                keys,
                preset.default_rate(scenario.per_client_rate()),
                injection_end,
                scenario.seed,
            );
            sim.add_process(adv_id, Box::new(driver));
        }

        Deployment {
            sim,
            scenario,
            registry,
            trace,
            ledger_trace,
            config: setchain_config,
        }
    }

    /// Builds the deployment and runs it to completion (every added element
    /// committed, or the scenario's `max_run_secs` reached), returning the
    /// collected [`RunResult`](crate::runner::RunResult).
    pub fn run(self) -> crate::runner::RunResult {
        crate::runner::run_deployment(self.build())
    }
}

impl Deployment {
    /// Starts a fluent [`DeploymentBuilder`] from the paper's base scenario
    /// for `algorithm`.
    pub fn builder(algorithm: setchain::Algorithm) -> DeploymentBuilder {
        DeploymentBuilder::from_scenario(Scenario::base(algorithm))
    }

    /// Builds a deployment with all processes correct.
    pub fn build(scenario: &Scenario) -> Self {
        DeploymentBuilder::from_scenario(scenario.clone()).build()
    }

    /// Builds a deployment injecting application-level faults
    /// (`server_faults`) and/or consensus-level faults (`ledger_faults`),
    /// both given as `(server index, behaviour)` pairs.
    ///
    /// Thin compatibility wrapper over [`Deployment::builder`]'s
    /// [`server_fault`](DeploymentBuilder::server_fault) /
    /// [`ledger_fault`](DeploymentBuilder::ledger_fault) options.
    pub fn build_with_faults(
        scenario: &Scenario,
        server_faults: &[(usize, ServerByzMode)],
        ledger_faults: &[(usize, ByzMode)],
    ) -> Self {
        let mut builder = DeploymentBuilder::from_scenario(scenario.clone());
        builder.server_faults.extend_from_slice(server_faults);
        builder.ledger_faults.extend_from_slice(ledger_faults);
        builder.build()
    }

    /// Typed access to server `i`, independent of the algorithm it runs.
    pub fn server(&self, i: usize) -> ServerHandle<'_> {
        let node = self
            .sim
            .process::<ServerNode>(ProcessId::server(i))
            .expect("server exists");
        ServerHandle { node }
    }

    /// Opens a typed [`ClientSession`]: derives a key pair for
    /// `ProcessId::client(client_index)` from `key_seed`, registers it in the
    /// deployment's PKI, and returns the session facade.
    ///
    /// `client_index` must not collide with the per-server injection clients,
    /// which occupy indices `0..servers`.
    pub fn client_session(&mut self, client_index: usize, key_seed: u64) -> ClientSession {
        assert!(
            client_index >= self.scenario.servers,
            "client indices below the server count belong to the injection clients"
        );
        assert!(
            self.scenario.adversary.is_none() || client_index != self.scenario.servers,
            "client index {client_index} belongs to the adversarial client"
        );
        ClientSession::open(self, client_index, key_seed)
    }

    /// The adversarial client actor, if the deployment has one.
    pub fn adversary(&self) -> Option<&AdversaryDriver> {
        self.scenario.adversary?;
        self.sim
            .process::<AdversaryDriver>(ProcessId::client(self.scenario.servers))
    }

    /// Number of `Rejected` replies the honest injection clients received
    /// (each paused that client's injection until the server's retry hint
    /// elapsed). Zero whenever quotas are off or honest rates fit their
    /// buckets.
    pub fn honest_rejections(&self) -> u64 {
        (0..self.scenario.servers)
            .filter_map(|i| self.sim.process::<ClientDriver>(ProcessId::client(i)))
            .map(|d| d.rejections())
            .sum()
    }

    /// Number of elements sent by all injection clients so far.
    pub fn elements_sent(&self) -> u64 {
        (0..self.scenario.servers)
            .filter_map(|i| self.sim.process::<ClientDriver>(ProcessId::client(i)))
            .map(|d| d.sent())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setchain::{Algorithm, HashchainApp, VanillaApp};

    #[test]
    fn builds_all_three_algorithms() {
        for algorithm in Algorithm::ALL {
            let deployment = Deployment::builder(algorithm)
                .servers(4)
                .rate(200.0)
                .injection_secs(2)
                .max_run_secs(10)
                .build();
            assert_eq!(deployment.sim.process_ids().len(), 8); // 4 servers + 4 clients
            assert_eq!(deployment.server(0).height(), 1);
            assert_eq!(deployment.server(0).state().epoch(), 0);
            assert_eq!(deployment.server(0).algorithm(), algorithm);
            assert_eq!(deployment.elements_sent(), 0);
        }
    }

    #[test]
    fn small_end_to_end_run_commits_elements() {
        let mut deployment = Deployment::builder(Algorithm::Hashchain)
            .servers(4)
            .rate(200.0)
            .collector(50)
            .injection_secs(3)
            .max_run_secs(30)
            .seed(5)
            .build();
        deployment.sim.run_until(SimTime::from_secs(20));
        let added = deployment.trace.added_count();
        assert!(added > 400, "clients injected elements (added={added})");
        let committed = deployment.trace.committed_count_by(SimTime::from_secs(20));
        assert!(
            committed as f64 >= 0.9 * added as f64,
            "most elements commit: {committed}/{added}"
        );
        // Servers agree on the common epoch prefix.
        let s0 = deployment.server(0);
        let s1 = deployment.server(1);
        assert!(s0.state().epoch() > 0);
        assert!(s0.state().check_consistent_with(s1.state()));
        assert!(s0.state().check_unique_epoch());
        assert!(s0.state().check_consistent_sets());
    }

    #[test]
    fn sharded_deployment_commits_the_same_set_and_rolls_up_shard_stats() {
        let run = |shards: usize| {
            let mut deployment = Deployment::builder(Algorithm::Hashchain)
                .servers(4)
                .rate(200.0)
                .collector(50)
                .injection_secs(2)
                .max_run_secs(20)
                .seed(5)
                .shards(shards)
                .build();
            deployment.sim.run_until(SimTime::from_secs(20));
            deployment
        };
        let oracle = run(1);
        let sharded = run(4);
        let (s0, o0) = (sharded.server(0), oracle.server(0));
        assert_eq!(s0.state().epoch(), o0.state().epoch());
        for epoch in 1..=s0.state().epoch() {
            assert_eq!(
                s0.state().epoch_digest(epoch),
                o0.state().epoch_digest(epoch)
            );
        }
        // Per-shard counters roll up to the server's aggregate view.
        let shard_stats = s0.shard_stats();
        assert_eq!(shard_stats.len(), 4);
        assert_eq!(o0.shard_stats().len(), 1);
        let sharded_len: u64 = shard_stats.iter().map(|s| s.set_len).sum();
        let oracle_len: u64 = o0.shard_stats().iter().map(|s| s.set_len).sum();
        assert!(sharded_len > 0);
        assert_eq!(sharded_len, oracle_len);
        for (shard, stats) in shard_stats.iter().enumerate() {
            assert_eq!(stats.shard, shard);
        }
    }

    #[test]
    fn handles_downcast_to_the_concrete_app() {
        let deployment = Deployment::builder(Algorithm::Hashchain)
            .servers(4)
            .injection_secs(1)
            .max_run_secs(5)
            .build();
        let handle = deployment.server(0);
        assert!(handle.downcast::<HashchainApp>().is_some());
        assert!(handle.downcast::<VanillaApp>().is_none());
        assert_eq!(handle.node().height(), 1);
        assert_eq!(handle.mempool_len(), 0);
    }

    #[test]
    fn builder_and_legacy_constructors_agree() {
        let scenario = Scenario::base(Algorithm::Compresschain)
            .with_servers(4)
            .with_rate(300.0)
            .with_injection_secs(2)
            .with_max_run_secs(12)
            .with_seed(9);
        let mut a = Deployment::build(&scenario);
        let mut b = DeploymentBuilder::from_scenario(scenario).build();
        a.sim.run_until(SimTime::from_secs(12));
        b.sim.run_until(SimTime::from_secs(12));
        assert_eq!(a.trace.added_count(), b.trace.added_count());
        assert_eq!(
            a.server(0).state().epoch(),
            b.server(0).state().epoch(),
            "same construction path, same deterministic run"
        );
    }

    #[test]
    #[should_panic(expected = "injection clients")]
    fn session_indices_may_not_collide_with_injection_clients() {
        let mut deployment = Deployment::builder(Algorithm::Vanilla)
            .servers(4)
            .injection_secs(1)
            .max_run_secs(5)
            .build();
        let _ = deployment.client_session(3, 1);
    }
}
