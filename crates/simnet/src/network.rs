//! Network model: propagation delay, jitter, added latency, loss,
//! partitions and per-sender link bandwidth.
//!
//! The paper's evaluation platform is a LAN cluster (sub-millisecond RTT,
//! 1 Gbps links between Docker hosts) with an optional artificial
//! `network_delay` of 30 ms or 100 ms added to every message to emulate a
//! WAN (Fig. 3c). [`NetworkConfig`] captures exactly those knobs plus fault
//! injection (loss, partitions) used by the robustness tests.

use rand::Rng;
use serde::{Deserialize, Serialize};
use setchain_crypto::ProcessId;
use std::collections::{HashMap, HashSet};

use crate::time::{SimDuration, SimTime};

/// Configuration of the simulated network.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Base one-way propagation delay between any two distinct processes.
    pub base_delay: SimDuration,
    /// Uniform random jitter added on top of the base delay, `[0, jitter]`.
    pub jitter: SimDuration,
    /// Artificial latency added to every message (the paper's
    /// `network_delay` parameter: 0, 30 or 100 ms).
    pub extra_delay: SimDuration,
    /// Link bandwidth in bytes per second used to model transmission time of
    /// large messages (batches). `None` disables bandwidth modelling.
    pub bandwidth_bytes_per_sec: Option<u64>,
    /// Probability in `[0, 1]` that a message between distinct processes is
    /// silently dropped. Loopback messages are never dropped.
    pub loss_rate: f64,
    /// Delay applied to messages a process sends to itself.
    pub loopback_delay: SimDuration,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig::lan()
    }
}

impl NetworkConfig {
    /// LAN profile matching the paper's cluster: 0.25 ms one-way delay,
    /// 0.1 ms jitter, 1 Gbps links, no loss.
    pub fn lan() -> Self {
        NetworkConfig {
            base_delay: SimDuration::from_micros(250),
            jitter: SimDuration::from_micros(100),
            extra_delay: SimDuration::ZERO,
            bandwidth_bytes_per_sec: Some(125_000_000), // 1 Gbps
            loss_rate: 0.0,
            loopback_delay: SimDuration::from_micros(10),
        }
    }

    /// LAN profile plus the paper's artificial `network_delay` (in ms).
    pub fn with_extra_delay_ms(mut self, ms: u64) -> Self {
        self.extra_delay = SimDuration::from_millis(ms);
        self
    }

    /// Sets the message loss probability.
    pub fn with_loss_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "loss rate must be in [0,1]");
        self.loss_rate = rate;
        self
    }

    /// Disables bandwidth modelling (infinite-capacity links).
    pub fn without_bandwidth_model(mut self) -> Self {
        self.bandwidth_bytes_per_sec = None;
        self
    }
}

/// A (symmetric) network partition: messages between the two sides are
/// dropped while the partition is active.
#[derive(Clone, Debug, Default)]
pub struct Partition {
    side_a: HashSet<ProcessId>,
    side_b: HashSet<ProcessId>,
}

impl Partition {
    /// Builds a partition separating `side_a` from `side_b`.
    pub fn between(
        side_a: impl IntoIterator<Item = ProcessId>,
        side_b: impl IntoIterator<Item = ProcessId>,
    ) -> Self {
        Partition {
            side_a: side_a.into_iter().collect(),
            side_b: side_b.into_iter().collect(),
        }
    }

    /// True if the partition separates `from` and `to`.
    pub fn blocks(&self, from: ProcessId, to: ProcessId) -> bool {
        (self.side_a.contains(&from) && self.side_b.contains(&to))
            || (self.side_b.contains(&from) && self.side_a.contains(&to))
    }
}

/// The network state owned by the simulation.
#[derive(Clone, Debug)]
pub struct Network {
    config: NetworkConfig,
    partitions: Vec<Partition>,
    /// Earliest time each sender's outgoing link is free again (models
    /// serialisation of large messages onto the wire).
    link_free_at: HashMap<ProcessId, SimTime>,
    /// Count of messages dropped by loss or partitions, for reporting.
    dropped: u64,
    /// Messages dropped by random loss specifically.
    dropped_loss: u64,
    /// Messages dropped by an active partition specifically.
    dropped_partition: u64,
    /// Count of messages delivered.
    delivered: u64,
    /// Total bytes handed to the network.
    bytes_sent: u64,
}

impl Network {
    /// Creates a network with the given configuration.
    pub fn new(config: NetworkConfig) -> Self {
        Network {
            config,
            partitions: Vec::new(),
            link_free_at: HashMap::new(),
            dropped: 0,
            dropped_loss: 0,
            dropped_partition: 0,
            delivered: 0,
            bytes_sent: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Installs a partition. Returns its index for later healing.
    pub fn add_partition(&mut self, partition: Partition) -> usize {
        self.partitions.push(partition);
        self.partitions.len() - 1
    }

    /// Removes all partitions.
    pub fn heal_all_partitions(&mut self) {
        self.partitions.clear();
    }

    /// Changes the loss rate mid-run (fault injection). Panics unless
    /// `rate` is in `[0, 1]`.
    pub fn set_loss_rate(&mut self, rate: f64) {
        assert!((0.0..=1.0).contains(&rate), "loss rate must be in [0,1]");
        self.config.loss_rate = rate;
    }

    /// Number of messages dropped so far (loss + partitions).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Messages dropped by random loss.
    pub fn dropped_loss(&self) -> u64 {
        self.dropped_loss
    }

    /// Messages dropped by an active partition.
    pub fn dropped_partition(&self) -> u64 {
        self.dropped_partition
    }

    /// Number of messages accepted for delivery so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Total payload bytes accepted for delivery.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Computes the delivery time of a message of `size_bytes` sent by
    /// `from` to `to` at time `now`, or `None` if the message is dropped.
    pub fn delivery_time<R: Rng>(
        &mut self,
        rng: &mut R,
        now: SimTime,
        from: ProcessId,
        to: ProcessId,
        size_bytes: usize,
    ) -> Option<SimTime> {
        if from == to {
            self.delivered += 1;
            self.bytes_sent += size_bytes as u64;
            return Some(now + self.config.loopback_delay);
        }
        if self.partitions.iter().any(|p| p.blocks(from, to)) {
            self.dropped += 1;
            self.dropped_partition += 1;
            return None;
        }
        if self.config.loss_rate > 0.0 && rng.gen::<f64>() < self.config.loss_rate {
            self.dropped += 1;
            self.dropped_loss += 1;
            return None;
        }

        // Transmission: the sender's link serialises messages one at a time.
        let departure = match self.config.bandwidth_bytes_per_sec {
            Some(bw) if bw > 0 => {
                let free_at = *self.link_free_at.get(&from).unwrap_or(&SimTime::ZERO);
                let start = if free_at > now { free_at } else { now };
                let tx_micros = (size_bytes as u64).saturating_mul(1_000_000) / bw;
                let end = start + SimDuration::from_micros(tx_micros);
                self.link_free_at.insert(from, end);
                end
            }
            _ => now,
        };

        let jitter = if self.config.jitter.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros(rng.gen_range(0..=self.config.jitter.as_micros()))
        };
        let arrival = departure + self.config.base_delay + jitter + self.config.extra_delay;
        self.delivered += 1;
        self.bytes_sent += size_bytes as u64;
        Some(arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ids() -> (ProcessId, ProcessId, ProcessId) {
        (
            ProcessId::server(0),
            ProcessId::server(1),
            ProcessId::server(2),
        )
    }

    #[test]
    fn lan_profile_delivers_quickly() {
        let (a, b, _) = ids();
        let mut net = Network::new(NetworkConfig::lan());
        let mut rng = StdRng::seed_from_u64(1);
        let t = net
            .delivery_time(&mut rng, SimTime::ZERO, a, b, 100)
            .unwrap();
        assert!(t.as_micros() >= 250 && t.as_micros() < 2_000, "{t:?}");
        assert_eq!(net.delivered(), 1);
        assert_eq!(net.bytes_sent(), 100);
    }

    #[test]
    fn extra_delay_shifts_arrival() {
        let (a, b, _) = ids();
        let mut rng = StdRng::seed_from_u64(1);
        let mut fast = Network::new(NetworkConfig::lan());
        let cfgd = NetworkConfig::lan().with_extra_delay_ms(100);
        let mut slow = Network::new(cfgd);
        let t_fast = fast
            .delivery_time(&mut rng, SimTime::ZERO, a, b, 10)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let t_slow = slow
            .delivery_time(&mut rng, SimTime::ZERO, a, b, 10)
            .unwrap();
        assert_eq!((t_slow - t_fast).as_millis(), 100);
    }

    #[test]
    fn loopback_is_fast_and_lossless() {
        let (a, _, _) = ids();
        let cfg = NetworkConfig::lan().with_loss_rate(1.0);
        let mut net = Network::new(cfg);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            assert!(net
                .delivery_time(&mut rng, SimTime::ZERO, a, a, 10)
                .is_some());
        }
        assert_eq!(net.dropped(), 0);
    }

    #[test]
    fn full_loss_drops_everything_between_peers() {
        let (a, b, _) = ids();
        let mut net = Network::new(NetworkConfig::lan().with_loss_rate(1.0));
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            assert!(net
                .delivery_time(&mut rng, SimTime::ZERO, a, b, 10)
                .is_none());
        }
        assert_eq!(net.dropped(), 10);
        assert_eq!(net.dropped_loss(), 10);
        assert_eq!(net.dropped_partition(), 0);
    }

    #[test]
    fn loss_rate_can_be_changed_mid_run() {
        let (a, b, _) = ids();
        let mut net = Network::new(NetworkConfig::lan());
        let mut rng = StdRng::seed_from_u64(9);
        assert!(net
            .delivery_time(&mut rng, SimTime::ZERO, a, b, 10)
            .is_some());
        net.set_loss_rate(1.0);
        assert!(net
            .delivery_time(&mut rng, SimTime::ZERO, a, b, 10)
            .is_none());
        net.set_loss_rate(0.0);
        assert!(net
            .delivery_time(&mut rng, SimTime::ZERO, a, b, 10)
            .is_some());
        assert_eq!(net.dropped_loss(), 1);
    }

    #[test]
    fn partition_blocks_both_directions_until_healed() {
        let (a, b, c) = ids();
        let mut net = Network::new(NetworkConfig::lan());
        let mut rng = StdRng::seed_from_u64(4);
        net.add_partition(Partition::between([a], [b]));
        assert!(net
            .delivery_time(&mut rng, SimTime::ZERO, a, b, 10)
            .is_none());
        assert!(net
            .delivery_time(&mut rng, SimTime::ZERO, b, a, 10)
            .is_none());
        assert_eq!(net.dropped_partition(), 2);
        assert_eq!(net.dropped_loss(), 0);
        // Unrelated pair unaffected.
        assert!(net
            .delivery_time(&mut rng, SimTime::ZERO, a, c, 10)
            .is_some());
        net.heal_all_partitions();
        assert!(net
            .delivery_time(&mut rng, SimTime::ZERO, a, b, 10)
            .is_some());
    }

    #[test]
    fn bandwidth_serialises_large_messages() {
        let (a, b, _) = ids();
        let mut cfg = NetworkConfig::lan();
        cfg.jitter = SimDuration::ZERO;
        cfg.bandwidth_bytes_per_sec = Some(1_000_000); // 1 MB/s
        let mut net = Network::new(cfg);
        let mut rng = StdRng::seed_from_u64(5);
        // Two 1 MB messages sent back to back: the second waits for the first
        // to finish transmitting.
        let t1 = net
            .delivery_time(&mut rng, SimTime::ZERO, a, b, 1_000_000)
            .unwrap();
        let t2 = net
            .delivery_time(&mut rng, SimTime::ZERO, a, b, 1_000_000)
            .unwrap();
        assert!(t1.as_secs_f64() > 0.99 && t1.as_secs_f64() < 1.1, "{t1:?}");
        assert!(t2.as_secs_f64() > 1.99 && t2.as_secs_f64() < 2.1, "{t2:?}");
        // A different sender's link is independent.
        let t3 = net
            .delivery_time(&mut rng, SimTime::ZERO, b, a, 1_000_000)
            .unwrap();
        assert!(t3.as_secs_f64() < 1.1, "{t3:?}");
    }

    #[test]
    fn without_bandwidth_model_ignores_size() {
        let (a, b, _) = ids();
        let mut cfg = NetworkConfig::lan().without_bandwidth_model();
        cfg.jitter = SimDuration::ZERO;
        let mut net = Network::new(cfg);
        let mut rng = StdRng::seed_from_u64(6);
        let t_small = net.delivery_time(&mut rng, SimTime::ZERO, a, b, 1).unwrap();
        let t_big = net
            .delivery_time(&mut rng, SimTime::ZERO, a, b, 100_000_000)
            .unwrap();
        assert_eq!(t_small, t_big);
    }

    #[test]
    #[should_panic(expected = "loss rate")]
    fn invalid_loss_rate_panics() {
        let _ = NetworkConfig::lan().with_loss_rate(1.5);
    }
}
