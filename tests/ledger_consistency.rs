//! Integration tests for the block-based-ledger properties the Setchain
//! algorithms rely on (Section 2, Properties 9-11), observed through full
//! Setchain deployments, plus end-to-end latency/finality checks.

use setchain::Algorithm;
use setchain_simnet::SimTime;
use setchain_workload::{
    metrics::StageLatencies, run_scenario, Deployment, Efficiency, Scenario, ThroughputSeries,
};

#[test]
fn ledger_notifies_all_servers_consistently() {
    // Property 10: all correct servers see the same blocks in the same order.
    // Observed through the Setchain state: identical epoch sequences (tested
    // in setchain_properties.rs) plus identical ledger heights here.
    for algorithm in Algorithm::ALL {
        let scenario = Scenario::base(algorithm)
            .with_servers(4)
            .with_rate(200.0)
            .with_collector(25)
            .with_injection_secs(4)
            .with_max_run_secs(30)
            .with_seed(50);
        let mut deployment = Deployment::build(&scenario);
        deployment.sim.run_until(SimTime::from_secs(30));
        let heights: Vec<u64> = (0..4).map(|i| deployment.server(i).height()).collect();
        let min = *heights.iter().min().unwrap();
        let max = *heights.iter().max().unwrap();
        assert!(
            min > 5,
            "{algorithm}: blocks were produced (heights {heights:?})"
        );
        assert!(
            max - min <= 1,
            "{algorithm}: correct servers stay within one height of each other ({heights:?})"
        );
    }
}

#[test]
fn ledger_add_eventually_notifies_and_commits() {
    // Property 9 end-to-end: elements appended by correct servers end up in
    // blocks and the epochs commit.
    let scenario = Scenario::base(Algorithm::Compresschain)
        .with_servers(4)
        .with_rate(300.0)
        .with_collector(30)
        .with_injection_secs(4)
        .with_max_run_secs(60)
        .with_seed(51);
    let result = run_scenario(&scenario);
    assert!(result.added > 1_000);
    assert!(
        result.final_efficiency() > 0.95,
        "eff={}",
        result.final_efficiency()
    );
    assert!(result.all_committed_at.is_some());
}

#[test]
fn commit_latency_is_a_few_seconds_at_low_rate() {
    // Fig. 4's headline: at a non-saturating rate, Compresschain and
    // Hashchain reach finality (f+1 epoch-proofs) within a few seconds.
    for algorithm in [Algorithm::Compresschain, Algorithm::Hashchain] {
        let scenario = Scenario::base(algorithm)
            .with_servers(4)
            .with_rate(500.0)
            .with_collector(100)
            .with_injection_secs(6)
            .with_max_run_secs(60)
            .with_seed(52)
            .detailed();
        let result = run_scenario(&scenario);
        let stages = StageLatencies::compute(&result.trace, &result.ledger_trace, 1, 4);
        let median = stages
            .quantile(|s| s.committed, 0.5)
            .expect("median commit latency");
        let p90 = stages
            .quantile(|s| s.committed, 0.9)
            .expect("p90 commit latency");
        assert!(
            median < 8.0,
            "{algorithm}: median commit latency {median:.1}s unexpectedly high"
        );
        assert!(p90 < 15.0, "{algorithm}: p90 commit latency {p90:.1}s");
        // Stage ordering: mempool <= ledger <= committed.
        let mempool = stages.quantile(|s| s.first_mempool, 0.5).unwrap();
        let ledger = stages.quantile(|s| s.ledger, 0.5).unwrap();
        assert!(mempool <= ledger && ledger <= median);
    }
}

#[test]
fn throughput_ordering_matches_the_paper() {
    // The headline qualitative result: at a rate that saturates Vanilla and
    // Compresschain, committed throughput orders Hashchain > Compresschain >
    // Vanilla, and Hashchain keeps up with the sending rate.
    let rate = 3_000.0;
    let injection = 8u64;
    // Committed throughput over a steady-state window that excludes the first
    // few seconds, so the commit-pipeline fill (the paper's sub-4-second
    // finality latency) does not dominate the short test window the way it
    // cannot dominate the paper's 50-second measurements.
    let sustained = |result: &setchain_workload::RunResult| {
        let from = SimTime::from_secs(4);
        let to = SimTime::from_secs(injection + 4);
        let window = (injection + 4 - 4) as f64;
        (result.trace.committed_count_by(to) - result.trace.committed_count_by(from)) as f64
            / window
    };
    let mut measured = Vec::new();
    for algorithm in Algorithm::ALL {
        let scenario = Scenario::base(algorithm)
            .with_servers(4)
            .with_rate(rate)
            .with_collector(100)
            .with_injection_secs(injection)
            .with_max_run_secs(40)
            .with_seed(53);
        let result = run_scenario(&scenario);
        measured.push((
            algorithm,
            result.average_throughput(injection),
            sustained(&result),
        ));
    }
    let get = |a: Algorithm| *measured.iter().find(|(x, _, _)| *x == a).unwrap();
    let (_, vanilla, vanilla_sustained) = get(Algorithm::Vanilla);
    let (_, compress, _) = get(Algorithm::Compresschain);
    let (_, hash, hash_sustained) = get(Algorithm::Hashchain);
    assert!(
        hash > compress && compress > vanilla,
        "ordering violated: vanilla={vanilla:.0} compress={compress:.0} hash={hash:.0}"
    );
    assert!(
        hash_sustained > 0.7 * rate,
        "Hashchain should keep up with {rate} el/s (sustained {hash_sustained:.0})"
    );
    assert!(
        vanilla_sustained < 0.5 * rate,
        "Vanilla should saturate well below {rate} el/s (sustained {vanilla_sustained:.0})"
    );
}

#[test]
fn efficiency_improves_when_collector_grows() {
    // Fig. 3's qualitative effect for Hashchain under stress: a larger
    // collector (fewer, bigger batches) does not hurt and typically helps.
    let run_with_collector = |c: usize| {
        let scenario = Scenario::base(Algorithm::Compresschain)
            .with_servers(4)
            .with_rate(2_500.0)
            .with_collector(c)
            .with_injection_secs(8)
            .with_max_run_secs(24)
            .with_seed(54);
        let result = run_scenario(&scenario);
        (
            Efficiency::compute(&result.trace),
            result.trace.committed_count_by(SimTime::from_secs(24)) as f64
                / result.added.max(1) as f64,
        )
    };
    let (_, small) = run_with_collector(100);
    let (_, large) = run_with_collector(500);
    assert!(
        large >= small * 0.9,
        "larger collector should not collapse efficiency (c=100: {small:.2}, c=500: {large:.2})"
    );
}

#[test]
fn network_delay_reduces_but_does_not_break_efficiency() {
    // Fig. 3c: added WAN-like delay lowers efficiency but the system still
    // commits everything given time.
    let run_with_delay = |ms: u64| {
        let scenario = Scenario::base(Algorithm::Hashchain)
            .with_servers(4)
            .with_rate(1_000.0)
            .with_collector(100)
            .with_delay_ms(ms)
            .with_injection_secs(6)
            .with_max_run_secs(60)
            .with_seed(55);
        run_scenario(&scenario)
    };
    let fast = run_with_delay(0);
    let slow = run_with_delay(100);
    assert!(fast.final_efficiency() > 0.95);
    assert!(
        slow.final_efficiency() > 0.9,
        "eff={}",
        slow.final_efficiency()
    );
    // Commits finish no earlier with the extra delay.
    let fast_done = fast.all_committed_at.expect("fast run finished");
    let slow_done = slow.all_committed_at.expect("slow run finished");
    assert!(slow_done >= fast_done);
}

#[test]
fn throughput_series_is_monotone_in_cumulative_commits() {
    let scenario = Scenario::base(Algorithm::Hashchain)
        .with_servers(4)
        .with_rate(500.0)
        .with_collector(50)
        .with_injection_secs(5)
        .with_max_run_secs(30)
        .with_seed(56);
    let result = run_scenario(&scenario);
    let series = ThroughputSeries::compute(&result.trace, 9, result.finished_at);
    // The series integrates (approximately) to the number of committed
    // elements: cumulative commits computed two ways must agree.
    let commits_from_trace = result.committed as f64;
    let per_second: f64 = {
        // The unsmoothed sum of commits equals the total.
        let records = result.trace.element_records();
        records.iter().filter(|r| r.committed_at.is_some()).count() as f64
    };
    assert_eq!(commits_from_trace, per_second);
    assert!(series.peak() > 0.0);
}
