//! Byzantine tolerance demo: a Hashchain deployment where one server refuses
//! to serve batch contents (the attack the `f + 1` consolidation rule defends
//! against), another forges epoch-proofs, and one ledger validator is silent.
//! The correct servers still agree, elements still commit, and a light client
//! still rejects the forged proofs.
//!
//! ```sh
//! cargo run --release -p setchain-workload --example byzantine_tolerance
//! ```

use setchain::{verify_epoch, Algorithm, ServerByzMode};
use setchain_ledger::ByzMode;
use setchain_simnet::SimTime;
use setchain_workload::{Deployment, Scenario};

fn main() {
    // 7 servers: ledger tolerates f_ledger = 2, Setchain uses f = 3.
    let scenario = Scenario::base(Algorithm::Hashchain)
        .with_label("byzantine-tolerance")
        .with_servers(7)
        .with_rate(700.0)
        .with_collector(50)
        .with_injection_secs(8)
        .with_max_run_secs(60)
        .with_seed(31337);
    let f = scenario.setchain_f();

    println!("Fault injection:");
    println!("  server 4: refuses Request_batch (application-level fault)");
    println!("  server 5: forges its epoch-proof signatures");
    println!("  server 6: silent ledger validator (crash fault)");
    let mut deployment = Deployment::build_with_faults(
        &scenario,
        &[
            (4, ServerByzMode::RefuseBatchService),
            (5, ServerByzMode::ForgeProofs),
        ],
        &[(6, ByzMode::Silent)],
    );

    deployment.sim.run_until(SimTime::from_secs(50));

    let added = deployment.trace.added_count();
    let committed = deployment.trace.committed_count_by(SimTime::from_secs(50));
    println!(
        "\nElements added: {added}, committed with >= f+1 = {} proofs: {committed}",
        f + 1
    );

    // The correct servers (0-3) agree on every common epoch.
    let reference = deployment.server(0);
    for i in 1..4 {
        let other = deployment.server(i);
        println!(
            "server 0 vs server {i}: consistent epochs = {}, unique epochs = {}",
            reference.state().check_consistent_with(other.state()),
            other.state().check_unique_epoch()
        );
    }

    // The refusing server forced extra batch requests / retries.
    let stats0 = deployment.server(0).stats();
    println!(
        "server 0 hash-reversal: {} requests sent, {} failed/retried, {} served",
        stats0.batch_requests_sent, stats0.batch_requests_failed, stats0.batch_requests_served
    );

    // The forged proofs of server 5 are rejected: check that an epoch's proof
    // set never counts it, and that client-side verification agrees.
    let state = reference.state();
    let mut forged_counted = 0;
    for epoch in 1..=state.epoch() {
        if state
            .proofs_for(epoch)
            .iter()
            .any(|p| p.signer == setchain_crypto::ProcessId::server(5))
        {
            forged_counted += 1;
        }
    }
    println!("epochs where server 5's forged proof was accepted by server 0: {forged_counted}");

    if let Some(elements) = state.epoch_elements(1) {
        let verdict = verify_epoch(
            &deployment.registry,
            scenario.servers,
            f,
            1,
            elements,
            state.proofs_for(1),
        );
        println!("light-client verification of epoch 1: {verdict:?}");
    }
}
