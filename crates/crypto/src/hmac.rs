//! HMAC (RFC 2104) over the in-repo SHA-2 hashers.
//!
//! HMAC is used by the signature substitute ([`crate::signature`]) and is
//! also exposed directly for tests and for deriving deterministic per-process
//! key material in the simulator.

use crate::hash::{Digest256, Digest512, Sha256, Sha512};
use crate::keys::ProcessId;

const BLOCK_256: usize = 64;
const BLOCK_512: usize = 128;

/// Domain-separation tag for batch-root MACs: a root MAC must never verify
/// as an element authenticator or an epoch signature under the same key.
const BATCH_ROOT_DOMAIN: &[u8; 19] = b"setchain-batch-root";

/// A precomputed HMAC-SHA-256 key schedule.
///
/// HMAC spends two of its four-ish compression calls absorbing the padded
/// key (`ipad` into the inner hash, `opad` into the outer). Those two
/// absorptions depend only on the key, so verifying many messages under the
/// same key — a collector batch signed by one client, a vote stream from one
/// validator — can pay them once: `HmacSha256Key::new` captures the
/// post-pad hasher states and [`mac`](Self::mac) clones them per message.
#[derive(Clone)]
pub struct HmacSha256Key {
    inner: Sha256,
    outer: Sha256,
}

impl HmacSha256Key {
    /// Precomputes the key schedule for `key`.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_256];
        if key.len() > BLOCK_256 {
            let d = {
                let mut h = Sha256::new();
                h.update(key);
                h.finalize()
            };
            key_block[..32].copy_from_slice(d.as_bytes());
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_256];
        let mut opad = [0u8; BLOCK_256];
        for i in 0..BLOCK_256 {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        HmacSha256Key { inner, outer }
    }

    /// HMAC-SHA-256 of `message` under this key.
    pub fn mac(&self, message: &[u8]) -> Digest256 {
        let mut h = self.inner.clone();
        h.update(message);
        let digest = h.finalize();
        let mut o = self.outer.clone();
        o.update(digest.as_bytes());
        o.finalize()
    }
}

/// A precomputed HMAC-SHA-512 key schedule (see [`HmacSha256Key`]).
#[derive(Clone)]
pub struct HmacSha512Key {
    inner: Sha512,
    outer: Sha512,
}

impl HmacSha512Key {
    /// Precomputes the key schedule for `key`.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_512];
        if key.len() > BLOCK_512 {
            let d = {
                let mut h = Sha512::new();
                h.update(key);
                h.finalize()
            };
            key_block[..64].copy_from_slice(d.as_bytes());
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_512];
        let mut opad = [0u8; BLOCK_512];
        for i in 0..BLOCK_512 {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }
        let mut inner = Sha512::new();
        inner.update(&ipad);
        let mut outer = Sha512::new();
        outer.update(&opad);
        HmacSha512Key { inner, outer }
    }

    /// HMAC-SHA-512 of `message` under this key.
    pub fn mac(&self, message: &[u8]) -> Digest512 {
        let mut h = self.inner.clone();
        h.update(message);
        let digest = h.finalize();
        let mut o = self.outer.clone();
        o.update(digest.as_bytes());
        o.finalize()
    }
}

/// The message a batch-root MAC binds: domain tag, owning process, element
/// count and the Merkle root itself. The count is bound so a truncated or
/// extended batch cannot reuse a root MAC even if its root collided.
fn batch_root_message(owner: ProcessId, count: u64, root: &Digest256) -> [u8; 67] {
    let mut msg = [0u8; 67];
    msg[..19].copy_from_slice(BATCH_ROOT_DOMAIN);
    msg[19..27].copy_from_slice(&owner.0.to_le_bytes());
    msg[27..35].copy_from_slice(&count.to_le_bytes());
    msg[35..67].copy_from_slice(root.as_bytes());
    msg
}

/// Compact authenticator over a whole Merkle-batched submission: the first
/// 8 bytes of `HMAC-SHA-256(key, domain ‖ owner ‖ count ‖ root)`, the
/// batch-level twin of the per-element 8-byte authenticator. One MAC covers
/// every element under `root`; membership does the per-element work.
pub fn mac_batch_root(key: &HmacSha256Key, owner: ProcessId, count: u64, root: &Digest256) -> u64 {
    let mac = key.mac(&batch_root_message(owner, count, root));
    u64::from_le_bytes(mac.0[..8].try_into().expect("8 bytes"))
}

/// Verifies a [`mac_batch_root`] authenticator under `key`.
pub fn verify_batch_root(
    key: &HmacSha256Key,
    owner: ProcessId,
    count: u64,
    root: &Digest256,
    mac: u64,
) -> bool {
    mac_batch_root(key, owner, count, root) == mac
}

/// HMAC-SHA-256 of `message` under `key`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest256 {
    HmacSha256Key::new(key).mac(message)
}

/// HMAC-SHA-512 of `message` under `key`.
pub fn hmac_sha512(key: &[u8], message: &[u8]) -> Digest512 {
    HmacSha512Key::new(key).mac(message)
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let msg = b"Hi There";
        assert_eq!(
            hmac_sha256(&key, msg).to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        assert_eq!(
            hmac_sha512(&key, msg).to_hex(),
            "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde\
             daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854"
                .replace(char::is_whitespace, "")
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let key = b"Jefe";
        let msg = b"what do ya want for nothing?";
        assert_eq!(
            hmac_sha256(key, msg).to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        assert_eq!(
            hmac_sha512(key, msg).to_hex(),
            "164b7a7bfcf819e2e395fbe73b56e0a387bd64222e831fd610270cd7ea250554\
             9758bf75c05a994a6d034f65f8f0e6fdcaeab1a34d4a6b4b636e070a38bce737"
                .replace(char::is_whitespace, "")
        );
    }

    // RFC 4231 test case 3 (0xaa key, 0xdd data).
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        assert_eq!(
            hmac_sha256(&key, &msg).to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key longer than the block size.
    #[test]
    fn rfc4231_long_key() {
        let key = [0xaau8; 131];
        let msg = b"Test Using Larger Than Block-Size Key - Hash Key First";
        assert_eq!(
            hmac_sha256(&key, msg).to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn key_sensitivity() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha512(b"k1", b"m"), hmac_sha512(b"k2", b"m"));
    }

    #[test]
    fn batch_root_mac_binds_every_field() {
        let key = HmacSha256Key::new(b"client secret");
        let owner = ProcessId::client(3);
        let root = crate::hash::sha256(b"root");
        let mac = mac_batch_root(&key, owner, 64, &root);
        assert!(verify_batch_root(&key, owner, 64, &root, mac));
        // Any field change invalidates the MAC.
        assert!(!verify_batch_root(
            &key,
            ProcessId::client(4),
            64,
            &root,
            mac
        ));
        assert!(!verify_batch_root(&key, owner, 65, &root, mac));
        let other_root = crate::hash::sha256(b"other");
        assert!(!verify_batch_root(&key, owner, 64, &other_root, mac));
        assert!(!verify_batch_root(&key, owner, 64, &root, mac ^ 1));
        // ... and so does the key.
        let other_key = HmacSha256Key::new(b"other secret");
        assert!(!verify_batch_root(&other_key, owner, 64, &root, mac));
    }

    #[test]
    fn batch_root_mac_is_domain_separated_from_raw_hmac() {
        // The MAC must not equal an HMAC over the bare root: the domain tag
        // and the (owner, count) binding are part of the message.
        let secret = b"client secret";
        let key = HmacSha256Key::new(secret);
        let root = crate::hash::sha256(b"root");
        let mac = mac_batch_root(&key, ProcessId::client(0), 1, &root);
        let bare = hmac_sha256(secret, root.as_bytes());
        assert_ne!(mac, u64::from_le_bytes(bare.0[..8].try_into().unwrap()));
    }

    #[test]
    fn precomputed_keys_match_one_shots_across_messages() {
        let key = [0x42u8; 32];
        let k256 = HmacSha256Key::new(&key);
        let k512 = HmacSha512Key::new(&key);
        for len in [0usize, 1, 20, 63, 64, 65, 127, 128, 129, 1000] {
            let msg: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            assert_eq!(k256.mac(&msg), hmac_sha256(&key, &msg), "len={len}");
            assert_eq!(k512.mac(&msg), hmac_sha512(&key, &msg), "len={len}");
        }
        // Long keys go through the hash-the-key path.
        let long_key = [0xAAu8; 200];
        let k = HmacSha256Key::new(&long_key);
        assert_eq!(k.mac(b"m"), hmac_sha256(&long_key, b"m"));
        let k = HmacSha512Key::new(&long_key);
        assert_eq!(k.mac(b"m"), hmac_sha512(&long_key, b"m"));
    }
}
