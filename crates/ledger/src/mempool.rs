//! The mempool: unconfirmed transactions held after validation and before
//! inclusion in a block.
//!
//! CometBFT's mempool is an important element of the paper's evaluation: the
//! default 5 000-transaction cap had to be raised to 10 000 000 transactions
//! (or 2 GB) so that it would not be the bottleneck. This mempool reproduces
//! the same behaviour: FIFO order, de-duplication by transaction id,
//! rejection when either the count or the byte limit is hit, and removal of
//! transactions once they are committed.

use std::collections::VecDeque;

use setchain_crypto::FxHashSet;

use crate::types::{TxData, TxId};

/// Why a transaction was not accepted into the mempool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MempoolRejection {
    /// The transaction id is already present (or was already committed).
    Duplicate,
    /// The mempool already holds the maximum number of transactions.
    FullByCount,
    /// The mempool already holds the maximum number of bytes.
    FullByBytes,
}

/// FIFO mempool with count and byte limits.
#[derive(Debug)]
pub struct Mempool<T> {
    queue: VecDeque<T>,
    present: FxHashSet<TxId>,
    committed: FxHashSet<TxId>,
    bytes: usize,
    max_txs: usize,
    max_bytes: usize,
    /// Peak number of transactions held at once (reported by experiments).
    peak_len: usize,
}

impl<T: TxData> Mempool<T> {
    /// Creates a mempool with the given limits.
    pub fn new(max_txs: usize, max_bytes: usize) -> Self {
        Mempool {
            queue: VecDeque::new(),
            present: FxHashSet::default(),
            committed: FxHashSet::default(),
            bytes: 0,
            max_txs,
            max_bytes,
            peak_len: 0,
        }
    }

    /// Number of pending transactions.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if no transaction is pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total bytes of pending transactions.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Largest number of transactions ever pending at once.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// True if `id` is pending or already committed.
    pub fn contains(&self, id: &TxId) -> bool {
        self.present.contains(id) || self.committed.contains(id)
    }

    /// Attempts to add a transaction.
    pub fn push(&mut self, tx: T) -> Result<(), MempoolRejection> {
        let id = tx.tx_id();
        if self.present.contains(&id) || self.committed.contains(&id) {
            return Err(MempoolRejection::Duplicate);
        }
        if self.queue.len() >= self.max_txs {
            return Err(MempoolRejection::FullByCount);
        }
        let size = tx.wire_size();
        if self.bytes + size > self.max_bytes {
            return Err(MempoolRejection::FullByBytes);
        }
        self.bytes += size;
        self.present.insert(id);
        self.queue.push_back(tx);
        self.peak_len = self.peak_len.max(self.queue.len());
        Ok(())
    }

    /// Collects (clones of) pending transactions, in FIFO order, up to
    /// `max_bytes` of payload. Used by the proposer to build a block; the
    /// transactions stay in the mempool until [`Mempool::remove_committed`]
    /// is called for the committed block.
    pub fn reap(&mut self, max_bytes: usize) -> Vec<T> {
        let mut out = Vec::new();
        let mut total = 0usize;
        for tx in &self.queue {
            let size = tx.wire_size();
            if total + size > max_bytes && !out.is_empty() {
                break;
            }
            if total + size > max_bytes {
                // A single oversized transaction still goes alone into a
                // block so it cannot wedge the mempool forever.
                out.push(tx.clone());
                break;
            }
            total += size;
            out.push(tx.clone());
        }
        out
    }

    /// Removes the given committed transactions from the mempool and records
    /// their ids so late gossip cannot re-introduce them.
    pub fn remove_committed<'a>(&mut self, ids: impl IntoIterator<Item = &'a TxId>) {
        let to_remove: FxHashSet<TxId> = ids.into_iter().copied().collect();
        if to_remove.is_empty() {
            return;
        }
        for id in &to_remove {
            self.committed.insert(*id);
            self.present.remove(id);
        }
        let mut removed_bytes = 0usize;
        self.queue.retain(|tx| {
            if to_remove.contains(&tx.tx_id()) {
                removed_bytes += tx.wire_size();
                false
            } else {
                true
            }
        });
        self.bytes -= removed_bytes;
    }

    /// Number of transactions that have been committed and recorded.
    pub fn committed_count(&self) -> usize {
        self.committed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Tx(u128, usize);

    impl TxData for Tx {
        fn tx_id(&self) -> TxId {
            TxId(self.0)
        }
        fn wire_size(&self) -> usize {
            self.1
        }
    }

    #[test]
    fn push_and_reap_preserve_fifo_order() {
        let mut mp = Mempool::new(100, 10_000);
        for i in 0..10u128 {
            mp.push(Tx(i, 10)).unwrap();
        }
        assert_eq!(mp.len(), 10);
        assert_eq!(mp.bytes(), 100);
        let reaped = mp.reap(1_000);
        assert_eq!(reaped.len(), 10);
        assert_eq!(
            reaped.iter().map(|t| t.0).collect::<Vec<_>>(),
            (0..10).collect::<Vec<_>>()
        );
        // Reap does not remove.
        assert_eq!(mp.len(), 10);
    }

    #[test]
    fn duplicate_rejected() {
        let mut mp = Mempool::new(100, 10_000);
        mp.push(Tx(1, 10)).unwrap();
        assert_eq!(mp.push(Tx(1, 10)), Err(MempoolRejection::Duplicate));
        assert!(mp.contains(&TxId(1)));
    }

    #[test]
    fn count_limit_enforced() {
        let mut mp = Mempool::new(2, 10_000);
        mp.push(Tx(1, 10)).unwrap();
        mp.push(Tx(2, 10)).unwrap();
        assert_eq!(mp.push(Tx(3, 10)), Err(MempoolRejection::FullByCount));
    }

    #[test]
    fn byte_limit_enforced() {
        let mut mp = Mempool::new(100, 25);
        mp.push(Tx(1, 10)).unwrap();
        mp.push(Tx(2, 10)).unwrap();
        assert_eq!(mp.push(Tx(3, 10)), Err(MempoolRejection::FullByBytes));
        assert_eq!(mp.len(), 2);
    }

    #[test]
    fn reap_respects_block_size() {
        let mut mp = Mempool::new(100, 10_000);
        for i in 0..10u128 {
            mp.push(Tx(i, 100)).unwrap();
        }
        let reaped = mp.reap(350);
        assert_eq!(reaped.len(), 3);
    }

    #[test]
    fn oversized_single_tx_still_reaped_alone() {
        let mut mp = Mempool::new(100, 1_000_000);
        mp.push(Tx(1, 5_000)).unwrap();
        mp.push(Tx(2, 10)).unwrap();
        let reaped = mp.reap(1_000);
        assert_eq!(reaped.len(), 1);
        assert_eq!(reaped[0].0, 1);
    }

    #[test]
    fn remove_committed_blocks_reintroduction() {
        let mut mp = Mempool::new(100, 10_000);
        for i in 0..5u128 {
            mp.push(Tx(i, 10)).unwrap();
        }
        mp.remove_committed([TxId(1), TxId(3)].iter());
        assert_eq!(mp.len(), 3);
        assert_eq!(mp.bytes(), 30);
        assert_eq!(mp.committed_count(), 2);
        // Late gossip of a committed tx is rejected as a duplicate.
        assert_eq!(mp.push(Tx(1, 10)), Err(MempoolRejection::Duplicate));
        // Unknown tx is still accepted.
        mp.push(Tx(9, 10)).unwrap();
        assert_eq!(mp.len(), 4);
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut mp = Mempool::new(100, 10_000);
        for i in 0..7u128 {
            mp.push(Tx(i, 10)).unwrap();
        }
        mp.remove_committed((0..7u128).map(TxId).collect::<Vec<_>>().iter());
        assert_eq!(mp.len(), 0);
        assert!(mp.is_empty());
        assert_eq!(mp.peak_len(), 7);
    }

    #[test]
    fn empty_remove_is_noop() {
        let mut mp: Mempool<Tx> = Mempool::new(10, 100);
        mp.remove_committed(std::iter::empty());
        assert!(mp.is_empty());
    }
}
