//! The collector: a per-server buffer of elements and epoch-proofs that is
//! flushed into a batch when it reaches the configured size (the paper's
//! `collector_limit`) or when a timeout fires.
//!
//! Compresschain compresses the flushed batch; Hashchain hashes it. In both
//! cases the batch that leaves the collector is what eventually becomes an
//! epoch.

use setchain_simnet::SimTime;

use crate::element::Element;
use crate::proofs::{EpochProof, EPOCH_PROOF_WIRE_LEN};

/// A batch drained from the collector.
#[derive(Clone, Debug, Default)]
pub struct Batch {
    /// Elements, in collection order.
    pub elements: Vec<Element>,
    /// Epoch-proofs, in collection order.
    pub proofs: Vec<EpochProof>,
}

impl Batch {
    /// Number of entries (elements plus proofs).
    pub fn len(&self) -> usize {
        self.elements.len() + self.proofs.len()
    }

    /// True if the batch holds nothing.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty() && self.proofs.is_empty()
    }

    /// Total wire size of the batch contents in bytes.
    pub fn wire_size(&self) -> usize {
        self.elements.iter().map(|e| e.wire_size()).sum::<usize>()
            + self.proofs.len() * EPOCH_PROOF_WIRE_LEN
    }

    /// Wire size of the element payloads alone (what the compressor sees;
    /// proofs are high-entropy signatures accounted for uncompressed).
    pub fn element_bytes(&self) -> usize {
        self.elements.iter().map(|e| e.wire_size()).sum()
    }

    /// Materializes every element payload into `out`, in collection order.
    ///
    /// `out` is cleared first and reserved once, so a caller that keeps one
    /// encode buffer across flushes performs no per-element (and usually no
    /// per-batch) allocation. Returns the number of bytes encoded.
    pub fn encode_elements_into(&self, out: &mut Vec<u8>) -> usize {
        out.clear();
        out.reserve(self.element_bytes());
        for e in &self.elements {
            e.materialize_into(out);
        }
        out.len()
    }
}

/// Per-server collector (the paper's `batch` variable plus the `isReady`
/// condition).
#[derive(Clone, Debug)]
pub struct Collector {
    limit: usize,
    current: Batch,
    last_flush: SimTime,
    flushes: u64,
}

impl Collector {
    /// Creates a collector that signals readiness at `limit` entries.
    pub fn new(limit: usize) -> Self {
        assert!(limit >= 1, "collector limit must be positive");
        Collector {
            limit,
            current: Batch::default(),
            last_flush: SimTime::ZERO,
            flushes: 0,
        }
    }

    /// The configured size limit.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Number of entries currently collected.
    pub fn len(&self) -> usize {
        self.current.len()
    }

    /// True if nothing is collected.
    pub fn is_empty(&self) -> bool {
        self.current.is_empty()
    }

    /// Number of flushes performed so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Adds a client element.
    pub fn add_element(&mut self, element: Element) {
        self.current.elements.push(element);
    }

    /// Adds an epoch-proof.
    pub fn add_proof(&mut self, proof: EpochProof) {
        self.current.proofs.push(proof);
    }

    /// The paper's `isReady(batch)` size condition.
    pub fn is_ready(&self) -> bool {
        self.current.len() >= self.limit
    }

    /// True if the batch is non-empty and `timeout` has elapsed since the
    /// last flush (the timeout part of `isReady`).
    pub fn is_timed_out(&self, now: SimTime, timeout: setchain_simnet::SimDuration) -> bool {
        !self.is_empty() && now.since(self.last_flush) >= timeout
    }

    /// Drains the collector, returning the batch. Panics if empty (callers
    /// check `is_ready`/`is_timed_out` first, mirroring the algorithm's
    /// `assert batch ≠ ∅`).
    pub fn flush(&mut self, now: SimTime) -> Batch {
        assert!(!self.current.is_empty(), "flushing an empty collector");
        self.last_flush = now;
        self.flushes += 1;
        std::mem::take(&mut self.current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::ElementId;
    use crate::proofs::make_epoch_proof;
    use setchain_crypto::{KeyRegistry, ProcessId};
    use setchain_simnet::SimDuration;

    fn element(i: u64) -> Element {
        let reg = KeyRegistry::bootstrap(5, 1, 1);
        let keys = reg.lookup(ProcessId::client(0)).unwrap();
        Element::new(&keys, ElementId::new(0, i), 438, i)
    }

    #[test]
    fn fills_and_flushes_at_limit() {
        let mut c = Collector::new(3);
        assert!(c.is_empty());
        assert_eq!(c.limit(), 3);
        c.add_element(element(0));
        c.add_element(element(1));
        assert!(!c.is_ready());
        c.add_element(element(2));
        assert!(c.is_ready());
        let batch = c.flush(SimTime::from_secs(1));
        assert_eq!(batch.elements.len(), 3);
        assert_eq!(batch.len(), 3);
        assert!(c.is_empty());
        assert_eq!(c.flushes(), 1);
    }

    #[test]
    fn proofs_count_toward_the_limit() {
        let reg = KeyRegistry::bootstrap(5, 2, 1);
        let server = reg.lookup(ProcessId::server(0)).unwrap();
        let mut c = Collector::new(2);
        c.add_element(element(0));
        c.add_proof(make_epoch_proof(&server, 1, &[]));
        assert!(c.is_ready());
        let batch = c.flush(SimTime::ZERO);
        assert_eq!(batch.elements.len(), 1);
        assert_eq!(batch.proofs.len(), 1);
        assert!(batch.wire_size() > 438);
    }

    #[test]
    fn timeout_requires_non_empty_batch() {
        let mut c = Collector::new(100);
        let timeout = SimDuration::from_millis(200);
        assert!(!c.is_timed_out(SimTime::from_secs(10), timeout));
        c.add_element(element(0));
        assert!(!c.is_timed_out(SimTime::from_millis(100), timeout));
        assert!(c.is_timed_out(SimTime::from_millis(300), timeout));
        let _ = c.flush(SimTime::from_millis(300));
        // After a flush the timeout clock restarts.
        c.add_element(element(1));
        assert!(!c.is_timed_out(SimTime::from_millis(400), timeout));
        assert!(c.is_timed_out(SimTime::from_millis(600), timeout));
    }

    #[test]
    #[should_panic(expected = "empty collector")]
    fn flushing_empty_collector_panics() {
        let mut c = Collector::new(3);
        let _ = c.flush(SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_limit_panics() {
        let _ = Collector::new(0);
    }

    #[test]
    fn empty_batch_reports() {
        let b = Batch::default();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.wire_size(), 0);
        assert_eq!(b.element_bytes(), 0);
    }

    #[test]
    fn encode_elements_into_reuses_buffer_and_matches_materialize() {
        let mut c = Collector::new(3);
        for i in 0..3 {
            c.add_element(element(i));
        }
        let batch = c.flush(SimTime::ZERO);
        let expected: Vec<u8> = batch
            .elements
            .iter()
            .flat_map(|e| e.materialize())
            .collect();
        let mut buf = vec![0xFF; 8]; // stale contents must be discarded
        let n = batch.encode_elements_into(&mut buf);
        assert_eq!(n, buf.len());
        assert_eq!(n, batch.element_bytes());
        assert_eq!(buf, expected);
    }
}
