//! Integration tests: the eight Setchain properties of Section 2, checked on
//! end-to-end runs of all three algorithms over the simulated ledger — plus
//! a known-answer test pinning the epoch digest construction itself.

use setchain::{Algorithm, Element, ElementId, BATCH_CHUNK};
use setchain_crypto::{KeyRegistry, MerkleTree, ProcessId};
use setchain_simnet::SimTime;
use setchain_workload::{Deployment, Scenario};

/// A small but non-trivial scenario: 4 servers, a few thousand elements.
fn scenario(algorithm: Algorithm, seed: u64) -> Scenario {
    Scenario::base(algorithm)
        .with_label(format!("properties {algorithm}"))
        .with_servers(4)
        .with_rate(400.0)
        .with_collector(50)
        .with_injection_secs(5)
        .with_max_run_secs(60)
        .with_seed(seed)
}

/// Runs until every added element is committed (or the cap is reached) and
/// returns the deployment for inspection.
fn run(algorithm: Algorithm, seed: u64) -> (Deployment, SimTime) {
    let scenario = scenario(algorithm, seed);
    let mut deployment = Deployment::build(&scenario);
    let mut now = SimTime::ZERO;
    let limit = SimTime::from_secs(scenario.max_run_secs);
    while now < limit {
        now = (now + setchain_simnet::SimDuration::from_secs(5)).min(limit);
        deployment.sim.run_until(now);
        let added = deployment.trace.added_count();
        if now > SimTime::from_secs(scenario.injection_secs)
            && added > 0
            && deployment.trace.committed_count_by(now) >= added
        {
            break;
        }
    }
    (deployment, now)
}

fn check_all_properties(algorithm: Algorithm, seed: u64) {
    let (deployment, now) = run(algorithm, seed);
    let n = deployment.scenario.servers;
    let f = deployment.scenario.setchain_f();
    let added = deployment.trace.added_count();
    assert!(added > 1_500, "{algorithm}: workload injected ({added})");

    // Liveness (Properties 2, 3, 4): every added valid element ends up in
    // every correct server's the_set and history.
    let records = deployment.trace.element_records();
    let unstamped = records.iter().filter(|r| r.epoch.is_none()).count();
    assert_eq!(
        unstamped, 0,
        "{algorithm}: every added element is eventually stamped with an epoch"
    );
    for i in 0..n {
        let server = deployment.server(i);
        let state = server.state();
        for r in &records {
            assert!(
                state.contains(&r.id),
                "{algorithm}: server {i} the_set is missing {:?} (Get-Global)",
                r.id
            );
            assert!(
                state.in_history(&r.id),
                "{algorithm}: server {i} history is missing {:?} (Eventual-Get)",
                r.id
            );
        }
        // Property 1 (Consistent-Sets) and 5 (Unique-Epoch).
        assert!(
            state.check_consistent_sets(),
            "{algorithm}: server {i} Consistent-Sets"
        );
        assert!(
            state.check_unique_epoch(),
            "{algorithm}: server {i} Unique-Epoch"
        );
    }

    // Property 6 (Consistent-Gets): common epoch prefixes are identical.
    let reference = deployment.server(0);
    for i in 1..n {
        let other = deployment.server(i);
        assert!(
            reference.state().check_consistent_with(other.state()),
            "{algorithm}: server 0 and server {i} disagree on a common epoch"
        );
    }

    // Property 7 (Add-before-Get): nothing in the_set that was not added by a
    // client. The trace records every client add; forged ids would not be in
    // it. Sample the reference server's history for membership.
    let added_ids: std::collections::HashSet<ElementId> = records.iter().map(|r| r.id).collect();
    let state = reference.state();
    for epoch in 1..=state.epoch() {
        for e in state.epoch_elements(epoch).unwrap() {
            assert!(
                added_ids.contains(&e.id),
                "{algorithm}: epoch {epoch} contains {:?} which no client added",
                e.id
            );
        }
    }

    // Property 8 (Valid-Epoch): every epoch containing elements eventually has
    // at least f+1 proofs from distinct servers (correct servers > f).
    let mut proven = 0;
    let mut with_elements = 0;
    for epoch in 1..=state.epoch() {
        let has_elements = !state.epoch_elements(epoch).unwrap().is_empty();
        if has_elements {
            with_elements += 1;
            if state.proof_count(epoch) > f {
                proven += 1;
            }
        }
    }
    assert!(
        with_elements > 0,
        "{algorithm}: at least one non-empty epoch"
    );
    assert!(
        proven as f64 >= 0.9 * with_elements as f64,
        "{algorithm}: {proven}/{with_elements} element-bearing epochs reached f+1 proofs by {now}"
    );
}

#[test]
fn vanilla_satisfies_setchain_properties() {
    check_all_properties(Algorithm::Vanilla, 101);
}

#[test]
fn compresschain_satisfies_setchain_properties() {
    check_all_properties(Algorithm::Compresschain, 202);
}

#[test]
fn hashchain_satisfies_setchain_properties() {
    check_all_properties(Algorithm::Hashchain, 303);
}

#[test]
fn epochs_are_identical_across_servers_for_all_algorithms() {
    // Stronger variant of Consistent-Gets: compare the *content* of every
    // epoch id by id between two servers.
    for algorithm in Algorithm::ALL {
        let (deployment, _) = run(algorithm, 404);
        let a = deployment.server(0);
        let b = deployment.server(deployment.scenario.servers - 1);
        let common = a.state().epoch().min(b.state().epoch());
        assert!(common > 0, "{algorithm}: at least one epoch created");
        for epoch in 1..=common {
            let ida: std::collections::BTreeSet<ElementId> = a
                .state()
                .epoch_elements(epoch)
                .unwrap()
                .iter()
                .map(|e| e.id)
                .collect();
            let idb: std::collections::BTreeSet<ElementId> = b
                .state()
                .epoch_elements(epoch)
                .unwrap()
                .iter()
                .map(|e| e.id)
                .collect();
            assert_eq!(
                ida, idb,
                "{algorithm}: epoch {epoch} differs between servers"
            );
        }
    }
}

/// Known-answer test for the `(epoch, count, root)` commitment split: the
/// digest servers sign must equal [`setchain::epoch_hash_for_root`] applied
/// to a Merkle root built *by hand* — canonical id order, [`BATCH_CHUNK`]
/// packed identities per leaf, [`MerkleTree::build`] straight from the
/// crypto crate, no `batch_root`/`epoch_root` helpers involved. This is the
/// reconstruction a light client (and PR 8's sub-epoch aggregator) depends
/// on; a silent change to the leaf layout or the domain string fails here
/// even if every helper-vs-helper test still agrees with itself.
#[test]
fn epoch_hash_for_root_matches_a_hand_built_merkle_tree() {
    let registry = KeyRegistry::bootstrap(5, 2, 4);
    // Enough elements for a multi-level tree (3 leaves), inserted in
    // descending id order to prove the digest canonicalizes.
    let mut elements: Vec<Element> = (0..20u64)
        .rev()
        .map(|i| {
            let client = (i % 4) as usize;
            let keys = registry.lookup(ProcessId::client(client)).unwrap();
            Element::new(&keys, ElementId::new(client as u32, i), 100 + i as u32, i)
        })
        .collect();

    let mut canonical = elements.clone();
    canonical.sort_by_key(|e| e.id);
    let leaves: Vec<Vec<u8>> = canonical
        .chunks(BATCH_CHUNK)
        .map(|chunk| {
            let mut leaf = Vec::with_capacity(chunk.len() * Element::PACKED_LEN);
            for e in chunk {
                leaf.extend_from_slice(&e.pack());
            }
            leaf
        })
        .collect();
    assert_eq!(leaves.len(), 3, "20 elements span three 8-element leaves");
    let hand_root = MerkleTree::build(&leaves).root();

    for epoch in [1u64, 7, 1_000] {
        assert_eq!(
            setchain::epoch_hash(epoch, &elements),
            setchain::epoch_hash_for_root(epoch, elements.len() as u64, &hand_root),
            "epoch {epoch}: signed digest diverged from the hand-built triple"
        );
    }
    assert_eq!(setchain::epoch_root(&elements), hand_root);
    // The triple binds epoch and count, not just the root.
    assert_ne!(
        setchain::epoch_hash_for_root(1, elements.len() as u64, &hand_root),
        setchain::epoch_hash_for_root(2, elements.len() as u64, &hand_root)
    );
    assert_ne!(
        setchain::epoch_hash_for_root(1, elements.len() as u64, &hand_root),
        setchain::epoch_hash_for_root(1, elements.len() as u64 - 1, &hand_root)
    );
    // And the order of arrival never matters: a different permutation of
    // the same elements commits to the same digest.
    elements.swap(0, 19);
    elements.swap(3, 11);
    assert_eq!(
        setchain::epoch_hash(7, &elements),
        setchain::epoch_hash(7, &canonical)
    );
}

#[test]
fn runs_are_deterministic_for_a_fixed_seed() {
    let run_digest = |seed: u64| {
        let (deployment, now) = run(Algorithm::Hashchain, seed);
        let state_epoch = deployment.server(0).state().epoch();
        (
            deployment.trace.added_count(),
            deployment.trace.committed_count_by(now),
            state_epoch,
        )
    };
    assert_eq!(run_digest(777), run_digest(777));
}
