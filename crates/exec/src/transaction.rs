//! Transfer transactions executed by the blockchain extension.
//!
//! Appendix G keeps the Setchain layer oblivious to transaction semantics:
//! elements are validated *optimistically and independently* ("ignoring its
//! semantics") when epochs are built, and only after an epoch is consolidated
//! are its transactions interpreted and executed in order, with invalid ones
//! marked **void**. This module defines the transaction format and both
//! validation layers:
//!
//! * [`Transaction::check_stateless`] — the per-transaction check that can be
//!   run in parallel with no shared state (Appendix G step 1).
//! * Stateful checks (nonce, balance) happen during sequential execution in
//!   [`crate::executor`] (Appendix G step 2).

use serde::{Deserialize, Serialize};
use setchain::{Element, ElementId};

use crate::account::Address;

/// Why a transaction was rejected.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum VoidReason {
    /// The stateless (optimistic, parallel) validation failed: malformed
    /// fields or an unauthenticated sender.
    InvalidFormat,
    /// The sender's nonce did not match the account nonce at execution time.
    BadNonce,
    /// The sender could not cover `amount + fee` at execution time.
    InsufficientBalance,
    /// The consolidated epoch exceeded the configured execution size limit
    /// and this transaction fell past it (the epoch-size trade-off Appendix G
    /// discusses).
    EpochLimitExceeded,
}

/// A value transfer, the only transaction kind the extension executes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Transaction {
    /// The Setchain element this transaction was decoded from (or a synthetic
    /// id for directly constructed transactions).
    pub element: ElementId,
    /// Sending account. Debited `amount + fee`.
    pub from: Address,
    /// Receiving account. Credited `amount`.
    pub to: Address,
    /// Value transferred.
    pub amount: u64,
    /// Fee paid to the fee sink.
    pub fee: u64,
    /// Sender sequence number: when `Some`, it must equal the sender
    /// account's nonce at execution time (Ethereum-style replay protection).
    /// Transactions decoded from Setchain elements use `None`, because the
    /// Setchain layer already guarantees an element is included in exactly
    /// one epoch (Unique-Epoch), which is what a nonce would protect against,
    /// and Setchain only orders *epochs*, not a client's elements across
    /// them.
    pub nonce: Option<u64>,
    /// Whether the element carrying this transaction carried a valid client
    /// authenticator. Elements reaching a consolidated epoch have already
    /// been validated by the Setchain layer, but the executor re-checks the
    /// flag so that directly injected malformed transactions are voided.
    pub authenticated: bool,
}

impl Transaction {
    /// Builds a transfer directly (used by tests and by applications that
    /// drive the executor without a Setchain underneath).
    pub fn transfer(from: Address, to: Address, amount: u64, fee: u64, nonce: u64) -> Self {
        Transaction {
            element: ElementId::new(0, 0),
            from,
            to,
            amount,
            fee,
            nonce: Some(nonce),
            authenticated: true,
        }
    }

    /// Builds a transfer without nonce-based replay protection (what
    /// [`Transaction::from_element`] produces; uniqueness is guaranteed by
    /// the Setchain layer instead).
    pub fn transfer_unsequenced(from: Address, to: Address, amount: u64, fee: u64) -> Self {
        Transaction {
            element: ElementId::new(0, 0),
            from,
            to,
            amount,
            fee,
            nonce: None,
            authenticated: true,
        }
    }

    /// Decodes the transfer a Setchain element represents.
    ///
    /// The workload generator fills elements with Arbitrum-like opaque
    /// payloads, so the transfer is derived deterministically from the
    /// element's identity and content seed: every correct server decodes the
    /// same element to the same transaction, which is all the execution layer
    /// needs (DESIGN.md §3 documents this substitution). The sender is the
    /// creating client's account and amount/fee/recipient are drawn from the
    /// content seed. The nonce is `None`: replay protection is provided by
    /// the Setchain layer (an element enters exactly one epoch, by
    /// Unique-Epoch), and the Setchain deliberately does not order one
    /// client's elements across epochs, so an account-nonce sequence cannot
    /// be enforced here.
    pub fn from_element(e: &Element) -> Self {
        let seed = e.content_seed;
        let client = e.id.client_index();
        let recipient = Address::for_client((seed % 64) as u32);
        Transaction {
            element: e.id,
            from: Address::for_client(client),
            to: recipient,
            amount: 1 + (seed >> 6) % 1_000,
            fee: 1 + (seed >> 16) % 10,
            nonce: None,
            authenticated: true,
        }
    }

    /// The stateless "optimistic" validation of Appendix G step 1: checks
    /// every property that does not depend on account state, so it can run
    /// for all transactions of an epoch in parallel.
    pub fn check_stateless(&self) -> Result<(), VoidReason> {
        if !self.authenticated {
            return Err(VoidReason::InvalidFormat);
        }
        if self.amount == 0 {
            return Err(VoidReason::InvalidFormat);
        }
        if self.from == self.to {
            return Err(VoidReason::InvalidFormat);
        }
        if self.from == Address::FEE_SINK || self.to == Address::FEE_SINK {
            return Err(VoidReason::InvalidFormat);
        }
        Ok(())
    }

    /// Total value the sender must cover.
    pub fn cost(&self) -> u128 {
        self.amount as u128 + self.fee as u128
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setchain_crypto::{KeyRegistry, ProcessId};

    #[test]
    fn well_formed_transfer_passes_stateless_check() {
        let tx = Transaction::transfer(Address(1), Address(2), 10, 1, 0);
        assert_eq!(tx.check_stateless(), Ok(()));
        assert_eq!(tx.cost(), 11);
    }

    #[test]
    fn malformed_transfers_fail_stateless_check() {
        let zero = Transaction::transfer(Address(1), Address(2), 0, 1, 0);
        assert_eq!(zero.check_stateless(), Err(VoidReason::InvalidFormat));
        let self_send = Transaction::transfer(Address(1), Address(1), 5, 1, 0);
        assert_eq!(self_send.check_stateless(), Err(VoidReason::InvalidFormat));
        let to_sink = Transaction::transfer(Address(1), Address::FEE_SINK, 5, 1, 0);
        assert_eq!(to_sink.check_stateless(), Err(VoidReason::InvalidFormat));
        let mut unauth = Transaction::transfer(Address(1), Address(2), 5, 1, 0);
        unauth.authenticated = false;
        assert_eq!(unauth.check_stateless(), Err(VoidReason::InvalidFormat));
    }

    #[test]
    fn decoding_an_element_is_deterministic() {
        let reg = KeyRegistry::bootstrap(3, 4, 4);
        let keys = reg.lookup(ProcessId::client(2)).unwrap();
        let e = Element::new(&keys, ElementId::new(2, 17), 438, 0xDEADBEEF);
        let a = Transaction::from_element(&e);
        let b = Transaction::from_element(&e);
        assert_eq!(a, b);
        assert_eq!(a.from, Address::for_client(2));
        assert_eq!(a.nonce, None, "decoded transfers are unsequenced");
        assert!(a.amount >= 1 && a.fee >= 1);
    }

    #[test]
    fn different_elements_decode_to_different_transfers() {
        let reg = KeyRegistry::bootstrap(3, 4, 4);
        let keys = reg.lookup(ProcessId::client(0)).unwrap();
        let a = Transaction::from_element(&Element::new(&keys, ElementId::new(0, 1), 438, 100));
        let b = Transaction::from_element(&Element::new(&keys, ElementId::new(0, 2), 438, 200_000));
        assert_ne!(a.element, b.element);
        assert_ne!((a.amount, a.fee, a.nonce), (b.amount, b.fee, b.nonce));
    }
}
