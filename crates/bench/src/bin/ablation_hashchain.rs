//! Ablation of the Hashchain design choices discussed in Section 4.1 of the
//! paper: the hash-reversal service is the throughput bottleneck, and the
//! authors suggest (a) having only 2f+1 servers sign each batch-hash and
//! epoch, and (b) alternative distributed batch-sharing mechanisms. This
//! binary compares, on the same workload:
//!
//! * **baseline** — the evaluated Hashchain (every server counter-signs,
//!   batches recovered via `Request_batch`),
//! * **2f+1 signers** — only a designated set of 2f+1 servers counter-signs
//!   hash-batches and emits epoch-proofs,
//! * **push batches** — batch contents are pushed to all servers at flush
//!   time, so hash reversal rarely issues requests,
//! * **light** — the paper's own upper-bound ablation (no hash reversal, no
//!   validation; Fig. 2 left).
//!
//! ```sh
//! cargo run --release -p setchain-bench --bin ablation_hashchain
//! ```

use setchain::Algorithm;
use setchain_bench::{
    banner, print_summary_table, summarize, summary_csv_rows, ExperimentCtx, SUMMARY_CSV_HEADER,
};
use setchain_workload::{run_scenario, Scenario};

fn main() {
    let ctx = ExperimentCtx::from_env();
    banner("Ablation: Hashchain signing / batch-sharing variants (Section 4.1 discussion)");
    println!(
        "scale = {} (SETCHAIN_SCALE), injection = {} s, base scenario: 10 servers, 5 000 el/s, collector 500",
        ctx.scale,
        ctx.injection_secs()
    );

    let servers = 10;
    let f = (servers - 1) / 2; // Setchain fault bound: 4
    let base = || {
        ctx.scale_scenario(
            Scenario::base(Algorithm::Hashchain)
                .with_servers(servers)
                .with_rate(5_000.0)
                .with_collector(500)
                .with_seed(97),
        )
    };

    let variants: Vec<Scenario> = vec![
        base().with_label("Hashchain baseline"),
        base()
            .with_label(format!("Hashchain 2f+1 signers (k={})", 2 * f + 1))
            .with_designated_signers(2 * f + 1),
        base()
            .with_label("Hashchain push batches")
            .with_push_batches(),
        base().with_label("Hashchain light (no reversal)").light(),
    ];

    let mut summaries = Vec::new();
    for scenario in &variants {
        println!("  running: {} …", scenario.label);
        let result = run_scenario(scenario);
        summaries.push(summarize(&ctx, &result));
    }

    println!();
    print_summary_table(&ctx, &summaries);
    ctx.write_csv(
        "ablation_hashchain.csv",
        SUMMARY_CSV_HEADER,
        &summary_csv_rows(&summaries),
    );

    println!();
    println!("Reading the table:");
    println!("  * the 2f+1 variant trims redundant counter-signatures and epoch-proofs;");
    println!("  * pushing batches removes the Request_batch round trip that the paper");
    println!("    identifies as the ~20k el/s bottleneck;");
    println!("  * the light run is the upper bound with hash reversal removed entirely");
    println!("    (the paper's Fig. 2 left ablation).");
}
