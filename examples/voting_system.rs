//! Voting system: ballots in a Setchain, verified from a single server.
//!
//! The paper motivates Setchain with applications like digital registries and
//! voting systems (e.g. Chirotonia), where elements need no order *within* an
//! epoch. This example runs an election on top of Compresschain: voters are
//! light clients that each cast one signed ballot through their nearest
//! server, an auditor later fetches epochs from a *single* server and accepts
//! them only with `f + 1` valid epoch-proofs, and the tally is computed from
//! the verified epochs alone.
//!
//! ```sh
//! cargo run --release -p setchain-workload --example voting_system
//! ```

use setchain::{verify_epoch, Algorithm, Element, ElementId, SetchainMsg};
use setchain_crypto::{KeyPair, ProcessId};
use setchain_simnet::SimTime;
use setchain_workload::{Deployment, RequestClient, Scenario};

const CANDIDATES: [&str; 3] = ["Ada", "Barbara", "Grace"];
const VOTERS: u64 = 40;

/// The candidate a ballot element encodes (derived from its content seed, the
/// way a real deployment would parse the ballot payload).
fn candidate_of(e: &Element) -> usize {
    (e.content_seed % CANDIDATES.len() as u64) as usize
}

fn main() {
    // 1. Four Setchain servers run the election registry, with a light
    //    background load of ordinary registry traffic; the ballots below are
    //    added by dedicated voter clients on top of it.
    let scenario = Scenario::base(Algorithm::Compresschain)
        .with_label("voting")
        .with_servers(4)
        .with_rate(40.0)
        .with_collector(10)
        .with_injection_secs(2)
        .with_max_run_secs(40)
        .with_seed(1_848);
    let mut deployment = Deployment::build(&scenario);
    let n = scenario.servers;
    let f = scenario.setchain_f();

    // 2. Register the voters in the PKI and script one ballot each, spread
    //    over the first few seconds and across all four servers.
    let mut ballots = Vec::new();
    for voter in 0..VOTERS {
        let id = ProcessId::client(1_000 + voter as usize);
        let keys = KeyPair::derive(id, 9_000 + voter);
        deployment.registry.register(keys);
        // The ballot: candidate choice encoded in the content seed.
        let choice = (voter * 7 + 3) % CANDIDATES.len() as u64;
        let element = Element::new(&keys, ElementId::new(1_000 + voter as u32, 0), 256, choice);
        let cast_at = SimTime::from_millis(200 + voter * 150);
        let server = ProcessId::server((voter % n as u64) as usize);
        ballots.push(element);
        deployment.sim.add_process(
            id,
            Box::new(RequestClient::new(vec![(
                cast_at,
                server,
                SetchainMsg::Add(element),
            )])),
        );
    }

    // 3. The auditor talks to one server only (server 3) and asks for the
    //    state summary plus every epoch, late enough that proofs are in.
    let auditor = ProcessId::client(99);
    let auditor_keys = KeyPair::derive(auditor, 31_337);
    deployment.registry.register(auditor_keys);
    let mut script = vec![(
        SimTime::from_secs(30),
        ProcessId::server(3),
        SetchainMsg::Get { request_id: 0 },
    )];
    // Compresschain turns every flushed batch into an epoch, so 30 seconds of
    // running produces a few hundred (mostly small) epochs; the auditor walks
    // all of them.
    for epoch in 1..=600u64 {
        script.push((
            SimTime::from_secs(30),
            ProcessId::server(3),
            SetchainMsg::GetEpoch {
                request_id: epoch,
                epoch,
            },
        ));
    }
    deployment
        .sim
        .add_process(auditor, Box::new(RequestClient::new(script)));

    // 4. Run the election.
    deployment.sim.run_until(SimTime::from_secs(35));

    // 5. Tally only what the auditor could verify with f + 1 proofs from its
    //    single server.
    let client: &RequestClient = deployment.sim.process(auditor).expect("auditor");
    let mut tally = [0usize; CANDIDATES.len()];
    let mut verified_epochs = 0;
    let mut counted = 0;
    for (_, _, response) in client.responses() {
        if let SetchainMsg::EpochResponse {
            epoch,
            elements,
            proofs,
            ..
        } = response
        {
            if elements.is_empty() && proofs.is_empty() {
                continue;
            }
            let verdict = verify_epoch(&deployment.registry, n, f, *epoch, elements, proofs);
            if !verdict.is_verified() {
                println!("epoch {epoch}: NOT verified ({verdict:?}) — skipped from the tally");
                continue;
            }
            verified_epochs += 1;
            for ballot in elements {
                // Only count ballots cast by registered voters, once each.
                if ballots.iter().any(|b| b.id == ballot.id) {
                    tally[candidate_of(ballot)] += 1;
                    counted += 1;
                }
            }
        }
    }

    println!("ballots cast: {VOTERS}, epochs verified with f+1 proofs: {verified_epochs}");
    println!("ballots counted from verified epochs: {counted}\n");
    for (name, votes) in CANDIDATES.iter().zip(tally) {
        println!("  {name:<10} {votes:>3} votes  {}", "#".repeat(votes));
    }

    // 6. Cross-check against the servers' own state: Unique-Epoch guarantees
    //    no ballot is ever counted twice.
    let s0 = deployment.server(0);
    println!(
        "\nserver 0: epoch = {}, unique-epoch holds: {}, consistent with server 2: {}",
        s0.state().epoch(),
        s0.state().check_unique_epoch(),
        s0.state()
            .check_consistent_with(deployment.server(2).state()),
    );
}
