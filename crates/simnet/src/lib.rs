//! Deterministic discrete-event network simulator.
//!
//! The paper evaluates the Setchain algorithms on a cluster of 4/7/10
//! machines running Docker containers, optionally adding 30 ms or 100 ms of
//! artificial delay to every message to emulate a wide-area deployment. This
//! crate is the stand-in for that platform: a single-threaded, fully
//! deterministic discrete-event simulation in which
//!
//! * every server/client is a [`Process`] actor driven by messages and timers,
//! * the network ([`NetworkConfig`], `network::Network`) delivers messages
//!   with configurable propagation delay, jitter, added latency (the paper's
//!   `network_delay` parameter), loss and partitions, and models per-sender
//!   link bandwidth so that shipping large batches (Hashchain's
//!   hash-reversal) has a realistic cost,
//! * node CPU time consumed by hashing/validation is modelled through
//!   [`Context::consume_cpu`], which delays subsequent deliveries to that node.
//!
//! # Message delivery and the `Arc` ownership contract
//!
//! Messages travel through the event queue as `Arc<M>` so that a broadcast
//! enqueues **one** allocation no matter how many recipients it has:
//! [`Context::send`] wraps the payload, and [`Context::send_shared`] /
//! [`Context::send_to_all`] fan an existing `Arc` out as refcount bumps.
//! Ownership is materialized *at delivery time* via `Arc::try_unwrap`: when
//! the event queue hands a message to a process, the last — for
//! point-to-point traffic, the only — holder takes the value without a
//! copy, and earlier recipients of a broadcast clone it then. Two
//! consequences for process authors:
//!
//! * a process receives `M` by value and owns it outright; there is no
//!   aliasing with other recipients, so mutating or moving the message is
//!   always safe;
//! * a sender that retains a clone of the `Arc` it enqueued forces every
//!   recipient down the clone path — hand the last `Arc` over to keep
//!   deliveries copy-free.
//!
//! Determinism: given the same seed and the same set of processes, a
//! simulation produces exactly the same schedule, which makes every figure in
//! the evaluation reproducible bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod network;
pub mod process;
pub mod sim;
pub mod time;

pub use fault::{FaultEvent, FaultPlan};
pub use network::{NetworkConfig, Partition};
pub use process::{Context, Process, TimerToken, Wire};
pub use sim::{RunOutcome, Simulation, SimulationConfig};
pub use time::{SimDuration, SimTime};

pub use setchain_crypto::ProcessId;
