//! End-to-end simulation benchmarks: how much wall-clock time the simulator
//! needs per committed block / per committed element for small deployments.
//! These bound the cost of the figure-regeneration experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use setchain::Algorithm;
use setchain_simnet::SimTime;
use setchain_workload::{Deployment, Scenario};

/// Builds and runs a small deployment for `sim_secs` simulated seconds and
/// returns the number of committed elements (to keep the optimizer honest).
fn run_small(algorithm: Algorithm, servers: usize, rate: f64, sim_secs: u64) -> usize {
    let scenario = Scenario::base(algorithm)
        .with_servers(servers)
        .with_rate(rate)
        .with_collector(50)
        .with_injection_secs(sim_secs.saturating_sub(2).max(1))
        .with_max_run_secs(sim_secs)
        .with_seed(99);
    let mut deployment = Deployment::build(&scenario);
    deployment.sim.run_until(SimTime::from_secs(sim_secs));
    deployment
        .trace
        .committed_count_by(SimTime::from_secs(sim_secs))
}

fn bench_ledger_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulated_deployment");
    group.sample_size(10);
    for &(algorithm, rate) in &[
        (Algorithm::Vanilla, 100.0),
        (Algorithm::Compresschain, 500.0),
        (Algorithm::Hashchain, 500.0),
    ] {
        group.bench_with_input(
            BenchmarkId::new("4_servers_5s", algorithm.name()),
            &(algorithm, rate),
            |b, &(algorithm, rate)| {
                b.iter(|| {
                    let committed = run_small(algorithm, 4, rate, 5);
                    assert!(committed > 0, "{algorithm} committed nothing");
                    committed
                })
            },
        );
    }
    group.finish();
}

fn bench_cluster_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_size");
    group.sample_size(10);
    for servers in [4usize, 7, 10] {
        group.bench_with_input(
            BenchmarkId::new("hashchain_5s", servers),
            &servers,
            |b, &servers| b.iter(|| run_small(Algorithm::Hashchain, servers, 500.0, 5)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ledger_round, bench_cluster_sizes);
criterion_main!(benches);
