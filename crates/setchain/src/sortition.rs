//! Committee sortition for permissionless deployments.
//!
//! The paper's system model (Section 2) is open-permissioned: clients are
//! open, servers are known upfront. It notes that the model "can also be
//! adapted to a permissionless setting with committee sortition" in the style
//! of Algorand. This module provides that adaptation layer: given a public
//! candidate set with stakes and a public per-epoch seed (derived from the
//! previous epoch's hash, which all correct servers agree on thanks to
//! Consistent-Gets), it deterministically selects the committee of servers
//! that runs the Setchain for the next epochs.
//!
//! The selection is a weighted sampling **without replacement** using the
//! "exponential jumps"/A-Res keying: every candidate gets the key
//! `u^(1/stake)` where `u ∈ (0,1)` is derived by hashing the seed with the
//! candidate identity, and the `committee_size` largest keys win. Because the
//! key depends only on public data, any process can recompute the committee
//! and verify membership — no interaction or VRF infrastructure is needed for
//! the reproduction (DESIGN.md §3 discusses this substitution).

use setchain_crypto::{Digest512, ProcessId, Sha512};

/// A sortition candidate: a process identity with its public stake.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Candidate {
    /// The candidate process.
    pub id: ProcessId,
    /// Voting stake; candidates with zero stake are never selected.
    pub stake: u64,
}

impl Candidate {
    /// Convenience constructor.
    pub fn new(id: ProcessId, stake: u64) -> Self {
        Candidate { id, stake }
    }
}

/// Derives the public sortition seed for a round from the epoch number and
/// the hash of the previous epoch (all correct servers agree on both).
pub fn round_seed(epoch: u64, previous_epoch_hash: &Digest512) -> Digest512 {
    let mut h = Sha512::new();
    h.update(b"setchain-sortition-round");
    h.update(&epoch.to_le_bytes());
    h.update(previous_epoch_hash.as_bytes());
    h.finalize()
}

/// The key a candidate draws for a given seed: `u^(1/stake)` with
/// `u ∈ (0, 1)` derived from `Hash(seed ‖ id)`. Larger is better; zero stake
/// always keys to 0 and can never be selected ahead of a staked candidate.
fn selection_key(seed: &Digest512, candidate: &Candidate) -> f64 {
    if candidate.stake == 0 {
        return 0.0;
    }
    let mut h = Sha512::new();
    h.update(b"setchain-sortition-key");
    h.update(seed.as_bytes());
    h.update(&candidate.id.0.to_le_bytes());
    let digest = h.finalize();
    let raw = u64::from_le_bytes(digest.as_bytes()[..8].try_into().expect("8 bytes"));
    // Map to (0, 1): avoid exactly 0 (log undefined) and exactly 1.
    let u = (raw as f64 + 1.0) / (u64::MAX as f64 + 2.0);
    u.powf(1.0 / candidate.stake as f64)
}

/// Selects a committee of (up to) `committee_size` distinct candidates for
/// `seed`, weighted by stake and without replacement.
///
/// The result is sorted by process id so that every correct process computes
/// the committee in the same canonical order. If fewer than `committee_size`
/// candidates have positive stake, all of them are returned.
pub fn select_committee(
    seed: &Digest512,
    candidates: &[Candidate],
    committee_size: usize,
) -> Vec<ProcessId> {
    let mut keyed: Vec<(f64, ProcessId)> = candidates
        .iter()
        .filter(|c| c.stake > 0)
        .map(|c| (selection_key(seed, c), c.id))
        .collect();
    // Sort by key descending; ties (astronomically unlikely) break by id so
    // the outcome stays deterministic.
    keyed.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .expect("keys are finite")
            .then(b.1 .0.cmp(&a.1 .0))
    });
    let mut committee: Vec<ProcessId> = keyed
        .into_iter()
        .take(committee_size)
        .map(|(_, id)| id)
        .collect();
    committee.sort_by_key(|id| id.0);
    committee
}

/// True if `member` is in the committee selected by `seed` over
/// `candidates` — the verification any process (e.g. a light client checking
/// an epoch-proof signer) can run locally.
pub fn verify_member(
    seed: &Digest512,
    candidates: &[Candidate],
    committee_size: usize,
    member: ProcessId,
) -> bool {
    select_committee(seed, candidates, committee_size).contains(&member)
}

#[cfg(test)]
mod tests {
    use super::*;
    use setchain_crypto::sha512;

    fn candidates(n: usize, stake: u64) -> Vec<Candidate> {
        (0..n)
            .map(|i| Candidate::new(ProcessId::server(i), stake))
            .collect()
    }

    #[test]
    fn committee_is_deterministic_and_right_sized() {
        let pool = candidates(50, 10);
        let seed = round_seed(7, &sha512(b"epoch 6 contents"));
        let a = select_committee(&seed, &pool, 10);
        let b = select_committee(&seed, &pool, 10);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        // No duplicates.
        let mut dedup = a.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
        // Canonical (sorted) order.
        assert!(a.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn different_seeds_give_different_committees() {
        let pool = candidates(100, 10);
        let seed_a = round_seed(1, &sha512(b"a"));
        let seed_b = round_seed(2, &sha512(b"a"));
        let seed_c = round_seed(1, &sha512(b"b"));
        let a = select_committee(&seed_a, &pool, 10);
        let b = select_committee(&seed_b, &pool, 10);
        let c = select_committee(&seed_c, &pool, 10);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn small_pools_and_zero_stake_are_handled() {
        let mut pool = candidates(5, 10);
        pool.push(Candidate::new(ProcessId::server(5), 0));
        let seed = sha512(b"seed");
        // Asking for more members than staked candidates returns all of them.
        let all = select_committee(&seed, &pool, 10);
        assert_eq!(all.len(), 5);
        assert!(
            !all.contains(&ProcessId::server(5)),
            "zero stake never selected"
        );
        // Empty pool.
        assert!(select_committee(&seed, &[], 4).is_empty());
        // Zero-sized committee.
        assert!(select_committee(&seed, &pool, 0).is_empty());
    }

    #[test]
    fn membership_verification_matches_selection() {
        let pool = candidates(30, 5);
        let seed = round_seed(12, &sha512(b"prev"));
        let committee = select_committee(&seed, &pool, 7);
        for member in &committee {
            assert!(verify_member(&seed, &pool, 7, *member));
        }
        let outsider = pool.iter().find(|c| !committee.contains(&c.id)).unwrap();
        assert!(!verify_member(&seed, &pool, 7, outsider.id));
    }

    #[test]
    fn stake_weighting_biases_selection() {
        // One whale with 50× the stake of everyone else must be selected in
        // far more committees than a uniform candidate would be.
        let mut pool = candidates(40, 10);
        pool[0].stake = 500;
        let committee_size = 8;
        let rounds = 200;
        let mut whale_selected = 0;
        let mut baseline_selected = 0;
        for round in 0..rounds {
            let seed = round_seed(round, &sha512(&round.to_le_bytes()));
            let committee = select_committee(&seed, &pool, committee_size);
            if committee.contains(&pool[0].id) {
                whale_selected += 1;
            }
            if committee.contains(&pool[1].id) {
                baseline_selected += 1;
            }
        }
        assert!(
            whale_selected > baseline_selected * 2,
            "whale {whale_selected}/{rounds} vs baseline {baseline_selected}/{rounds}"
        );
        // The whale is not *always* selected either (sortition, not election).
        assert!(whale_selected > rounds / 2);
    }

    #[test]
    fn round_seed_depends_on_both_inputs() {
        let h = sha512(b"epoch");
        assert_ne!(round_seed(1, &h), round_seed(2, &h));
        assert_ne!(round_seed(1, &h), round_seed(1, &sha512(b"other")));
    }
}
