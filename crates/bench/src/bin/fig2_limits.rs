//! Regenerates Fig. 2 (left): Hashchain limits with/without hash-reversal.
fn main() {
    let ctx = setchain_bench::ExperimentCtx::from_env();
    println!("scale = {} (SETCHAIN_SCALE)", ctx.scale);
    setchain_bench::figures::fig2_limits(&ctx);
}
