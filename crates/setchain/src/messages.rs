//! Application-level messages: the client-facing Setchain API (`add`, `get`)
//! and the server-to-server hash-reversal protocol used by Hashchain.

use setchain_crypto::Digest512;
use setchain_simnet::Wire;

use crate::batch_auth::AuthedBatch;
use crate::element::Element;
use crate::proofs::{EpochProof, EPOCH_PROOF_WIRE_LEN};

/// Summary returned by `S.get()` (the full sets are too large to ship to a
/// client wholesale; `GetEpoch` retrieves one epoch with its proofs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct GetSnapshot {
    /// Number of elements in the server's `the_set`.
    pub the_set_len: u64,
    /// Current epoch number.
    pub epoch: u64,
    /// Total number of elements across all epochs in `history`.
    pub history_elements: u64,
    /// Total number of epoch-proofs held.
    pub proofs_total: u64,
    /// Number of epochs that already have at least `f + 1` proofs.
    pub epochs_with_quorum: u64,
}

/// Messages exchanged between clients and Setchain servers, and between
/// Setchain servers themselves.
#[derive(Clone, Debug)]
pub enum SetchainMsg {
    /// `S.add_v(e)`: a client asks server `v` to add one element.
    Add(Element),
    /// Bulk variant of `Add` used by the workload driver: semantically the
    /// same as sending each `Add` individually, but keeps the number of
    /// simulated messages manageable at high sending rates.
    AddBatch(Vec<Element>),
    /// Batch-authenticated submission ([`crate::AuthMode::BatchRoot`]): the
    /// elements under one Merkle root MAC'd once by the owning client. A
    /// server verifies the root MAC instead of one MAC per element, then
    /// admits every element; servers also forward the sealed envelope to
    /// their peers so the whole deployment validates each batch once.
    BatchedAdd(AuthedBatch),
    /// `S.get_v()`: returns a summary of the server's Setchain state.
    Get {
        /// Correlation id echoed in the response.
        request_id: u64,
    },
    /// Response to [`SetchainMsg::Get`].
    GetResponse {
        /// Correlation id of the request.
        request_id: u64,
        /// Summary of the server state.
        snapshot: GetSnapshot,
    },
    /// Retrieves the contents and proofs of one epoch (what a light client
    /// needs in order to verify it).
    GetEpoch {
        /// Correlation id echoed in the response.
        request_id: u64,
        /// Epoch to retrieve.
        epoch: u64,
    },
    /// Response to [`SetchainMsg::GetEpoch`].
    EpochResponse {
        /// Correlation id of the request.
        request_id: u64,
        /// Epoch number.
        epoch: u64,
        /// Elements of the epoch as known by the server.
        elements: Vec<Element>,
        /// Epoch-proofs held for that epoch.
        proofs: Vec<EpochProof>,
    },
    /// Hashchain `Request_batch(h)`: asks a server for the batch whose hash
    /// is `hash`.
    RequestBatch {
        /// Hash of the requested batch.
        hash: Digest512,
    },
    /// Answer to [`SetchainMsg::RequestBatch`] carrying the original batch.
    BatchResponse {
        /// Hash of the batch (echoed).
        hash: Digest512,
        /// Elements of the batch.
        elements: Vec<Element>,
        /// Epoch-proofs of the batch.
        proofs: Vec<EpochProof>,
    },
    /// Proactive batch dissemination (the push-based Hashchain variant from
    /// the paper's discussion): the flushing server ships the batch contents
    /// to the other servers so hash reversal rarely needs a request round
    /// trip. The receiver validates the contents against the hash before
    /// storing them.
    PushBatch {
        /// Hash of the pushed batch.
        hash: Digest512,
        /// Elements of the batch.
        elements: Vec<Element>,
        /// Epoch-proofs of the batch.
        proofs: Vec<EpochProof>,
    },
    /// Overload shed (see [`crate::quota`]): the server refused an
    /// `Add`/`AddBatch`/`BatchedAdd` submission because the sender is over
    /// its admission quota, *before* spending any verification CPU on it. A
    /// well-behaved client backs off for at least `retry_after` (the same
    /// hint shape the epoch-retry machinery uses); a flooding client that
    /// ignores the hint keeps being shed for free.
    Rejected {
        /// Earliest delay after which a retry could be admitted.
        retry_after: setchain_simnet::SimDuration,
    },
    /// Server-to-server state catch-up: a restarted (or otherwise lagging)
    /// server asks a peer for the committed epochs it is missing. Peers
    /// that are not ahead of `from_epoch` simply do not answer.
    CatchupRequest {
        /// First missing epoch (the requester's local epoch + 1).
        from_epoch: u64,
    },
    /// Answer to [`SetchainMsg::CatchupRequest`]: a bounded run of
    /// consecutive committed epochs starting at the requested one. The
    /// requester independently re-verifies each bundle against `f + 1`
    /// epoch-proof signers before applying it, so a Byzantine responder
    /// cannot inject history.
    CatchupResponse {
        /// Consecutive epoch bundles, each with elements and proofs.
        epochs: Vec<CatchupEpoch>,
    },
}

/// One epoch shipped in a [`SetchainMsg::CatchupResponse`].
#[derive(Clone, Debug)]
pub struct CatchupEpoch {
    /// Epoch number.
    pub epoch: u64,
    /// Elements of the epoch, in the responder's history order (the order
    /// the epoch digest commits to).
    pub elements: Vec<Element>,
    /// Epoch-proofs the responder holds for this epoch; the requester
    /// accepts the bundle only with `f + 1` distinct valid signers.
    pub proofs: Vec<EpochProof>,
}

impl CatchupEpoch {
    fn wire_size(&self) -> usize {
        8 + self.elements.iter().map(|e| e.wire_size()).sum::<usize>()
            + self.proofs.len() * EPOCH_PROOF_WIRE_LEN
    }
}

const MSG_HEADER: usize = 32;

impl Wire for SetchainMsg {
    fn wire_size(&self) -> usize {
        match self {
            SetchainMsg::Add(e) => MSG_HEADER + e.wire_size(),
            SetchainMsg::AddBatch(es) => {
                MSG_HEADER + es.iter().map(|e| e.wire_size()).sum::<usize>()
            }
            SetchainMsg::BatchedAdd(batch) => MSG_HEADER + batch.wire_size(),
            SetchainMsg::Get { .. } => MSG_HEADER,
            SetchainMsg::GetResponse { .. } => MSG_HEADER + 40,
            SetchainMsg::GetEpoch { .. } => MSG_HEADER + 8,
            SetchainMsg::EpochResponse {
                elements, proofs, ..
            } => {
                MSG_HEADER
                    + elements.iter().map(|e| e.wire_size()).sum::<usize>()
                    + proofs.len() * EPOCH_PROOF_WIRE_LEN
            }
            SetchainMsg::RequestBatch { .. } => MSG_HEADER + 64,
            SetchainMsg::Rejected { .. } => MSG_HEADER + 8,
            SetchainMsg::CatchupRequest { .. } => MSG_HEADER + 8,
            SetchainMsg::CatchupResponse { epochs } => {
                MSG_HEADER + epochs.iter().map(|b| b.wire_size()).sum::<usize>()
            }
            SetchainMsg::BatchResponse {
                elements, proofs, ..
            }
            | SetchainMsg::PushBatch {
                elements, proofs, ..
            } => {
                MSG_HEADER
                    + 64
                    + elements.iter().map(|e| e.wire_size()).sum::<usize>()
                    + proofs.len() * EPOCH_PROOF_WIRE_LEN
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::ElementId;
    use setchain_crypto::{sha512, KeyRegistry, ProcessId};

    #[test]
    fn wire_sizes_track_payload() {
        let reg = KeyRegistry::bootstrap(1, 2, 1);
        let client = reg.lookup(ProcessId::client(0)).unwrap();
        let e = Element::new(&client, ElementId::new(0, 1), 438, 1);
        assert_eq!(SetchainMsg::Add(e).wire_size(), 32 + 438);
        assert_eq!(SetchainMsg::AddBatch(vec![e, e]).wire_size(), 32 + 876);
        // A batch-authenticated add pays 40 extra bytes over a plain
        // AddBatch of the same elements: the 32-byte root and the 8-byte
        // root MAC.
        let key = setchain_crypto::HmacSha256Key::new(&client.secret.0);
        let sealed = crate::AuthedBatch::seal(&key, client.id, vec![e, e]);
        assert_eq!(
            SetchainMsg::BatchedAdd(sealed).wire_size(),
            32 + 876 + 32 + 8
        );
        assert_eq!(SetchainMsg::Get { request_id: 1 }.wire_size(), 32);
        assert_eq!(
            SetchainMsg::GetEpoch {
                request_id: 1,
                epoch: 2
            }
            .wire_size(),
            40
        );
        assert_eq!(
            SetchainMsg::RequestBatch { hash: sha512(b"h") }.wire_size(),
            96
        );
        assert_eq!(
            SetchainMsg::Rejected {
                retry_after: setchain_simnet::SimDuration::from_millis(5)
            }
            .wire_size(),
            40
        );
        // A batch response carrying the real batch contents is what makes
        // hash reversal expensive on the wire.
        let resp = SetchainMsg::BatchResponse {
            hash: sha512(b"h"),
            elements: vec![e; 100],
            proofs: vec![],
        };
        assert!(resp.wire_size() > 100 * 438);
    }

    #[test]
    fn snapshot_default_is_zeroed() {
        let s = GetSnapshot::default();
        assert_eq!(s.the_set_len, 0);
        assert_eq!(s.epochs_with_quorum, 0);
    }
}
