//! The per-server element admission cache.
//!
//! Every server must check each element's client authenticator (an HMAC)
//! before admitting it — the validation floor of the whole pipeline. An
//! element reaches a server many times (its own client `add`, peer batches,
//! block processing, re-gossip), so the verdict is memoized: the HMAC is
//! recomputed once per server, and every later arrival is a cache probe.
//!
//! The cache is keyed on the element id and guarded by the full identity
//! tuple `(client, size, content seed, mac)`: a hit requires *all* of them
//! to match the cached entry, so a Byzantine peer re-sending a tampered
//! element under a known id — same id, different contents or forged mac —
//! never inherits a cached `valid` verdict, and a re-gossip of a previously
//! rejected element stays rejected without ever whitelisting forgeries.
//!
//! What is deliberately **not** cached: verdicts that depend on a client
//! being absent from the PKI registry. Those can flip when the client
//! registers later, so the caller must re-derive them (see
//! [`ServerCore::element_valid`](crate::ServerCore::element_valid)).

use setchain_crypto::{FxHashMap, ProcessId};

use crate::element::{Element, ElementId};

/// One memoized admission verdict: the exact identity of the element that
/// was validated, plus the verdict. 29 bytes per element, bounded by the
/// number of distinct element ids a server observes.
#[derive(Clone, Copy, Debug)]
struct AdmissionEntry {
    client: ProcessId,
    size: u32,
    content_seed: u64,
    auth: u64,
    verdict: bool,
}

impl AdmissionEntry {
    #[inline]
    fn matches(&self, e: &Element) -> bool {
        // The mac comparison comes first: it is the discriminating field
        // for tampered re-sends (a fabricated element under a known id
        // almost always carries a different authenticator).
        self.auth == e.auth
            && self.client == e.client
            && self.size == e.size
            && self.content_seed == e.content_seed
    }
}

/// Memoized admission verdicts for one server (see the module docs).
#[derive(Default)]
pub struct AdmissionCache {
    entries: FxHashMap<ElementId, AdmissionEntry>,
    hits: u64,
    misses: u64,
}

impl AdmissionCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Probes that were answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Probes that required a fresh authenticator check (first sight of an
    /// element, or an id re-sent with different contents).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The cached verdict for exactly this element, if present. A `None`
    /// means the caller must validate and then [`record`](Self::record).
    #[inline]
    pub fn lookup(&mut self, e: &Element) -> Option<bool> {
        match self.entries.get(&e.id) {
            Some(entry) if entry.matches(e) => {
                self.hits += 1;
                Some(entry.verdict)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records the verdict for this exact element, replacing whatever was
    /// cached under its id.
    #[inline]
    pub fn record(&mut self, e: &Element, verdict: bool) {
        self.entries.insert(
            e.id,
            AdmissionEntry {
                client: e.client,
                size: e.size,
                content_seed: e.content_seed,
                auth: e.auth,
                verdict,
            },
        );
    }

    /// Pre-sizes the cache for `additional` upcoming insertions — called
    /// with the observed miss count of a batch before its verdicts are
    /// recorded, so bulk validation does not rehash the table mid-batch.
    pub fn reserve(&mut self, additional: usize) {
        self.entries.reserve(additional);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setchain_crypto::KeyRegistry;

    fn client_element(seq: u64) -> Element {
        let reg = KeyRegistry::bootstrap(3, 2, 2);
        let keys = reg.lookup(ProcessId::client(0)).unwrap();
        Element::new(&keys, ElementId::new(0, seq), 438, seq)
    }

    #[test]
    fn lookup_miss_then_hit_roundtrip() {
        let mut cache = AdmissionCache::new();
        let e = client_element(1);
        assert!(cache.is_empty());
        assert_eq!(cache.lookup(&e), None);
        cache.record(&e, true);
        assert_eq!(cache.lookup(&e), Some(true));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn any_identity_field_change_misses() {
        let mut cache = AdmissionCache::new();
        let e = client_element(2);
        cache.record(&e, true);
        for tamper in [
            |e: &mut Element| e.auth ^= 1,
            |e: &mut Element| e.size += 1,
            |e: &mut Element| e.content_seed ^= 0xFF,
            |e: &mut Element| e.client = ProcessId::client(1),
        ] {
            let mut t = e;
            tamper(&mut t);
            assert_eq!(cache.lookup(&t), None, "tampered field must not hit");
        }
        // The genuine element still hits.
        assert_eq!(cache.lookup(&e), Some(true));
    }

    #[test]
    fn rejected_verdicts_are_cached_and_stay_rejected() {
        let mut cache = AdmissionCache::new();
        let forged = Element::forged(ProcessId::client(0), ElementId::new(0, 9), 200);
        cache.record(&forged, false);
        // Re-gossip of the same forged element: cached rejection, no
        // whitelisting.
        assert_eq!(cache.lookup(&forged), Some(false));
    }

    #[test]
    fn reserve_is_observable_only_through_capacity() {
        let mut cache = AdmissionCache::new();
        cache.reserve(1000);
        assert!(cache.is_empty());
        let e = client_element(3);
        cache.record(&e, true);
        assert_eq!(cache.lookup(&e), Some(true));
    }
}
