//! Two-phase epoch execution (Appendix G).
//!
//! 1. **Optimistic validation** — every transaction of the epoch is checked
//!    independently (format, authentication), in parallel across worker
//!    threads ([`validate_epoch`]).
//! 2. **Sequential execution** — transactions are applied one by one in their
//!    final position against the [`WorldState`]; a transaction whose stateful
//!    checks fail (nonce mismatch, insufficient balance) is marked **void**
//!    and has no effect ([`execute_epoch`]).
//!
//! Appendix G also notes the trade-off between decentralisation and
//! scalability: since execution is sequential within an epoch, very large
//! epochs may require limiting. [`ExecutionConfig::max_epoch_txs`] models
//! that limit; transactions past it are voided with
//! [`VoidReason::EpochLimitExceeded`].

use serde::{Deserialize, Serialize};

use crate::account::WorldState;
use crate::parallel::{default_threads, parallel_map};
use crate::transaction::{Transaction, VoidReason};

/// Execution parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ExecutionConfig {
    /// Worker threads used by the optimistic validation phase.
    pub threads: usize,
    /// Maximum number of transactions executed per epoch; `None` means
    /// unlimited (the default — the limit is an explicit opt-in, as in the
    /// paper's discussion of Ethereum-style block limits).
    pub max_epoch_txs: Option<usize>,
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        ExecutionConfig {
            threads: default_threads(),
            max_epoch_txs: None,
        }
    }
}

impl ExecutionConfig {
    /// Single-threaded configuration (the sequential baseline used by the
    /// validation ablation bench).
    pub fn sequential() -> Self {
        ExecutionConfig {
            threads: 1,
            max_epoch_txs: None,
        }
    }

    /// Sets the per-epoch execution limit.
    pub fn with_epoch_limit(mut self, limit: usize) -> Self {
        self.max_epoch_txs = Some(limit);
        self
    }

    /// Sets the validation thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "at least one thread required");
        self.threads = threads;
        self
    }
}

/// Outcome of one transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum TxStatus {
    /// The transfer was applied to the state.
    Applied,
    /// The transaction was marked void and had no effect.
    Void(VoidReason),
}

impl TxStatus {
    /// True if the transaction was applied.
    pub fn is_applied(&self) -> bool {
        matches!(self, TxStatus::Applied)
    }
}

/// Per-transaction execution record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Receipt {
    /// The transaction's position within its epoch.
    pub index: usize,
    /// Outcome.
    pub status: TxStatus,
}

/// Summary of executing one epoch.
#[derive(Clone, Debug, Default)]
pub struct EpochReceipts {
    /// One receipt per transaction, in execution order.
    pub receipts: Vec<Receipt>,
    /// Number of applied transactions.
    pub applied: usize,
    /// Number of void transactions.
    pub void: usize,
    /// Total value moved by applied transfers.
    pub value_moved: u128,
    /// Total fees collected from applied transfers.
    pub fees: u128,
}

impl EpochReceipts {
    /// Receipt of the transaction at `index`.
    pub fn receipt(&self, index: usize) -> Option<&Receipt> {
        self.receipts.get(index)
    }
}

/// Phase 1: optimistic, stateless validation of every transaction in
/// parallel. Returns one entry per transaction: `Ok(())` or the reason the
/// transaction is already known to be void.
pub fn validate_epoch(
    txs: &[Transaction],
    config: &ExecutionConfig,
) -> Vec<Result<(), VoidReason>> {
    parallel_map(txs, config.threads, Transaction::check_stateless)
}

/// Phase 2: sequential execution against `state`, consuming the phase-1
/// verdicts. Transactions are applied in slice order (their "actual final
/// position"); void transactions leave the state untouched.
pub fn execute_epoch(
    state: &mut WorldState,
    txs: &[Transaction],
    stateless: &[Result<(), VoidReason>],
    config: &ExecutionConfig,
) -> EpochReceipts {
    assert_eq!(
        txs.len(),
        stateless.len(),
        "one stateless verdict required per transaction"
    );
    let mut out = EpochReceipts::default();
    let limit = config.max_epoch_txs.unwrap_or(usize::MAX);
    for (index, (tx, verdict)) in txs.iter().zip(stateless).enumerate() {
        let status = if index >= limit {
            TxStatus::Void(VoidReason::EpochLimitExceeded)
        } else if let Err(reason) = verdict {
            TxStatus::Void(*reason)
        } else {
            apply_transfer(state, tx)
        };
        match status {
            TxStatus::Applied => {
                out.applied += 1;
                out.value_moved += tx.amount as u128;
                out.fees += tx.fee as u128;
            }
            TxStatus::Void(_) => out.void += 1,
        }
        out.receipts.push(Receipt { index, status });
    }
    out
}

/// Convenience wrapper running both phases.
pub fn validate_and_execute(
    state: &mut WorldState,
    txs: &[Transaction],
    config: &ExecutionConfig,
) -> EpochReceipts {
    let stateless = validate_epoch(txs, config);
    execute_epoch(state, txs, &stateless, config)
}

/// Applies a single transfer whose stateless checks already passed.
fn apply_transfer(state: &mut WorldState, tx: &Transaction) -> TxStatus {
    // Nonce-sequenced transactions get Ethereum-style replay protection;
    // element-decoded transactions carry no nonce (the Setchain layer already
    // guarantees single inclusion) and skip the check.
    if let Some(nonce) = tx.nonce {
        if state.nonce(tx.from) != nonce {
            return TxStatus::Void(VoidReason::BadNonce);
        }
    }
    if state.balance(tx.from) < tx.cost() {
        return TxStatus::Void(VoidReason::InsufficientBalance);
    }
    let debited = state.debit(tx.from, tx.cost());
    debug_assert!(debited, "balance checked above");
    state.credit(tx.to, tx.amount as u128);
    state.collect_fee(tx.fee as u128);
    state.account_mut(tx.from).nonce += 1;
    TxStatus::Applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::Address;
    use proptest::prelude::*;

    fn funded(addresses: &[u64], balance: u128) -> WorldState {
        WorldState::with_genesis(addresses.iter().map(|a| (Address(*a), balance)))
    }

    #[test]
    fn simple_transfer_moves_value_and_fee() {
        let mut state = funded(&[1, 2], 100);
        let tx = Transaction::transfer(Address(1), Address(2), 30, 2, 0);
        let receipts = validate_and_execute(&mut state, &[tx], &ExecutionConfig::sequential());
        assert_eq!(receipts.applied, 1);
        assert_eq!(receipts.void, 0);
        assert_eq!(state.balance(Address(1)), 68);
        assert_eq!(state.balance(Address(2)), 130);
        assert_eq!(state.balance(Address::FEE_SINK), 2);
        assert_eq!(state.nonce(Address(1)), 1);
        assert_eq!(receipts.value_moved, 30);
        assert_eq!(receipts.fees, 2);
    }

    #[test]
    fn bad_nonce_and_overdraft_are_void_without_effect() {
        let mut state = funded(&[1, 2], 10);
        let root_before = state.state_root();
        let txs = [
            Transaction::transfer(Address(1), Address(2), 5, 1, 3), // wrong nonce
            Transaction::transfer(Address(2), Address(1), 100, 1, 0), // overdraft
        ];
        let receipts = validate_and_execute(&mut state, &txs, &ExecutionConfig::sequential());
        assert_eq!(receipts.applied, 0);
        assert_eq!(receipts.void, 2);
        assert_eq!(
            receipts.receipt(0).unwrap().status,
            TxStatus::Void(VoidReason::BadNonce)
        );
        assert_eq!(
            receipts.receipt(1).unwrap().status,
            TxStatus::Void(VoidReason::InsufficientBalance)
        );
        assert_eq!(state.state_root(), root_before, "void txs leave the state");
    }

    #[test]
    fn nonce_sequence_within_one_epoch() {
        let mut state = funded(&[1, 2], 1_000);
        let txs = [
            Transaction::transfer(Address(1), Address(2), 10, 1, 0),
            Transaction::transfer(Address(1), Address(2), 10, 1, 1),
            Transaction::transfer(Address(1), Address(2), 10, 1, 1), // replay
            Transaction::transfer(Address(1), Address(2), 10, 1, 2),
        ];
        let receipts = validate_and_execute(&mut state, &txs, &ExecutionConfig::sequential());
        assert_eq!(receipts.applied, 3);
        assert_eq!(receipts.void, 1);
        assert_eq!(state.nonce(Address(1)), 3);
    }

    #[test]
    fn stateless_failures_are_voided_before_touching_state() {
        let mut state = funded(&[1, 2], 100);
        let txs = [
            Transaction::transfer(Address(1), Address(1), 10, 1, 0), // self-send
            Transaction::transfer(Address(1), Address(2), 0, 1, 0),  // zero amount
            Transaction::transfer(Address(1), Address(2), 10, 1, 0), // fine
        ];
        let receipts = validate_and_execute(&mut state, &txs, &ExecutionConfig::default());
        assert_eq!(receipts.applied, 1);
        assert_eq!(receipts.void, 2);
        // The valid transaction still executes with nonce 0: void ones do not
        // consume nonces.
        assert_eq!(state.nonce(Address(1)), 1);
    }

    #[test]
    fn epoch_limit_voids_the_tail() {
        let mut state = funded(&[1, 2], 1_000);
        let txs: Vec<Transaction> = (0..10)
            .map(|n| Transaction::transfer(Address(1), Address(2), 1, 1, n))
            .collect();
        let config = ExecutionConfig::sequential().with_epoch_limit(4);
        let receipts = validate_and_execute(&mut state, &txs, &config);
        assert_eq!(receipts.applied, 4);
        assert_eq!(receipts.void, 6);
        assert!(receipts.receipts[4..]
            .iter()
            .all(|r| r.status == TxStatus::Void(VoidReason::EpochLimitExceeded)));
    }

    #[test]
    fn parallel_and_sequential_validation_agree() {
        let txs: Vec<Transaction> = (0..3_000)
            .map(|i| {
                if i % 7 == 0 {
                    Transaction::transfer(Address(1), Address(1), 5, 1, i) // void
                } else {
                    Transaction::transfer(Address(1), Address(2), 5, 1, i)
                }
            })
            .collect();
        let par = validate_epoch(&txs, &ExecutionConfig::default().with_threads(8));
        let seq = validate_epoch(&txs, &ExecutionConfig::sequential());
        assert_eq!(par, seq);
    }

    #[test]
    #[should_panic(expected = "one stateless verdict required")]
    fn mismatched_verdicts_panic() {
        let mut state = WorldState::new();
        let txs = [Transaction::transfer(Address(1), Address(2), 1, 1, 0)];
        let _ = execute_epoch(&mut state, &txs, &[], &ExecutionConfig::sequential());
    }

    proptest! {
        /// Value is never created or destroyed: genesis supply equals final
        /// supply, regardless of which transactions are void.
        #[test]
        fn prop_total_supply_is_conserved(
            transfers in proptest::collection::vec(
                (0u64..8, 0u64..8, 1u64..500, 0u64..5, 0u64..4),
                0..200,
            )
        ) {
            let mut state = funded(&[0, 1, 2, 3, 4, 5, 6, 7], 1_000);
            let supply_before = state.total_supply();
            let txs: Vec<Transaction> = transfers
                .iter()
                .map(|(f, t, amount, fee, nonce)| {
                    Transaction::transfer(Address(*f), Address(*t), *amount, *fee, *nonce)
                })
                .collect();
            let receipts = validate_and_execute(&mut state, &txs, &ExecutionConfig::default());
            prop_assert_eq!(state.total_supply(), supply_before);
            prop_assert_eq!(receipts.applied + receipts.void, txs.len());
            prop_assert_eq!(state.fees_collected(), receipts.fees);
        }

        /// Execution is deterministic: replaying the same epoch on the same
        /// genesis produces the same receipts and the same state root.
        #[test]
        fn prop_execution_is_deterministic(
            transfers in proptest::collection::vec(
                (0u64..6, 0u64..6, 1u64..300, 0u64..3, 0u64..3),
                0..120,
            ),
            threads in 1usize..8,
        ) {
            let txs: Vec<Transaction> = transfers
                .iter()
                .map(|(f, t, amount, fee, nonce)| {
                    Transaction::transfer(Address(*f), Address(*t), *amount, *fee, *nonce)
                })
                .collect();
            let config_a = ExecutionConfig::default().with_threads(threads);
            let config_b = ExecutionConfig::sequential();
            let mut state_a = funded(&[0, 1, 2, 3, 4, 5], 500);
            let mut state_b = funded(&[0, 1, 2, 3, 4, 5], 500);
            let ra = validate_and_execute(&mut state_a, &txs, &config_a);
            let rb = validate_and_execute(&mut state_b, &txs, &config_b);
            prop_assert_eq!(ra.receipts, rb.receipts);
            prop_assert_eq!(state_a.state_root(), state_b.state_root());
        }

        /// Nonces only ever increase, by exactly the number of applied
        /// transactions per sender.
        #[test]
        fn prop_nonce_accounting(
            transfers in proptest::collection::vec(
                (0u64..4, 4u64..8, 1u64..100),
                0..100,
            )
        ) {
            let mut state = funded(&[0, 1, 2, 3], 1_000_000);
            // Give each sender consecutive nonces so everything applies.
            let mut next_nonce = [0u64; 4];
            let txs: Vec<Transaction> = transfers
                .iter()
                .map(|(f, t, amount)| {
                    let nonce = next_nonce[*f as usize];
                    next_nonce[*f as usize] += 1;
                    Transaction::transfer(Address(*f), Address(*t), *amount, 1, nonce)
                })
                .collect();
            let receipts = validate_and_execute(&mut state, &txs, &ExecutionConfig::default());
            prop_assert_eq!(receipts.void, 0);
            for sender in 0..4u64 {
                prop_assert_eq!(state.nonce(Address(sender)), next_nonce[sender as usize]);
            }
        }
    }
}
