//! Deterministic signature scheme standing in for ed25519.
//!
//! A signature over `msg` by process `p` is `HMAC-SHA-512(secret_p, msg)`
//! (64 bytes, the same length as an ed25519 signature) together with the
//! signer's id. Verification resolves the signer's key material through the
//! PKI [`KeyRegistry`] and recomputes the MAC. This provides exactly the
//! guarantee the Setchain algorithms rely on: a process that does not own the
//! registered secret cannot produce a signature that correct processes accept,
//! and signatures bind the signer identity to the signed bytes.

use std::collections::HashMap;
use std::fmt;

use crate::hash::Digest512;
use crate::hmac::{hmac_sha512, HmacSha512Key};
use crate::keys::{KeyPair, KeyRegistry, ProcessId};
use crate::parallel::{default_threads, parallel_map};

/// Byte length of a signature (matches ed25519).
pub const SIGNATURE_LEN: usize = 64;

/// A signature: signer identity plus 64 bytes of MAC output.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    /// The claimed signer.
    pub signer: ProcessId,
    /// MAC bytes.
    pub bytes: [u8; SIGNATURE_LEN],
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Signature({} {:02x}{:02x}{:02x}{:02x}…)",
            self.signer, self.bytes[0], self.bytes[1], self.bytes[2], self.bytes[3]
        )
    }
}

impl Signature {
    /// A structurally valid but cryptographically bogus signature, used by
    /// Byzantine behaviours in tests and fault-injection experiments.
    pub fn forged(signer: ProcessId) -> Self {
        Signature {
            signer,
            bytes: [0xBD; SIGNATURE_LEN],
        }
    }

    /// Size of the signature on the wire, in bytes (identity + MAC).
    pub fn wire_len(&self) -> usize {
        SIGNATURE_LEN + 8
    }
}

/// Signs `msg` with the given key pair.
pub fn sign(pair: &KeyPair, msg: &[u8]) -> Signature {
    let mac: Digest512 = hmac_sha512(&pair.secret.0, msg);
    Signature {
        signer: pair.id,
        bytes: mac.0,
    }
}

/// Signs `msg` through a precomputed HMAC key schedule for `signer`.
///
/// Equivalent to [`sign`] with `signer`'s key pair, but the two key-pad
/// absorptions are already paid: a process that signs many messages (every
/// vote, proof and hash-batch a server emits) holds its own schedule once
/// instead of rebuilding it per signature.
pub fn sign_with(key: &HmacSha512Key, signer: ProcessId, msg: &[u8]) -> Signature {
    Signature {
        signer,
        bytes: key.mac(msg).0,
    }
}

/// A memoizing signature verifier: per-signer HMAC key schedules resolved
/// from the PKI once and reused for every later verification.
///
/// Semantically identical to calling [`verify`] per signature, with one
/// caveat inherited from every schedule cache in the workspace: verdicts
/// for *unknown* signers are not cached (a process registered later is
/// still picked up), but replacing an already-registered key mid-run is
/// not supported.
#[derive(Default)]
pub struct SigVerifier {
    keys: HashMap<ProcessId, HmacSha512Key>,
}

impl SigVerifier {
    /// Creates an empty verifier (schedules populate lazily).
    pub fn new() -> Self {
        Self::default()
    }

    /// Verifies `sig` over `msg`, resolving the signer's schedule through
    /// `registry` on first use and from the cache afterwards.
    pub fn verify(&mut self, registry: &KeyRegistry, msg: &[u8], sig: &Signature) -> bool {
        let key = match self.keys.entry(sig.signer) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let Some(pair) = registry.lookup(sig.signer) else {
                    return false;
                };
                e.insert(HmacSha512Key::new(&pair.secret.0))
            }
        };
        mac_matches(&key.mac(msg), sig)
    }
}

/// Verifies that `sig` is a valid signature over `msg` by `sig.signer`,
/// resolving the signer's key through the PKI `registry`.
///
/// Returns `false` for unknown signers, forged MACs, or messages that do not
/// match the signed bytes.
pub fn verify(registry: &KeyRegistry, msg: &[u8], sig: &Signature) -> bool {
    match registry.lookup(sig.signer) {
        Some(pair) => mac_matches(&hmac_sha512(&pair.secret.0, msg), sig),
        None => false,
    }
}

/// Constant-time-ish MAC comparison; not security critical in the
/// simulation but cheap to do properly.
fn mac_matches(expected: &Digest512, sig: &Signature) -> bool {
    let mut diff = 0u8;
    for (a, b) in expected.0.iter().zip(sig.bytes.iter()) {
        diff |= a ^ b;
    }
    diff == 0
}

/// Verifies a batch of `(message, signature)` pairs, returning one verdict
/// per pair, in order. Semantically identical to calling [`verify`] on each
/// pair, but the per-signer HMAC key schedule is computed once per distinct
/// signer instead of once per signature, and large batches are checked in
/// parallel (`parallel_map`, sequential below its `MIN_PARALLEL_LEN`
/// threshold). This is the fast path for commit certificates and collector
/// batches, where one signer vouches for many entries.
pub fn verify_batch<'a, I>(registry: &KeyRegistry, items: I) -> Vec<bool>
where
    I: IntoIterator<Item = (&'a [u8], &'a Signature)>,
{
    let items: Vec<(&[u8], &Signature)> = items.into_iter().collect();
    // One key schedule per distinct signer; unknown signers map to `None`
    // and fail verification like `verify` does.
    let mut keys: HashMap<ProcessId, Option<HmacSha512Key>> = HashMap::new();
    for (_, sig) in &items {
        keys.entry(sig.signer).or_insert_with(|| {
            registry
                .lookup(sig.signer)
                .map(|pair| HmacSha512Key::new(&pair.secret.0))
        });
    }
    parallel_map(&items, default_threads(), |(msg, sig)| {
        match keys.get(&sig.signer).and_then(|k| k.as_ref()) {
            Some(key) => mac_matches(&key.mac(msg), sig),
            None => false,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyRegistry;

    fn setup() -> (KeyRegistry, KeyPair, KeyPair) {
        let reg = KeyRegistry::bootstrap(99, 3, 1);
        let s0 = reg.lookup(ProcessId::server(0)).unwrap();
        let s1 = reg.lookup(ProcessId::server(1)).unwrap();
        (reg, s0, s1)
    }

    #[test]
    fn sign_and_verify_roundtrip() {
        let (reg, s0, _) = setup();
        let sig = sign(&s0, b"epoch 1 contents");
        assert!(verify(&reg, b"epoch 1 contents", &sig));
    }

    #[test]
    fn tampered_message_rejected() {
        let (reg, s0, _) = setup();
        let sig = sign(&s0, b"epoch 1 contents");
        assert!(!verify(&reg, b"epoch 2 contents", &sig));
    }

    #[test]
    fn wrong_claimed_signer_rejected() {
        let (reg, s0, s1) = setup();
        let mut sig = sign(&s0, b"msg");
        sig.signer = s1.id;
        assert!(!verify(&reg, b"msg", &sig));
    }

    #[test]
    fn unknown_signer_rejected() {
        let (reg, s0, _) = setup();
        let mut sig = sign(&s0, b"msg");
        sig.signer = ProcessId::server(50);
        assert!(!verify(&reg, b"msg", &sig));
    }

    #[test]
    fn forged_signature_rejected() {
        let (reg, s0, _) = setup();
        let sig = Signature::forged(s0.id);
        assert!(!verify(&reg, b"msg", &sig));
    }

    #[test]
    fn sign_with_matches_sign() {
        let (_, s0, _) = setup();
        let key = HmacSha512Key::new(&s0.secret.0);
        assert_eq!(sign_with(&key, s0.id, b"payload"), sign(&s0, b"payload"));
    }

    #[test]
    fn sig_verifier_agrees_with_verify_and_handles_late_registration() {
        let (reg, s0, s1) = setup();
        let mut verifier = SigVerifier::new();
        // Repeated verifications under cached schedules agree with the
        // uncached path, across signers and verdicts.
        for msg in [b"a".as_slice(), b"bb", b"ccc"] {
            for signer in [&s0, &s1] {
                let good = sign(signer, msg);
                assert!(verifier.verify(&reg, msg, &good));
                assert!(!verifier.verify(&reg, b"other", &good));
            }
        }
        let forged = Signature::forged(s0.id);
        assert!(!verifier.verify(&reg, b"msg", &forged));
        // Unknown signer: rejected, and picked up once registered later.
        let late = KeyPair::derive(ProcessId::server(9), 555);
        let sig = sign(&late, b"late");
        assert!(!verifier.verify(&reg, b"late", &sig));
        reg.register(late);
        assert!(verifier.verify(&reg, b"late", &sig));
    }

    #[test]
    fn signatures_are_deterministic() {
        let (_, s0, _) = setup();
        assert_eq!(sign(&s0, b"m"), sign(&s0, b"m"));
        assert_ne!(sign(&s0, b"m").bytes, sign(&s0, b"n").bytes);
    }

    #[test]
    fn signature_wire_len() {
        let (_, s0, _) = setup();
        let sig = sign(&s0, b"m");
        assert_eq!(sig.wire_len(), 72);
    }

    #[test]
    fn verify_batch_matches_individual_verify() {
        let (reg, s0, s1) = setup();
        let msgs: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i; 10 + i as usize]).collect();
        let mut sigs: Vec<Signature> = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| sign(if i % 2 == 0 { &s0 } else { &s1 }, m))
            .collect();
        // Corrupt a few entries: forged MAC, unknown signer, wrong signer.
        sigs[3] = Signature::forged(s0.id);
        sigs[7].signer = ProcessId::server(50);
        sigs[9].signer = if sigs[9].signer == s0.id {
            s1.id
        } else {
            s0.id
        };
        let items: Vec<(&[u8], &Signature)> =
            msgs.iter().map(|m| m.as_slice()).zip(sigs.iter()).collect();
        let batched = verify_batch(&reg, items.iter().copied());
        let individual: Vec<bool> = items.iter().map(|(m, s)| verify(&reg, m, s)).collect();
        assert_eq!(batched, individual);
        assert!(!batched[3] && !batched[7] && !batched[9]);
        assert!(batched[0] && batched[1]);
        assert!(verify_batch(&reg, std::iter::empty()).is_empty());
    }
}
