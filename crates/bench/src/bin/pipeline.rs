//! End-to-end pipeline benchmark: wall-clock adds/sec through the three
//! Setchain servers, with JSON output and a CI regression gate.
//!
//! Usage:
//!
//! ```text
//! pipeline [--quick] [--repeats N] [--out FILE] [--check-baseline FILE]
//!          [--auth-mode MODE] [--parallel-sims N] [--shards N] [--store]
//! ```
//!
//! * `--quick` — shorter simulated runs (CI smoke mode).
//! * `--repeats N` — best-of-N per grid point (default 3; 1 in quick mode).
//! * `--out FILE` — write the measured grid as JSON.
//! * `--check-baseline FILE` — read a previously committed JSON (e.g.
//!   `BENCH_pr8.json`) and exit non-zero if any grid point regressed more
//!   than 20% versus its `after` entry.
//! * `--auth-mode MODE` — which submission authentication modes the auth
//!   grid runs: `both` (default), `per-element`, or `batch-root`.
//! * `--parallel-sims N` — instead of the grid, sweep the hashchain_b64
//!   point over N seeds with one independent simulation per OS thread
//!   (`parallel_map`): per-seed committed counts are deterministic, and the
//!   aggregate committed/sec shows the multicore headroom a 1-core CI box
//!   cannot (each simulation stays single-threaded and bit-reproducible).
//! * `--shards N` — number of per-server admission shards for the shard
//!   grid (PR 8; default 1, accepted values 1/2/4/8). The grid records the
//!   unsharded twin next to the sharded point so the committed-count
//!   invariant is visible in the JSON; combines with `--parallel-sims` to
//!   sweep the sharded point across seeds.
//! * `--store` — add the store-backed grid point (PR 9): the Hashchain
//!   workhorse drain point persisting every committed epoch to a temporary
//!   segment store. Off by default, so the in-memory grid labels stay
//!   byte-comparable to their committed baselines; the `_store` label is
//!   new, and the gate skips labels absent from the baseline.
//! * `--adversary PRESET` — add the adversarial grid (PR 10): the Hashchain
//!   workhorse drain point with per-client quotas on under `flood`,
//!   `replay`, `hotkey` or `churn`, next to its attack-free twin at the
//!   same seed. The attack client never records into the experiment trace,
//!   so the attacked point's committed/sec is honest goodput. Off by
//!   default; the `_adv_*` labels are new, and the gate skips labels
//!   absent from the baseline.

use std::process::ExitCode;

use setchain::{Algorithm, AuthMode};
use setchain_bench::pipeline::{
    adversary_grid, auth_grid, compresschain_grid, degraded_grid, grid, run_parallel_sims,
    run_pipeline_best_of, shard_grid, store_grid, PipelineConfig, PipelineResult,
};
use setchain_workload::Adversary;

struct Args {
    quick: bool,
    repeats: usize,
    out: Option<String>,
    check_baseline: Option<String>,
    auth_modes: Vec<AuthMode>,
    parallel_sims: usize,
    shards: usize,
    store: bool,
    adversary: Option<Adversary>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        repeats: 0,
        out: None,
        check_baseline: None,
        auth_modes: vec![AuthMode::PerElement, AuthMode::BatchRoot],
        parallel_sims: 0,
        shards: 1,
        store: false,
        adversary: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--repeats" => {
                args.repeats = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--repeats takes a positive integer");
            }
            "--out" => args.out = Some(it.next().expect("--out takes a path")),
            "--check-baseline" => {
                args.check_baseline = Some(it.next().expect("--check-baseline takes a path"))
            }
            "--auth-mode" => {
                let mode = it.next().expect("--auth-mode takes a mode");
                args.auth_modes = match mode.as_str() {
                    "both" => vec![AuthMode::PerElement, AuthMode::BatchRoot],
                    "per-element" => vec![AuthMode::PerElement],
                    "batch-root" => vec![AuthMode::BatchRoot],
                    other => {
                        panic!("--auth-mode takes both | per-element | batch-root, got {other}")
                    }
                };
            }
            "--parallel-sims" => {
                args.parallel_sims = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .expect("--parallel-sims takes a positive integer");
            }
            "--shards" => {
                args.shards = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|n| [1usize, 2, 4, 8].contains(n))
                    .expect("--shards takes 1, 2, 4 or 8");
            }
            "--store" => args.store = true,
            "--adversary" => {
                let preset = it.next().expect("--adversary takes a preset");
                args.adversary = Some(
                    Adversary::parse(&preset)
                        .unwrap_or_else(|| panic!("unknown adversary preset: {preset}")),
                );
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    if args.repeats == 0 {
        args.repeats = if args.quick { 1 } else { 3 };
    }
    args
}

/// Extracts `"<label>": { ... "adds_per_sec": <f64> ... }` from the given
/// section of a baseline JSON file without a JSON dependency: the file is
/// machine-written by this binary, so a scan for the section key, then the
/// label key, then the first `adds_per_sec` number after it is reliable.
fn baseline_adds_per_sec(json: &str, section: &str, label: &str) -> Option<f64> {
    let after = json.split(&format!("\"{section}\"")).nth(1)?;
    let at = after.split(&format!("\"{label}\"")).nth(1)?;
    let num = at.split("\"adds_per_sec\":").nth(1)?;
    let num = num
        .trim_start()
        .split(|c: char| c == ',' || c == '}' || c.is_whitespace())
        .next()?;
    num.parse().ok()
}

fn json_entry(label: &str, r: &PipelineResult) -> String {
    format!(
        "    \"{label}\": {{ \"added\": {}, \"committed\": {}, \"wall_secs\": {:.3}, \"adds_per_sec\": {:.1} }}",
        r.added,
        r.committed,
        r.wall.as_secs_f64(),
        r.adds_per_sec
    )
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.parallel_sims > 0 {
        // The sweep mode neither writes grid JSON nor runs the regression
        // gate; refuse the combination instead of silently dropping flags.
        assert!(
            args.out.is_none() && args.check_baseline.is_none(),
            "--parallel-sims is a standalone sweep: it does not honour --out or --check-baseline"
        );
        return run_parallel_sweep(&args);
    }
    println!(
        "pipeline bench ({} mode, best of {})",
        if args.quick { "quick" } else { "standard" },
        args.repeats
    );
    println!(
        "{:<30} {:>9} {:>9} {:>9} {:>14} {:>15} {:>11} {:>6}",
        "grid point",
        "added",
        "committed",
        "wall(s)",
        "adds/sec (wall)",
        "cache hit/miss",
        "roots ok/no",
        "shed"
    );

    // Historical grid (unchanged since PR 2) followed by the drain-mode
    // compresschain grid (PR 3), the authentication-mode grid (PR 6), the
    // degraded-mode grid (PR 7), the sharded-admission grid (PR 8), the
    // opt-in store-backed grid (PR 9) and the opt-in adversarial grid
    // (PR 10); one flat label space in reports and JSON.
    let mut configs: Vec<PipelineConfig> = grid()
        .into_iter()
        .map(|(algorithm, batch)| {
            if args.quick {
                PipelineConfig::quick(algorithm, batch)
            } else {
                PipelineConfig::standard(algorithm, batch)
            }
        })
        .collect();
    configs.extend(compresschain_grid(args.quick));
    configs.extend(auth_grid(args.quick, &args.auth_modes));
    configs.extend(degraded_grid(args.quick));
    configs.extend(shard_grid(args.quick, args.shards));
    configs.extend(store_grid(args.quick, args.store));
    configs.extend(adversary_grid(args.quick, args.adversary));

    let mut entries: Vec<(String, PipelineResult)> = Vec::new();
    for config in &configs {
        let result = run_pipeline_best_of(config, args.repeats);
        println!(
            "{:<30} {:>9} {:>9} {:>9.2} {:>14.0} {:>15} {:>11} {:>6}",
            config.label(),
            result.added,
            result.committed,
            result.wall.as_secs_f64(),
            result.adds_per_sec,
            format!("{}/{}", result.cache_hits, result.cache_misses),
            format!(
                "{}/{}",
                result.batch_roots_verified, result.batch_roots_rejected
            ),
            result.quota_shed
        );
        entries.push((config.label(), result));
    }

    // The section key matches the mode ("quick" vs "after"), so a file
    // written by `--quick --out` is directly usable as the baseline for a
    // later `--quick --check-baseline` — and the file contains the section
    // token exactly once, which keeps the dependency-free scanner reliable.
    let section = if args.quick { "quick" } else { "after" };
    if let Some(path) = &args.out {
        let body: Vec<String> = entries.iter().map(|(l, r)| json_entry(l, r)).collect();
        let json = format!(
            "{{\n  \"{}\": {{\n{}\n  }}\n}}\n",
            section,
            body.join(",\n")
        );
        std::fs::write(path, json).expect("write --out file");
        println!("[written: {path}]");
    }

    if let Some(path) = &args.check_baseline {
        let json = std::fs::read_to_string(path).expect("read baseline file");
        // Compare like with like: quick-mode runs check against the
        // baseline's committed quick-mode section, standard runs against
        // the standard `after` section.
        let mut failed = false;
        for (config, (label, result)) in configs.iter().zip(&entries) {
            let Some(base) = baseline_adds_per_sec(&json, section, label) else {
                println!("baseline: no \"{section}\" entry for {label}, skipping");
                continue;
            };
            let floor = 0.8 * base;
            let mut measured = result.adds_per_sec;
            // A point below its floor gets one clean re-measurement before
            // the gate fails: the quick runs are tens of milliseconds, so a
            // single scheduler hiccup on a shared CI runner can halve a
            // point, while a real regression reproduces immediately.
            if measured < floor {
                let retry = run_pipeline_best_of(config, args.repeats);
                println!(
                    "baseline check {label}: measured {:.0} below floor, retrying -> {:.0}",
                    measured, retry.adds_per_sec
                );
                measured = measured.max(retry.adds_per_sec);
            }
            let ok = measured >= floor;
            println!(
                "baseline check {label}: measured {:.0} vs committed {:.0} (floor {:.0}) -> {}",
                measured,
                base,
                floor,
                if ok { "ok" } else { "REGRESSION" }
            );
            // CI runners are slower and noisier than the machine that wrote
            // the committed baseline; the gate compares quick-mode runs
            // against the committed quick-mode floor scaled by the 20%
            // tolerance the acceptance criteria name.
            if !ok {
                failed = true;
            }
        }
        if failed {
            eprintln!("pipeline bench: adds/sec regressed >20% vs {path}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// The `--parallel-sims` mode: one grid point, many seeds, one OS thread
/// per independent simulation. `--shards` carries over, so the sweep can
/// pair outer-loop parallelism (one simulation per thread) with the
/// inner sharded validation fan-out each server runs.
fn run_parallel_sweep(args: &Args) -> ExitCode {
    let mut config = if args.quick {
        PipelineConfig::quick(Algorithm::Hashchain, 64)
    } else {
        PipelineConfig::standard(Algorithm::Hashchain, 64)
    };
    config.shards = args.shards;
    let seeds: Vec<u64> = (0..args.parallel_sims as u64).map(|i| 7 + i * 13).collect();
    let threads = setchain_crypto::default_threads();
    println!(
        "parallel-sims sweep: {} x {} ({} worker thread{})",
        seeds.len(),
        config.label(),
        threads.min(seeds.len()),
        if threads.min(seeds.len()) == 1 {
            ""
        } else {
            "s"
        },
    );
    let wall_start = std::time::Instant::now();
    let results = run_parallel_sims(&config, &seeds);
    let wall = wall_start.elapsed();
    println!(
        "{:<8} {:>9} {:>9} {:>9} {:>14}",
        "seed", "added", "committed", "wall(s)", "adds/sec (wall)"
    );
    let mut committed_total = 0u64;
    for (r, seed) in results.iter().zip(&seeds) {
        committed_total += r.committed;
        println!(
            "{:<8} {:>9} {:>9} {:>9.2} {:>14.0}",
            seed,
            r.added,
            r.committed,
            r.wall.as_secs_f64(),
            r.adds_per_sec
        );
    }
    let serial: f64 = results.iter().map(|r| r.wall.as_secs_f64()).sum();
    println!(
        "aggregate: {} committed in {:.2}s wall ({:.0} committed/sec; serial sum {:.2}s, {:.2}x)",
        committed_total,
        wall.as_secs_f64(),
        committed_total as f64 / wall.as_secs_f64().max(1e-9),
        serial,
        serial / wall.as_secs_f64().max(1e-9),
    );
    ExitCode::SUCCESS
}
