//! The injection client: one per server, adding elements to its local
//! Setchain server at a configured rate (the paper's
//! `sending_rate / server_count` per client).

use std::any::Any;
use std::collections::HashSet;

use setchain::{AuthMode, Element, ElementId, LightClient, SetchainMsg, SetchainTrace, SetchainTx};
use setchain_crypto::ProcessId;
use setchain_ledger::NetMsg;
use setchain_simnet::{Context, Process, SimDuration, SimTime, TimerToken};

use crate::generator::ArbitrumWorkload;

/// Message type of Setchain deployments.
pub type Msg = NetMsg<SetchainTx, SetchainMsg>;

const INJECT_TICK: TimerToken = 1;

/// An injection client actor.
pub struct ClientDriver {
    server: ProcessId,
    workload: ArbitrumWorkload,
    /// Elements per second this client adds.
    rate: f64,
    /// Injection stops at this time.
    injection_end: SimTime,
    tick: SimDuration,
    carry: f64,
    trace: SetchainTrace,
    sent: u64,
    auth: AuthMode,
    /// Injection is paused until this instant after the server sheds a
    /// submission with `Rejected { retry_after }` — the polite-client
    /// response to overload protection. `ZERO` when not backing off.
    backoff_until: SimTime,
    rejections: u64,
}

impl ClientDriver {
    /// Creates a driver that adds to `server` at `rate` el/s until
    /// `injection_end`.
    pub fn new(
        server: ProcessId,
        workload: ArbitrumWorkload,
        rate: f64,
        injection_end: SimTime,
        trace: SetchainTrace,
    ) -> Self {
        assert!(rate > 0.0, "sending rate must be positive");
        ClientDriver {
            server,
            workload,
            rate,
            injection_end,
            tick: SimDuration::from_millis(20),
            carry: 0.0,
            trace,
            sent: 0,
            auth: AuthMode::default(),
            backoff_until: SimTime::ZERO,
            rejections: 0,
        }
    }

    /// Builder: sets how submissions are authenticated. Under
    /// [`AuthMode::BatchRoot`] each injection tick is sealed into one
    /// [`setchain::AuthedBatch`] (one MAC over the Merkle root) instead of a
    /// plain `AddBatch` of per-element-authenticated elements.
    pub fn with_auth_mode(mut self, mode: AuthMode) -> Self {
        self.auth = mode;
        self
    }

    /// Number of elements sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Number of `Rejected { retry_after }` replies received — each paused
    /// injection until the server's hint elapsed.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }
}

impl Process<Msg> for ClientDriver {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        ctx.set_timer(self.tick, INJECT_TICK);
    }

    fn on_message(&mut self, _from: ProcessId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        // Responses to get() requests are handled by example binaries; the
        // throughput driver only reacts to overload sheds.
        if let NetMsg::App(SetchainMsg::Rejected { retry_after }) = msg {
            self.rejections += 1;
            self.backoff_until = self.backoff_until.max(ctx.now() + retry_after);
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<'_, Msg>) {
        if token != INJECT_TICK {
            return;
        }
        let now = ctx.now();
        if now > self.injection_end {
            return; // stop injecting; do not re-arm
        }
        if now < self.backoff_until {
            // Shed by the server: stay quiet until the retry hint elapses.
            // The skipped ticks' elements are simply not generated — the
            // driver offers a lower rate rather than bursting on resume.
            ctx.set_timer(self.tick, INJECT_TICK);
            return;
        }
        let due = self.rate * self.tick.as_secs_f64() + self.carry;
        let count = due.floor() as usize;
        self.carry = due - count as f64;
        if count > 0 {
            let elements = self.workload.take(count);
            self.trace.record_adds(elements.iter().map(|e| e.id), now);
            self.sent += count as u64;
            let msg = match self.auth {
                AuthMode::BatchRoot => SetchainMsg::BatchedAdd(self.workload.seal(elements)),
                _ => SetchainMsg::AddBatch(elements),
            };
            ctx.send(self.server, NetMsg::App(msg));
        }
        ctx.set_timer(self.tick, INJECT_TICK);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// How a retried add behaves until it confirms: per-attempt deadline
/// (doubling each attempt, bounded exponential backoff), attempt budget, and
/// the confirmation-probe cadence.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Wait after the first send before failing over to the next server;
    /// doubles on every subsequent attempt (capped at 64×).
    pub deadline: SimDuration,
    /// Maximum number of send attempts before the add is abandoned.
    pub max_attempts: u32,
    /// Cadence of the confirmation probe loop (`get` snapshots followed by
    /// `get_epoch` audits of any new epochs).
    pub probe_interval: SimDuration,
}

impl Default for RetryPolicy {
    /// Two-second initial deadline, five attempts, half-second probes —
    /// enough to survive a crashed-then-restarted or partitioned target in
    /// the chaos scenarios without flooding a healthy deployment.
    fn default() -> Self {
        RetryPolicy {
            deadline: SimDuration::from_secs(2),
            max_attempts: 5,
            probe_interval: SimDuration::from_millis(500),
        }
    }
}

/// One add driven by the retry/failover state machine: the element, the
/// failover ring of servers to try in order, and the policy bounding it.
#[derive(Clone, Debug)]
pub struct RetryAdd {
    /// The signed element to add.
    pub element: Element,
    /// When the first attempt is sent.
    pub first_at: SimTime,
    /// Servers to try, in failover order (attempt `k` goes to entry
    /// `k mod len`).
    pub targets: Vec<ProcessId>,
    /// Deadlines and budgets.
    pub policy: RetryPolicy,
}

/// Post-run report for one [`RetryAdd`].
#[derive(Clone, Copy, Debug)]
pub struct RetryReport {
    /// Id of the retried element.
    pub id: ElementId,
    /// Send attempts actually made.
    pub attempts: u32,
    /// Server whose verified epoch confirmed the element, if any.
    pub final_server: Option<ProcessId>,
    /// Simulated time the confirming verified epoch arrived, if any.
    pub confirmed_at: Option<SimTime>,
    /// True if the attempt budget ran out before confirmation.
    pub gave_up: bool,
}

/// Runtime state of one retried add.
struct RetryState {
    spec: RetryAdd,
    attempts: u32,
    next_target: usize,
    confirmed_at: Option<SimTime>,
    confirmed_by: Option<ProcessId>,
    gave_up: bool,
}

impl RetryState {
    fn resolved(&self) -> bool {
        self.confirmed_at.is_some() || self.gave_up
    }

    /// The server the most recent attempt went to (the initial target before
    /// any send).
    fn current_target(&self) -> ProcessId {
        let i = self.next_target.saturating_sub(1) % self.spec.targets.len();
        self.spec.targets[i]
    }
}

/// Timer-token space of [`RequestClient`]: plain script entries use their
/// index, retried-add attempt deadlines live at `ATTEMPT_BASE + index`, and
/// the confirmation loop uses two fixed tokens above those.
const ATTEMPT_BASE: TimerToken = 1 << 32;
const PROBE_TOKEN: TimerToken = 1 << 33;
const REAUDIT_TOKEN: TimerToken = (1 << 33) + 1;

/// Cap on `get_epoch` audits sent per `get` snapshot, so a probe against a
/// far-ahead server does not flood the network in one burst; later probes
/// pick up where the burst stopped.
const MAX_AUDIT_BURST: usize = 32;

/// A scripted client actor: sends pre-programmed requests (adds, `get`,
/// `get_epoch`) to servers at given times and records every application-level
/// response it receives. Used by the examples and the light-client
/// integration tests to exercise the client-facing API over the simulated
/// network instead of peeking into server state.
///
/// With [`RequestClient::with_retries`] it additionally drives adds through a
/// deadline/retry/failover state machine: each [`RetryAdd`] is re-sent to the
/// next server in its failover ring whenever its (doubling) deadline passes
/// without confirmation, and a probe loop audits new epochs with `f + 1`
/// proof verification until every retried add is confirmed or abandoned. A
/// [`NotEnoughProofs`](setchain::EpochVerification::NotEnoughProofs) verdict on an
/// epoch containing a retried element re-audits that epoch after the
/// verdict's `retry_after` hint.
pub struct RequestClient {
    script: Vec<(SimTime, ProcessId, SetchainMsg)>,
    responses: Vec<(SimTime, ProcessId, SetchainMsg)>,
    retries: Vec<RetryState>,
    /// Light client used to issue audit requests and verify epoch responses;
    /// `None` when the actor only replays its script.
    verifier: Option<LightClient>,
    /// Epochs already confirmed by an `f + 1`-proof verified response.
    verified_epochs: HashSet<u64>,
    /// Lowest epoch not yet verified: audits start here.
    audit_low: u64,
    /// Epochs to re-audit once the `retry_after` hint elapses, with the
    /// server to ask.
    pending_reaudits: Vec<(u64, ProcessId)>,
}

impl RequestClient {
    /// Creates a client that will send each `(time, server, message)` entry.
    pub fn new(mut script: Vec<(SimTime, ProcessId, SetchainMsg)>) -> Self {
        script.sort_by_key(|(t, _, _)| *t);
        RequestClient {
            script,
            responses: Vec::new(),
            retries: Vec::new(),
            verifier: None,
            verified_epochs: HashSet::new(),
            audit_low: 1,
            pending_reaudits: Vec::new(),
        }
    }

    /// Builder: drives `retries` through the retry/failover machine,
    /// verifying confirmations with `verifier` (which must already know the
    /// retried element ids — see [`LightClient::add`]).
    pub fn with_retries(mut self, retries: Vec<RetryAdd>, verifier: LightClient) -> Self {
        assert!(
            retries.iter().all(|r| !r.targets.is_empty()),
            "retried adds need at least one target server"
        );
        self.retries = retries
            .into_iter()
            .map(|spec| RetryState {
                spec,
                attempts: 0,
                next_target: 0,
                confirmed_at: None,
                confirmed_by: None,
                gave_up: false,
            })
            .collect();
        self.verifier = Some(verifier);
        self
    }

    /// Responses received so far, with arrival time and responding server.
    pub fn responses(&self) -> &[(SimTime, ProcessId, SetchainMsg)] {
        &self.responses
    }

    /// Post-run reports for the retried adds, in submission order.
    pub fn retry_reports(&self) -> Vec<RetryReport> {
        self.retries
            .iter()
            .map(|r| RetryReport {
                id: r.spec.element.id,
                attempts: r.attempts,
                final_server: r.confirmed_by,
                confirmed_at: r.confirmed_at,
                gave_up: r.gave_up,
            })
            .collect()
    }

    /// One attempt of retry `i`: send (or re-send, to the next server in the
    /// failover ring) and arm the doubled deadline, or give up once the
    /// attempt budget is spent.
    fn on_attempt(&mut self, i: usize, ctx: &mut Context<'_, Msg>) {
        let Some(r) = self.retries.get_mut(i) else {
            return;
        };
        if r.resolved() {
            return;
        }
        if r.attempts >= r.spec.policy.max_attempts {
            r.gave_up = true;
            return;
        }
        let target = r.spec.targets[r.next_target % r.spec.targets.len()];
        r.next_target += 1;
        r.attempts += 1;
        // Duplicate sends are protocol-safe (servers dedup by element id),
        // so failover just re-sends blindly to the next server.
        ctx.send(target, NetMsg::App(SetchainMsg::Add(r.spec.element)));
        let backoff = r.spec.policy.deadline * (1u64 << (r.attempts - 1).min(6));
        ctx.set_timer(backoff, ATTEMPT_BASE + i as TimerToken);
    }

    /// One tick of the confirmation loop: snapshot the current target of the
    /// first unresolved retry, then (on response) audit any new epochs. Stops
    /// re-arming once every retried add is confirmed or abandoned, so the
    /// simulation can go quiescent.
    fn on_probe(&mut self, ctx: &mut Context<'_, Msg>) {
        let Some(first) = self.retries.iter().find(|r| !r.resolved()) else {
            return;
        };
        let target = first.current_target();
        let interval = first.spec.policy.probe_interval;
        let get = self
            .verifier
            .as_mut()
            .expect("retries imply verifier")
            .get();
        ctx.send(target, NetMsg::App(get));
        ctx.set_timer(interval, PROBE_TOKEN);
    }

    /// Re-audits the epochs whose `retry_after` hint elapsed.
    fn on_reaudit(&mut self, ctx: &mut Context<'_, Msg>) {
        let pending = std::mem::take(&mut self.pending_reaudits);
        let Some(verifier) = self.verifier.as_mut() else {
            return;
        };
        for (epoch, server) in pending {
            if self.verified_epochs.contains(&epoch) {
                continue;
            }
            ctx.send(server, NetMsg::App(verifier.get_epoch(epoch)));
        }
    }

    /// Inspects a response for the retry machine: snapshots trigger epoch
    /// audits, verified epochs confirm retried adds, and under-proven epochs
    /// holding a retried element schedule a re-audit after the verdict's
    /// `retry_after` hint.
    fn observe(&mut self, from: ProcessId, msg: &SetchainMsg, ctx: &mut Context<'_, Msg>) {
        let Some(verifier) = self.verifier.as_mut() else {
            return;
        };
        match msg {
            SetchainMsg::GetResponse { snapshot, .. } => {
                if !self.retries.iter().any(|r| !r.resolved()) {
                    return;
                }
                let mut burst = 0;
                for epoch in self.audit_low..=snapshot.epoch {
                    if self.verified_epochs.contains(&epoch) {
                        continue;
                    }
                    ctx.send(from, NetMsg::App(verifier.get_epoch(epoch)));
                    burst += 1;
                    if burst >= MAX_AUDIT_BURST {
                        break;
                    }
                }
            }
            SetchainMsg::Rejected { retry_after } => {
                // The server shed our submission under overload protection.
                // Re-fire the attempt machine for the retry whose current
                // target shed us as soon as the hint elapses — the next
                // attempt fails over to the next server in the ring — instead
                // of waiting out the full (doubling) attempt deadline.
                let rejected = self
                    .retries
                    .iter()
                    .position(|r| !r.resolved() && r.attempts > 0 && r.current_target() == from);
                if let Some(i) = rejected {
                    ctx.set_timer(*retry_after, ATTEMPT_BASE + i as TimerToken);
                }
            }
            SetchainMsg::EpochResponse {
                epoch, elements, ..
            } => {
                let Some((verification, mine)) = verifier.verify_response(msg) else {
                    return;
                };
                if verification.is_verified() {
                    self.verified_epochs.insert(*epoch);
                    while self.verified_epochs.remove(&self.audit_low) {
                        self.audit_low += 1;
                    }
                    let now = ctx.now();
                    for r in self.retries.iter_mut().filter(|r| !r.resolved()) {
                        if mine.contains(&r.spec.element.id) {
                            r.confirmed_at = Some(now);
                            r.confirmed_by = Some(from);
                        }
                    }
                } else if let Some(retry_after) = verification.retry_after() {
                    // The epoch exists but is not yet fully proven. If it
                    // holds one of our unresolved elements, the hint tells us
                    // when re-asking is worthwhile.
                    let interesting = self.retries.iter().any(|r| {
                        !r.resolved() && elements.iter().any(|e| e.id == r.spec.element.id)
                    });
                    if interesting && !self.pending_reaudits.iter().any(|(e, _)| e == epoch) {
                        self.pending_reaudits.push((*epoch, from));
                        ctx.set_timer(retry_after, REAUDIT_TOKEN);
                    }
                }
            }
            _ => {}
        }
    }
}

impl Process<Msg> for RequestClient {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        // One timer per scripted entry; the token indexes into the script.
        for (i, (at, _, _)) in self.script.iter().enumerate() {
            ctx.set_timer(at.since(SimTime::ZERO), i as TimerToken);
        }
        // One attempt timer per retried add, plus the probe loop.
        for (i, r) in self.retries.iter().enumerate() {
            ctx.set_timer(
                r.spec.first_at.since(SimTime::ZERO),
                ATTEMPT_BASE + i as TimerToken,
            );
        }
        if let Some(first) = self.retries.first() {
            ctx.set_timer(
                first.spec.first_at.since(SimTime::ZERO) + first.spec.policy.probe_interval,
                PROBE_TOKEN,
            );
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        if let NetMsg::App(m) = msg {
            self.observe(from, &m, ctx);
            self.responses.push((ctx.now(), from, m));
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<'_, Msg>) {
        if token == PROBE_TOKEN {
            self.on_probe(ctx);
        } else if token == REAUDIT_TOKEN {
            self.on_reaudit(ctx);
        } else if token >= ATTEMPT_BASE {
            self.on_attempt((token - ATTEMPT_BASE) as usize, ctx);
        } else if let Some((_, server, msg)) = self.script.get(token as usize) {
            ctx.send(*server, NetMsg::App(msg.clone()));
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setchain_crypto::KeyRegistry;

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let registry = KeyRegistry::bootstrap(1, 1, 1);
        let workload = ArbitrumWorkload::for_client(&registry, ProcessId::client(0), 1);
        let _ = ClientDriver::new(
            ProcessId::server(0),
            workload,
            0.0,
            SimTime::from_secs(1),
            SetchainTrace::new(),
        );
    }
}
