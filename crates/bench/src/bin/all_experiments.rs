//! Runs every experiment (all tables and figures) in sequence.
fn main() {
    let ctx = setchain_bench::ExperimentCtx::from_env();
    println!(
        "Running all experiments with scale = {} (SETCHAIN_SCALE), output in {}",
        ctx.scale,
        ctx.out_dir.display()
    );
    let start = std::time::Instant::now();
    setchain_bench::figures::table1(&ctx);
    setchain_bench::figures::appendix_d(&ctx);
    setchain_bench::figures::fig2_analytical(&ctx);
    setchain_bench::figures::fig1_throughput(&ctx);
    setchain_bench::figures::fig4_latency_cdf(&ctx);
    setchain_bench::figures::fig2_limits(&ctx);
    let results = setchain_bench::figures::fig3_efficiency(&ctx);
    setchain_bench::figures::fig5_commit_times(&ctx, &results);
    println!(
        "\nAll experiments finished in {:.1} minutes.",
        start.elapsed().as_secs_f64() / 60.0
    );
}
