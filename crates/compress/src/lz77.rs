//! LZ77 compressor with a hash-chain match finder.
//!
//! Stream format (all integers are LEB128 varints, see [`crate::varint`]):
//!
//! ```text
//! stream   := original_len token*
//! token    := 0x00 lit_len  byte{lit_len}        (literal run)
//!           | 0x01 match_len distance            (back-reference)
//! ```
//!
//! Matches must have `match_len >= MIN_MATCH` and `distance <= WINDOW`.
//! Decompression validates every distance/length against the bytes produced
//! so far and fails with [`DecompressError`] rather than panicking, because
//! Compresschain servers decompress batches appended by possibly Byzantine
//! peers (Algorithm Compresschain, line 20).

use crate::varint::{read_u64, write_u64};

/// Minimum match length worth encoding as a back-reference.
const MIN_MATCH: usize = 4;
/// Maximum match length (keeps token sizes bounded).
const MAX_MATCH: usize = 1 << 15;
/// Sliding-window size for back-references.
const WINDOW: usize = 1 << 16;
/// Number of hash-chain buckets (power of two).
const HASH_BUCKETS: usize = 1 << 15;
/// Maximum chain positions examined per match attempt; bounds worst-case
/// compressor time on adversarial input.
const MAX_CHAIN: usize = 32;

const TOKEN_LITERAL: u8 = 0x00;
const TOKEN_MATCH: u8 = 0x01;

/// Error returned when a compressed stream is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompressError {
    /// The stream ended in the middle of a token.
    Truncated,
    /// A token had an unknown tag byte.
    BadToken(u8),
    /// A back-reference pointed before the start of the output.
    BadDistance {
        /// Offset in the output where the reference occurred.
        at: usize,
        /// The invalid distance.
        distance: usize,
    },
    /// The decoded output did not match the length declared in the header.
    LengthMismatch {
        /// Length declared in the stream header.
        declared: usize,
        /// Length actually produced.
        actual: usize,
    },
    /// The declared length is unreasonably large (defence against memory
    /// exhaustion from Byzantine input).
    DeclaredTooLarge(u64),
}

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompressError::Truncated => write!(f, "compressed stream truncated"),
            DecompressError::BadToken(t) => write!(f, "unknown token tag {t:#x}"),
            DecompressError::BadDistance { at, distance } => {
                write!(
                    f,
                    "invalid back-reference distance {distance} at output offset {at}"
                )
            }
            DecompressError::LengthMismatch { declared, actual } => {
                write!(f, "declared length {declared} but produced {actual}")
            }
            DecompressError::DeclaredTooLarge(n) => write!(f, "declared length {n} too large"),
        }
    }
}

impl std::error::Error for DecompressError {}

/// Upper bound accepted for the declared decompressed size (64 MiB), far
/// above any batch the Setchain algorithms produce.
const MAX_DECLARED: u64 = 64 * 1024 * 1024;

fn hash4(data: &[u8]) -> usize {
    // Multiplicative hash over the next 4 bytes.
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(2654435761) >> 17) as usize & (HASH_BUCKETS - 1)
}

/// Compresses `data`. The output always starts with the original length so
/// decompression can pre-allocate and validate.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    write_u64(&mut out, data.len() as u64);
    if data.is_empty() {
        return out;
    }

    // head[h] = most recent position with hash h; prev[i % WINDOW] = previous
    // position in the same chain.
    let mut head = vec![usize::MAX; HASH_BUCKETS];
    let mut prev = vec![usize::MAX; WINDOW];

    let mut literal_start = 0usize;
    let mut i = 0usize;

    let flush_literals = |out: &mut Vec<u8>, start: usize, end: usize| {
        if end > start {
            out.push(TOKEN_LITERAL);
            write_u64(out, (end - start) as u64);
            out.extend_from_slice(&data[start..end]);
        }
    };

    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;

        if i + MIN_MATCH <= data.len() {
            let h = hash4(&data[i..]);
            let mut candidate = head[h];
            let mut steps = 0;
            while candidate != usize::MAX && steps < MAX_CHAIN {
                let dist = i - candidate;
                if dist > WINDOW {
                    break;
                }
                // Compare forward from candidate.
                let max_len = (data.len() - i).min(MAX_MATCH);
                let mut len = 0usize;
                while len < max_len && data[candidate + len] == data[i + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_dist = dist;
                    if len >= MAX_MATCH {
                        break;
                    }
                }
                candidate = prev[candidate % WINDOW];
                steps += 1;
            }
        }

        if best_len >= MIN_MATCH {
            flush_literals(&mut out, literal_start, i);
            out.push(TOKEN_MATCH);
            write_u64(&mut out, best_len as u64);
            write_u64(&mut out, best_dist as u64);
            // Insert hash entries for every position covered by the match so
            // later data can reference into it.
            let end = i + best_len;
            while i < end && i + MIN_MATCH <= data.len() {
                let h = hash4(&data[i..]);
                prev[i % WINDOW] = head[h];
                head[h] = i;
                i += 1;
            }
            i = end;
            literal_start = i;
        } else {
            if i + MIN_MATCH <= data.len() {
                let h = hash4(&data[i..]);
                prev[i % WINDOW] = head[h];
                head[h] = i;
            }
            i += 1;
        }
    }
    flush_literals(&mut out, literal_start, data.len());
    out
}

/// Decompresses a stream produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, DecompressError> {
    let mut pos = 0usize;
    let declared = read_u64(data, &mut pos).ok_or(DecompressError::Truncated)?;
    if declared > MAX_DECLARED {
        return Err(DecompressError::DeclaredTooLarge(declared));
    }
    let declared = declared as usize;
    let mut out = Vec::with_capacity(declared);

    while pos < data.len() {
        let tag = data[pos];
        pos += 1;
        match tag {
            TOKEN_LITERAL => {
                let len = read_u64(data, &mut pos).ok_or(DecompressError::Truncated)? as usize;
                if pos + len > data.len() {
                    return Err(DecompressError::Truncated);
                }
                out.extend_from_slice(&data[pos..pos + len]);
                pos += len;
            }
            TOKEN_MATCH => {
                let len = read_u64(data, &mut pos).ok_or(DecompressError::Truncated)? as usize;
                let dist = read_u64(data, &mut pos).ok_or(DecompressError::Truncated)? as usize;
                if dist == 0 || dist > out.len() {
                    return Err(DecompressError::BadDistance {
                        at: out.len(),
                        distance: dist,
                    });
                }
                if out.len() + len > MAX_DECLARED as usize {
                    return Err(DecompressError::DeclaredTooLarge((out.len() + len) as u64));
                }
                let start = out.len() - dist;
                // Overlapping copies (dist < len) are legal and must be done
                // byte by byte.
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
            other => return Err(DecompressError::BadToken(other)),
        }
    }

    if out.len() != declared {
        return Err(DecompressError::LengthMismatch {
            declared,
            actual: out.len(),
        });
    }
    Ok(out)
}

/// Summary of a compression operation, used by experiment reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionStats {
    /// Size of the input in bytes.
    pub original: usize,
    /// Size of the compressed output in bytes.
    pub compressed: usize,
}

impl CompressionStats {
    /// Compresses `data` and records sizes (the output itself is discarded).
    pub fn measure(data: &[u8]) -> Self {
        let compressed = compress(data);
        CompressionStats {
            original: data.len(),
            compressed: compressed.len(),
        }
    }

    /// Compression ratio `original / compressed`.
    pub fn ratio(&self) -> f64 {
        if self.compressed == 0 {
            return 1.0;
        }
        self.original as f64 / self.compressed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SeedableRng};

    #[test]
    fn empty_roundtrip() {
        let c = compress(b"");
        assert_eq!(decompress(&c).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn short_literal_roundtrip() {
        let data = b"abc";
        assert_eq!(decompress(&compress(data)).unwrap(), data);
    }

    #[test]
    fn repetitive_roundtrip_and_shrinks() {
        let data: Vec<u8> = std::iter::repeat_n(b"the quick brown fox ".as_slice(), 200)
            .flatten()
            .copied()
            .collect();
        let c = compress(&data);
        assert!(
            c.len() * 4 < data.len(),
            "compressed {} vs {}",
            c.len(),
            data.len()
        );
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn random_data_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut data = vec![0u8; 50_000];
        rng.fill_bytes(&mut data);
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        // Random data should not blow up much.
        assert!(c.len() < data.len() + data.len() / 8 + 64);
    }

    #[test]
    fn structured_transactions_reach_paper_ratio_range() {
        // Hex-ish payloads with shared prefixes, similar to what the workload
        // generator produces; the paper reports ratios of 2.5-3.5.
        let mut rng = StdRng::seed_from_u64(7);
        let mut batch = Vec::new();
        for i in 0..100 {
            let to = rng.gen_range(0..40u32);
            batch.extend_from_slice(
                format!(
                    "{{\"chainId\":42161,\"from\":\"0x{:040x}\",\"to\":\"0x{:040x}\",\"value\":\"{}\",\
                     \"gas\":\"{}\",\"data\":\"0x{}\"}}",
                    i, to, rng.gen_range(0u64..1_000_000), rng.gen_range(21000u64..900_000),
                    "a3b1c2".repeat(rng.gen_range(10..120))
                )
                .as_bytes(),
            );
        }
        let stats = CompressionStats::measure(&batch);
        assert!(
            stats.ratio() > 2.0,
            "expected ratio above 2, got {:.2}",
            stats.ratio()
        );
        assert_eq!(decompress(&compress(&batch)).unwrap(), batch);
    }

    #[test]
    fn overlapping_match_roundtrip() {
        // "aaaa..." forces dist=1, len>1 overlapping copies.
        let data = vec![b'a'; 1000];
        assert_eq!(decompress(&compress(&data)).unwrap(), data);
    }

    #[test]
    fn truncated_stream_detected() {
        let data = vec![b'x'; 500];
        let mut c = compress(&data);
        c.truncate(c.len() - 3);
        assert!(decompress(&c).is_err());
    }

    #[test]
    fn bad_token_detected() {
        let mut c = compress(b"hello world hello world");
        // Corrupt the first token tag after the header varint.
        let mut pos = 0;
        read_u64(&c, &mut pos).unwrap();
        c[pos] = 0x7E;
        assert!(matches!(
            decompress(&c),
            Err(DecompressError::BadToken(0x7E))
        ));
    }

    #[test]
    fn bad_distance_detected() {
        let mut out = Vec::new();
        write_u64(&mut out, 10);
        out.push(TOKEN_MATCH);
        write_u64(&mut out, 5);
        write_u64(&mut out, 3); // distance 3 with empty output so far
        assert!(matches!(
            decompress(&out),
            Err(DecompressError::BadDistance { .. })
        ));
    }

    #[test]
    fn length_mismatch_detected() {
        let mut c = compress(b"abcdef");
        // Tamper with the declared length (first varint byte).
        c[0] = c[0].wrapping_add(1);
        assert!(matches!(
            decompress(&c),
            Err(DecompressError::LengthMismatch { .. }) | Err(DecompressError::Truncated)
        ));
    }

    #[test]
    fn declared_too_large_rejected() {
        let mut out = Vec::new();
        write_u64(&mut out, MAX_DECLARED + 1);
        assert!(matches!(
            decompress(&out),
            Err(DecompressError::DeclaredTooLarge(_))
        ));
    }

    #[test]
    fn stats_ratio() {
        let stats = CompressionStats {
            original: 100,
            compressed: 40,
        };
        assert!((stats.ratio() - 2.5).abs() < 1e-9);
        let degenerate = CompressionStats {
            original: 0,
            compressed: 0,
        };
        assert_eq!(degenerate.ratio(), 1.0);
    }

    #[test]
    fn error_display_strings() {
        assert!(DecompressError::Truncated.to_string().contains("truncated"));
        assert!(DecompressError::BadToken(9).to_string().contains("token"));
        assert!(DecompressError::BadDistance { at: 1, distance: 2 }
            .to_string()
            .contains("distance"));
        assert!(DecompressError::LengthMismatch {
            declared: 1,
            actual: 2
        }
        .to_string()
        .contains("declared"));
        assert!(DecompressError::DeclaredTooLarge(5)
            .to_string()
            .contains("large"));
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
                prop_assert_eq!(decompress(&compress(&data)).unwrap(), data);
            }

            #[test]
            fn roundtrip_low_entropy(data in proptest::collection::vec(0u8..4, 0..4096)) {
                let c = compress(&data);
                prop_assert_eq!(decompress(&c).unwrap(), data);
            }

            #[test]
            fn decompress_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
                // Arbitrary bytes fed to the decoder must return, not panic.
                let _ = decompress(&data);
            }
        }
    }
}
