//! Workloads, deployments, metrics and the analytical model for the Setchain
//! evaluation.
//!
//! This crate turns the `setchain` algorithm crate into runnable experiments:
//!
//! * [`generator`] — synthetic Arbitrum-like elements reproducing the size
//!   distribution the paper reports (mean 438 B, σ 753.5).
//! * [`scenario`] — the experiment parameter space of Table 1 (sending rate,
//!   collector size, server count, network delay) plus the scenario grids of
//!   every figure.
//! * [`deploy`] — builds a full simulated deployment: `n` ledger nodes each
//!   running a Setchain server application behind the variant-agnostic
//!   [`SetchainApp`](setchain::SetchainApp) trait, plus one injection client
//!   per node (mirroring the paper's one-client-per-Docker-container setup).
//!   Assembled with the fluent [`Deployment::builder`].
//! * [`session`] — typed client sessions (`add`/`add_batch`/`get`/`get_epoch`
//!   returning [`AddReceipt`]/[`BatchReceipt`]/[`SnapshotView`]/
//!   [`VerifiedEpoch`]) replacing raw message scripting.
//! * [`driver`] — the injection client actor.
//! * [`adversary`] — adversarial workload presets (flood, replay storm,
//!   hot-key skew, churn storm) driving one misbehaving client against the
//!   overload-protection path.
//! * [`runner`] — runs a scenario to completion and collects a
//!   [`runner::RunResult`].
//! * [`metrics`] — throughput-over-time series, efficiency, commit-time
//!   percentiles and the per-stage latency CDF of Fig. 4.
//! * [`analysis`] — the analytical throughput model of Appendix D.
//! * [`sweep`] — runs independent scenarios across OS threads.
//!
//! # Example
//!
//! Describe a deployment and query the analytical model:
//!
//! ```
//! use setchain::Algorithm;
//! use setchain_workload::{analytical_throughput, AnalysisParams, Scenario};
//!
//! let scenario = Scenario::base(Algorithm::Hashchain).with_servers(10);
//! assert_eq!(scenario.setchain_f(), 4); // f = ⌊(n−1)/2⌋
//!
//! // Appendix D ranks the algorithms: hashchain > compresschain > vanilla.
//! let params = AnalysisParams::default();
//! assert!(analytical_throughput(Algorithm::Hashchain, &params)
//!     > analytical_throughput(Algorithm::Compresschain, &params));
//! assert!(analytical_throughput(Algorithm::Compresschain, &params)
//!     > analytical_throughput(Algorithm::Vanilla, &params));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod analysis;
pub mod deploy;
pub mod driver;
pub mod generator;
pub mod metrics;
pub mod runner;
pub mod scenario;
pub mod session;
pub mod sweep;

pub use adversary::{Adversary, AdversaryDriver};
pub use analysis::{analytical_throughput, AnalysisParams};
pub use deploy::{Deployment, DeploymentBuilder, ServerHandle, ServerNode};
pub use driver::{ClientDriver, RequestClient, RetryAdd, RetryPolicy, RetryReport};
pub use generator::ArbitrumWorkload;
pub use metrics::{CommitTimes, Efficiency, StageLatencies, ThroughputSeries};
pub use runner::{run_scenario, RunResult};
pub use scenario::Scenario;
pub use session::{
    AddReceipt, BatchReceipt, ClientSession, SessionOutcome, SnapshotView, VerifiedEpoch,
};
pub use sweep::run_scenarios;
