//! Simulated time.
//!
//! Time is measured in integer microseconds since the start of the run.
//! Microsecond resolution is fine-grained enough to model sub-millisecond
//! LAN latencies and CPU costs while keeping arithmetic exact (no floating
//! point drift between runs).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// An instant in simulated time (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// A span of simulated time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation origin.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Builds an instant from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Microseconds since the origin.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// Seconds since the origin, as a float (used for reporting only).
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`; saturates at zero if `earlier` is
    /// in the future.
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from fractional seconds (rounds to microseconds).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid duration {s}");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Microseconds in this duration.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// Milliseconds in this duration (truncating).
    pub fn as_millis(&self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds, as a float (reporting only).
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if the duration is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_micros(7).as_micros(), 7);
        assert_eq!(SimDuration::from_secs_f64(1.25).as_micros(), 1_250_000);
        assert!((SimTime::from_secs(3).as_secs_f64() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!((t - SimTime::from_secs(1)).as_millis(), 500);
        assert_eq!(t.since(SimTime::from_secs(1)).as_millis(), 500);
        // Saturating behaviour when "earlier" is later.
        assert_eq!(SimTime::from_secs(1).since(t), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs(2) - SimDuration::from_secs(5),
            SimDuration::ZERO
        );
        assert_eq!((SimDuration::from_millis(10) * 3).as_millis(), 30);
        assert_eq!((SimDuration::from_millis(10) / 2).as_millis(), 5);
        let total: SimDuration = vec![SimDuration::from_secs(1), SimDuration::from_secs(2)]
            .into_iter()
            .sum();
        assert_eq!(total, SimDuration::from_secs(3));
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_millis(2));
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "0.250s");
        assert!(SimDuration::ZERO.is_zero());
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_float_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
