//! Determinism regression tests for the scheduler overhaul.
//!
//! The drain/bench acceptance criteria rest on one property: the same seed
//! produces the identical event schedule and the identical committed element
//! sets, run after run. The slab process table, the split timer queue and
//! same-instant delivery coalescing must all preserve it — these tests pin
//! it down for every algorithm variant.

use std::collections::BTreeSet;

use setchain::{Algorithm, AuthMode, ElementId};
use setchain_simnet::SimTime;
use setchain_workload::Deployment;

/// Full fingerprint of one deployment run: scheduler counters plus the
/// per-server committed (stamped) element sets and epoch boundaries.
#[derive(Debug, PartialEq, Eq)]
struct RunFingerprint {
    events_processed: u64,
    messages_deferred: u64,
    added: usize,
    committed: usize,
    /// Per-server: the element ids of every recorded epoch, in epoch order.
    epochs: Vec<Vec<BTreeSet<ElementId>>>,
}

fn run_once(algorithm: Algorithm, seed: u64) -> RunFingerprint {
    run_once_with_auth(algorithm, seed, AuthMode::PerElement)
}

fn run_once_with_auth(algorithm: Algorithm, seed: u64, auth: AuthMode) -> RunFingerprint {
    run_once_sharded(algorithm, seed, auth, 1)
}

fn run_once_sharded(
    algorithm: Algorithm,
    seed: u64,
    auth: AuthMode,
    shards: usize,
) -> RunFingerprint {
    let mut deployment = Deployment::builder(algorithm)
        .servers(4)
        .rate(400.0)
        .collector(32)
        .injection_secs(3)
        .max_run_secs(12)
        .auth_mode(auth)
        .shards(shards)
        .seed(seed)
        .build();
    deployment.sim.run_until(SimTime::from_secs(12));
    let epochs = (0..4)
        .map(|i| {
            let state = deployment.server(i).state();
            (1..=state.epoch())
                .map(|e| {
                    state
                        .epoch_elements(e)
                        .expect("epoch in range")
                        .iter()
                        .map(|el| el.id)
                        .collect()
                })
                .collect()
        })
        .collect();
    RunFingerprint {
        events_processed: deployment.sim.events_processed(),
        messages_deferred: deployment.sim.messages_deferred(),
        added: deployment.trace.added_count(),
        committed: deployment.trace.committed_count_by(SimTime::from_secs(12)),
        epochs,
    }
}

#[test]
fn same_seed_reproduces_the_exact_run_for_every_variant() {
    for algorithm in Algorithm::ALL {
        let first = run_once(algorithm, 71);
        let second = run_once(algorithm, 71);
        assert_eq!(
            first, second,
            "{algorithm:?}: same seed must reproduce scheduler counters and \
             committed element sets bit-for-bit"
        );
        assert!(first.added > 0, "{algorithm:?}: clients injected nothing");
        assert!(
            first.committed > 0,
            "{algorithm:?}: nothing committed in the window"
        );
        assert!(first.events_processed > 0);
    }
}

/// Batch-root authentication ships a different message shape (one sealed
/// envelope per injection tick instead of a plain element batch), so its
/// event schedule legitimately differs from per-element runs — but the
/// same-seed reproducibility guarantee must hold for it exactly as for the
/// default mode.
#[test]
fn batch_root_same_seed_reproduces_the_exact_run_for_every_variant() {
    for algorithm in Algorithm::ALL {
        let first = run_once_with_auth(algorithm, 71, AuthMode::BatchRoot);
        let second = run_once_with_auth(algorithm, 71, AuthMode::BatchRoot);
        assert_eq!(
            first, second,
            "{algorithm:?}: same seed under BatchRoot must reproduce the run \
             bit-for-bit"
        );
        assert!(
            first.committed > 0,
            "{algorithm:?}: nothing committed under BatchRoot"
        );
    }
}

/// Sharded admission (PR 8) is host-side organization only: it repartitions
/// each server's caches and `the_set` but charges, messages and verdicts are
/// untouched. Two guarantees follow, both pinned here: same-seed sharded
/// reruns are bit-identical, and the sharded fingerprint — scheduler
/// counters included — *equals* the unsharded one, which is the strongest
/// statement that `shards(1)` and `shards(4)` run the same simulation.
#[test]
fn sharded_runs_reproduce_and_match_the_unsharded_schedule() {
    for algorithm in Algorithm::ALL {
        let unsharded = run_once(algorithm, 71);
        let first = run_once_sharded(algorithm, 71, AuthMode::PerElement, 4);
        let second = run_once_sharded(algorithm, 71, AuthMode::PerElement, 4);
        assert_eq!(
            first, second,
            "{algorithm:?}: same seed at 4 shards must reproduce the run \
             bit-for-bit"
        );
        assert_eq!(
            first, unsharded,
            "{algorithm:?}: sharding leaked into the event schedule or the \
             committed element sets"
        );
        assert!(first.committed > 0, "{algorithm:?}: nothing committed");
    }
}

#[test]
fn different_seeds_produce_different_schedules() {
    let a = run_once(Algorithm::Hashchain, 71);
    let b = run_once(Algorithm::Hashchain, 72);
    // Different jitter draws give a different schedule; the counters are the
    // cheapest witness of that.
    assert_ne!(
        (a.events_processed, a.messages_deferred),
        (b.events_processed, b.messages_deferred),
        "distinct seeds collapsed onto one schedule"
    );
}

#[test]
fn correct_servers_agree_on_committed_epochs_within_a_run() {
    let fp = run_once(Algorithm::Hashchain, 9);
    let reference = &fp.epochs[0];
    for (i, other) in fp.epochs.iter().enumerate().skip(1) {
        let common = reference.len().min(other.len());
        assert_eq!(
            &reference[..common],
            &other[..common],
            "server {i} diverged from server 0 on the common epoch prefix"
        );
    }
}
