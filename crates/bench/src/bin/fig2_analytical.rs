//! Regenerates Fig. 2 (right): analytical throughput vs block size.
fn main() {
    let ctx = setchain_bench::ExperimentCtx::from_env();
    setchain_bench::figures::fig2_analytical(&ctx);
}
