//! Deterministic per-client admission quotas (overload protection).
//!
//! A production Setchain deployment is the public front door of the system —
//! in the rollup construction it *is* the mempool — so it dies first from
//! overload, not from Byzantine equivocation: one flooding client can burn
//! unbounded authenticator-verification CPU and mempool memory with
//! perfectly valid elements. This module bounds what any single client can
//! make a server do, *before* the server spends anything on it.
//!
//! Two independent limits per client, both enforced at the very front of
//! the admission path (ahead of HMAC and batch-root verification — see
//! [`ServerCore::admit_source`](crate::ServerCore::admit_source)):
//!
//! * **Rate** — a token bucket refilled at
//!   [`rate_per_sec`](crate::QuotaConfig::rate_per_sec) elements/second with
//!   [`burst`](crate::QuotaConfig::burst) elements of headroom. Submissions
//!   beyond it are shed and the client is told when the bucket will next
//!   cover the attempt.
//! * **Pending** — at most
//!   [`max_pending`](crate::QuotaConfig::max_pending) elements admitted but
//!   not yet stamped into an epoch. This caps the per-client share of
//!   `the_set` working memory even when the rate limit alone would admit
//!   more; stamping an epoch returns the capacity.
//!
//! **Determinism.** The bucket is integer arithmetic over simulated time
//! only: refills are computed from `ctx.now()` deltas in micro-token units
//! (one element = 1 000 000 micro-tokens, so an elements/second rate times
//! an elapsed-microseconds delta is exact with zero rounding state). No RNG
//! stream is consumed and no host clock is read, so a quota-on run is as
//! bit-replayable as a quota-off run — same seed, same sheds, same
//! `retry_after` hints.

use setchain_crypto::{FxHashMap, ProcessId};
use setchain_simnet::{SimDuration, SimTime};

use crate::config::QuotaConfig;

/// Micro-tokens per element: makes `rate_per_sec * elapsed_micros` an exact
/// integer refill with no fractional carry state.
const TOKEN_SCALE: u64 = 1_000_000;

/// `retry_after` hint for a pending-cap shed. Rate sheds compute the exact
/// bucket-refill instant; the pending cap drains on epoch stamping, whose
/// timing depends on the collector and ledger, so the hint is one default
/// collector timeout — the cadence at which pending elements leave for an
/// epoch under load.
pub const PENDING_RETRY: SimDuration = SimDuration(200_000);

/// Outcome of a quota probe: admit the submission, or shed it and tell the
/// sender when a retry could succeed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuotaVerdict {
    /// Within quota: tokens were consumed, proceed to validation.
    Admit,
    /// Over quota: nothing was consumed; the sender should wait at least
    /// `retry_after` before re-submitting.
    Shed {
        /// Earliest delay after which the same submission could be admitted
        /// (exact for rate sheds, a drain-cadence hint for pending sheds).
        retry_after: SimDuration,
    },
}

/// One client's bucket and pending count.
#[derive(Clone, Copy, Debug)]
struct ClientQuota {
    /// Micro-tokens currently available (≤ `burst * TOKEN_SCALE`).
    tokens: u64,
    /// Simulated instant of the last refill.
    refilled_at: SimTime,
    /// Elements admitted by this server but not yet stamped into an epoch.
    pending: u64,
}

/// Per-client quota state for one server (see the module docs).
pub struct QuotaState {
    config: QuotaConfig,
    clients: FxHashMap<ProcessId, ClientQuota>,
    /// Elements shed by the rate limit.
    shed_rate: u64,
    /// Elements shed by the pending cap.
    shed_pending: u64,
}

impl QuotaState {
    /// Creates quota state enforcing `config`.
    pub fn new(config: QuotaConfig) -> Self {
        QuotaState {
            config,
            clients: FxHashMap::default(),
            shed_rate: 0,
            shed_pending: 0,
        }
    }

    /// The enforced configuration.
    pub fn config(&self) -> &QuotaConfig {
        &self.config
    }

    fn bucket(&mut self, client: ProcessId, now: SimTime) -> &mut ClientQuota {
        self.clients.entry(client).or_insert(ClientQuota {
            // A new client starts with a full bucket: the burst headroom is
            // exactly what lets a well-behaved client open with one full
            // collector batch.
            tokens: self.config.burst.saturating_mul(TOKEN_SCALE),
            refilled_at: now,
            pending: 0,
        })
    }

    /// Probes whether `client` may submit `elements` more elements at `now`,
    /// consuming tokens on admit and nothing on shed.
    pub fn admit(&mut self, client: ProcessId, elements: u64, now: SimTime) -> QuotaVerdict {
        let rate = self.config.rate_per_sec;
        let burst_tokens = self.config.burst.saturating_mul(TOKEN_SCALE);
        let max_pending = self.config.max_pending;
        let bucket = self.bucket(client, now);

        // Refill from simulated time elapsed since the last probe: the
        // elements/second rate times a microsecond delta is already in
        // micro-tokens, exactly.
        let elapsed = now.since(bucket.refilled_at).as_micros();
        bucket.tokens = bucket
            .tokens
            .saturating_add(rate.saturating_mul(elapsed))
            .min(burst_tokens);
        bucket.refilled_at = now;

        // The pending cap is checked first: when a client's earlier adds
        // are stuck waiting for an epoch, more tokens would not make the
        // submission admissible.
        if max_pending > 0 && bucket.pending.saturating_add(elements) > max_pending {
            self.shed_pending += elements;
            return QuotaVerdict::Shed {
                retry_after: PENDING_RETRY,
            };
        }

        let cost = elements.saturating_mul(TOKEN_SCALE);
        if bucket.tokens >= cost {
            bucket.tokens -= cost;
            QuotaVerdict::Admit
        } else {
            let deficit = cost - bucket.tokens;
            self.shed_rate += elements;
            QuotaVerdict::Shed {
                // Exact earliest instant the refill covers the deficit,
                // rounded up to whole microseconds.
                retry_after: SimDuration::from_micros(deficit.div_ceil(rate)),
            }
        }
    }

    /// Records that `elements` elements from `client` were actually inserted
    /// into the server's state (admitted and neither invalid nor duplicate),
    /// counting against the pending cap until stamped.
    pub fn note_admitted(&mut self, client: ProcessId, elements: u64) {
        if let Some(bucket) = self.clients.get_mut(&client) {
            bucket.pending = bucket.pending.saturating_add(elements);
        }
    }

    /// Records that `elements` elements from `client` were stamped into an
    /// epoch, releasing pending capacity.
    pub fn note_stamped(&mut self, client: ProcessId, elements: u64) {
        if let Some(bucket) = self.clients.get_mut(&client) {
            bucket.pending = bucket.pending.saturating_sub(elements);
        }
    }

    /// Elements currently admitted-but-unstamped for `client`.
    pub fn pending(&self, client: ProcessId) -> u64 {
        self.clients.get(&client).map_or(0, |b| b.pending)
    }

    /// Total elements shed by the rate limit.
    pub fn shed_rate(&self) -> u64 {
        self.shed_rate
    }

    /// Total elements shed by the pending cap.
    pub fn shed_pending(&self) -> u64 {
        self.shed_pending
    }

    /// Number of clients with quota state.
    pub fn clients(&self) -> usize {
        self.clients.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quota(rate: u64, burst: u64, max_pending: u64) -> QuotaState {
        QuotaState::new(
            QuotaConfig::new()
                .with_rate(rate)
                .with_burst(burst)
                .with_max_pending(max_pending),
        )
    }

    fn at_millis(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn fresh_client_gets_a_full_burst_then_sheds() {
        let mut q = quota(100, 50, 0);
        let c = ProcessId::client(0);
        assert_eq!(q.admit(c, 50, SimTime::ZERO), QuotaVerdict::Admit);
        // The bucket is empty; one more element needs 1/100 s of refill.
        assert_eq!(
            q.admit(c, 1, SimTime::ZERO),
            QuotaVerdict::Shed {
                retry_after: SimDuration::from_millis(10)
            }
        );
        assert_eq!(q.shed_rate(), 1);
        // Sheds consume nothing: after exactly the hinted delay the retry
        // is admitted.
        assert_eq!(q.admit(c, 1, at_millis(10)), QuotaVerdict::Admit);
    }

    #[test]
    fn refill_is_exact_and_capped_at_burst() {
        let mut q = quota(1_000, 10, 0);
        let c = ProcessId::client(1);
        assert_eq!(q.admit(c, 10, SimTime::ZERO), QuotaVerdict::Admit);
        // 5 ms at 1 000/s refills exactly 5 elements.
        assert_eq!(q.admit(c, 5, at_millis(5)), QuotaVerdict::Admit);
        assert!(matches!(
            q.admit(c, 1, at_millis(5)),
            QuotaVerdict::Shed { .. }
        ));
        // A long idle period refills to the burst cap, not beyond.
        assert_eq!(q.admit(c, 10, at_millis(60_000)), QuotaVerdict::Admit);
        assert!(matches!(
            q.admit(c, 1, at_millis(60_000)),
            QuotaVerdict::Shed { .. }
        ));
    }

    #[test]
    fn retry_after_rounds_partial_micros_up() {
        // 3 elements/s: one element is 333 333.33… µs of refill; the hint
        // must round up so a retry at exactly the hinted instant succeeds.
        let mut q = quota(3, 1, 0);
        let c = ProcessId::client(2);
        assert_eq!(q.admit(c, 1, SimTime::ZERO), QuotaVerdict::Admit);
        let QuotaVerdict::Shed { retry_after } = q.admit(c, 1, SimTime::ZERO) else {
            panic!("empty bucket must shed");
        };
        assert_eq!(retry_after, SimDuration::from_micros(333_334));
        assert_eq!(
            q.admit(c, 1, SimTime::ZERO + retry_after),
            QuotaVerdict::Admit
        );
    }

    #[test]
    fn pending_cap_sheds_until_stamped() {
        let mut q = quota(1_000_000, 1_000_000, 30);
        let c = ProcessId::client(3);
        assert_eq!(q.admit(c, 20, SimTime::ZERO), QuotaVerdict::Admit);
        q.note_admitted(c, 20);
        assert_eq!(q.pending(c), 20);
        // 20 pending + 20 more would exceed the cap of 30.
        assert_eq!(
            q.admit(c, 20, SimTime::ZERO),
            QuotaVerdict::Shed {
                retry_after: PENDING_RETRY
            }
        );
        assert_eq!(q.shed_pending(), 20);
        // Stamping an epoch releases capacity.
        q.note_stamped(c, 15);
        assert_eq!(q.pending(c), 5);
        assert_eq!(q.admit(c, 20, SimTime::ZERO), QuotaVerdict::Admit);
        // Zero disables the cap entirely.
        let mut unbounded = quota(1_000_000, 1_000_000, 0);
        assert_eq!(
            unbounded.admit(c, 999_999, SimTime::ZERO),
            QuotaVerdict::Admit
        );
    }

    #[test]
    fn clients_are_metered_independently() {
        let mut q = quota(100, 10, 0);
        let a = ProcessId::client(4);
        let b = ProcessId::client(5);
        assert_eq!(q.admit(a, 10, SimTime::ZERO), QuotaVerdict::Admit);
        assert!(matches!(
            q.admit(a, 1, SimTime::ZERO),
            QuotaVerdict::Shed { .. }
        ));
        // A's exhausted bucket does not touch B.
        assert_eq!(q.admit(b, 10, SimTime::ZERO), QuotaVerdict::Admit);
        assert_eq!(q.clients(), 2);
    }

    #[test]
    fn same_probe_sequence_is_bit_identical() {
        // The determinism contract: quota decisions are a pure function of
        // the (client, elements, now) sequence — two states fed the same
        // sequence return identical verdicts and counters.
        let run = || {
            let mut q = quota(500, 100, 50);
            let mut verdicts = Vec::new();
            for i in 0..200u64 {
                let client = ProcessId::client((i % 3) as usize);
                let v = q.admit(client, 7, at_millis(i * 3));
                if v == QuotaVerdict::Admit {
                    q.note_admitted(client, 7);
                }
                if i % 11 == 0 {
                    q.note_stamped(client, 14);
                }
                verdicts.push(v);
            }
            (verdicts, q.shed_rate(), q.shed_pending())
        };
        assert_eq!(run(), run());
    }
}
