//! Core ledger types: transactions, blocks and configuration.

use std::fmt::Debug;

use serde::{Deserialize, Serialize};
use setchain_crypto::{Digest256, ProcessId, Sha256};
use setchain_simnet::{SimDuration, SimTime};

/// Identifier of a ledger transaction, unique within a run.
///
/// Applications compute it however they like (hash, structured id); the
/// ledger only uses it for mempool de-duplication and tracing.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct TxId(pub u128);

impl TxId {
    /// Derives a `TxId` from a 256-bit digest (first 16 bytes).
    pub fn from_digest(d: &Digest256) -> Self {
        TxId(u128::from_be_bytes(d.0[..16].try_into().expect("16 bytes")))
    }
}

/// A ledger transaction as seen by the consensus engine.
///
/// The engine is generic over the transaction type: it never inspects the
/// payload, it only needs an identifier for de-duplication and a wire size
/// for block packing and bandwidth modelling. This mirrors CometBFT, for
/// which transactions are opaque byte strings.
pub trait TxData: Clone + Debug + Send + 'static {
    /// Unique identifier of this transaction.
    fn tx_id(&self) -> TxId;
    /// Serialized size in bytes (used for block packing and bandwidth).
    fn wire_size(&self) -> usize;
}

/// Identifier of a proposed/committed block (hash over header + tx ids).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BlockId(pub Digest256);

/// A block of transactions.
#[derive(Clone, Debug)]
pub struct Block<T> {
    /// Height of the block (1-based; height 0 is the implicit genesis).
    pub height: u64,
    /// Validator that proposed the block.
    pub proposer: ProcessId,
    /// Simulated time at which the proposer created the block.
    pub proposed_at: SimTime,
    /// Transactions, in the proposer-chosen (and therefore total) order.
    pub txs: Vec<T>,
}

impl<T: TxData> Block<T> {
    /// Number of transactions in the block (the paper's `|B|`).
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// True if the block carries no transactions.
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// Total payload bytes of the block.
    pub fn payload_bytes(&self) -> usize {
        self.txs.iter().map(|t| t.wire_size()).sum()
    }

    /// Deterministic identifier: hash of height, proposer and the ordered
    /// transaction ids.
    ///
    /// Streams straight into one hasher with the same length framing as
    /// `framed_hash` (so the digest format is unchanged) without building a
    /// vector of byte strings first — this runs on every proposal receipt
    /// and block sync.
    pub fn id(&self) -> BlockId {
        fn frame(h: &mut Sha256, bytes: &[u8]) {
            h.update(&(bytes.len() as u64).to_le_bytes());
            h.update(bytes);
        }
        let mut h = Sha256::new();
        frame(&mut h, &self.height.to_le_bytes());
        frame(&mut h, &self.proposer.0.to_le_bytes());
        for tx in &self.txs {
            frame(&mut h, &tx.tx_id().0.to_le_bytes());
        }
        BlockId(h.finalize())
    }
}

/// Configuration of the ledger (CometBFT stand-in).
///
/// Defaults follow the constants reported in the paper's evaluation:
/// one block roughly every 1.25 s (0.8 blocks/s), a 0.5 MB block size, and a
/// mempool capped at 10 million transactions or 2 GB.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LedgerConfig {
    /// Number of validators (the paper's `server_count`: 4, 7 or 10).
    pub validators: usize,
    /// Interval between the commit of one block and the proposal of the next.
    pub block_interval: SimDuration,
    /// Maximum total transaction bytes in a block (paper: 0.5 MB default,
    /// swept up to 128 MB in Fig. 2 right).
    pub max_block_bytes: usize,
    /// Maximum number of transactions held in a mempool (paper: 10 000 000).
    pub mempool_max_txs: usize,
    /// Maximum total bytes held in a mempool (paper: 2 GB).
    pub mempool_max_bytes: usize,
    /// How often a node flushes its pending transaction gossip to peers.
    pub gossip_interval: SimDuration,
    /// Round timeout: how long a validator waits in a round before moving to
    /// the next one (covers silent/faulty proposers).
    pub round_timeout: SimDuration,
    /// CPU time charged for verifying one signature (vote or certificate).
    pub sig_verify_cost: SimDuration,
    /// CPU time charged per 1 KiB of transaction data when validating a
    /// proposed block.
    pub block_validate_cost_per_kib: SimDuration,
}

impl Default for LedgerConfig {
    fn default() -> Self {
        LedgerConfig {
            validators: 4,
            block_interval: SimDuration::from_millis(1250),
            max_block_bytes: 500_000,
            mempool_max_txs: 10_000_000,
            mempool_max_bytes: 2 * 1024 * 1024 * 1024,
            gossip_interval: SimDuration::from_millis(10),
            round_timeout: SimDuration::from_secs(4),
            sig_verify_cost: SimDuration::from_micros(60),
            block_validate_cost_per_kib: SimDuration::from_micros(2),
        }
    }
}

impl LedgerConfig {
    /// Configuration for `n` validators with the paper's defaults.
    pub fn with_validators(n: usize) -> Self {
        LedgerConfig {
            validators: n,
            ..Default::default()
        }
    }

    /// Maximum number of Byzantine validators tolerated by the consensus
    /// (`f_ledger < n/3`).
    pub fn max_faulty(&self) -> usize {
        (self.validators - 1) / 3
    }

    /// Size of a prevote/precommit quorum (`2 f_ledger + 1`).
    pub fn quorum(&self) -> usize {
        2 * self.max_faulty() + 1
    }

    /// Ids of all validators.
    pub fn validator_ids(&self) -> Vec<ProcessId> {
        (0..self.validators).map(ProcessId::server).collect()
    }

    /// The proposer for a given height and round (round-robin rotation).
    pub fn proposer(&self, height: u64, round: u32) -> ProcessId {
        ProcessId::server(((height + round as u64) % self.validators as u64) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct DummyTx(u128, usize);

    impl TxData for DummyTx {
        fn tx_id(&self) -> TxId {
            TxId(self.0)
        }
        fn wire_size(&self) -> usize {
            self.1
        }
    }

    #[test]
    fn block_id_changes_with_content() {
        let b1 = Block {
            height: 1,
            proposer: ProcessId::server(0),
            proposed_at: SimTime::ZERO,
            txs: vec![DummyTx(1, 10), DummyTx(2, 20)],
        };
        let mut b2 = b1.clone();
        b2.txs.push(DummyTx(3, 5));
        let mut b3 = b1.clone();
        b3.height = 2;
        assert_ne!(b1.id(), b2.id());
        assert_ne!(b1.id(), b3.id());
        assert_eq!(b1.id(), b1.clone().id());
        assert_eq!(b1.len(), 2);
        assert!(!b1.is_empty());
        assert_eq!(b1.payload_bytes(), 30);
    }

    #[test]
    fn block_id_matches_framed_hash_format() {
        // The streaming implementation must keep producing the digest the
        // original `framed_hash`-based construction produced.
        let b = Block {
            height: 9,
            proposer: ProcessId::server(2),
            proposed_at: SimTime::ZERO,
            txs: vec![DummyTx(11, 10), DummyTx(22, 20), DummyTx(33, 5)],
        };
        let mut parts: Vec<Vec<u8>> = vec![
            b.height.to_le_bytes().to_vec(),
            b.proposer.0.to_le_bytes().to_vec(),
        ];
        for tx in &b.txs {
            parts.push(tx.tx_id().0.to_le_bytes().to_vec());
        }
        assert_eq!(b.id().0, setchain_crypto::framed_hash(&parts));
    }

    #[test]
    fn block_id_is_order_sensitive() {
        let mk = |ids: &[u128]| Block {
            height: 1,
            proposer: ProcessId::server(0),
            proposed_at: SimTime::ZERO,
            txs: ids.iter().map(|&i| DummyTx(i, 1)).collect(),
        };
        assert_ne!(mk(&[1, 2]).id(), mk(&[2, 1]).id());
    }

    #[test]
    fn config_quorum_math() {
        for (n, f, q) in [(4, 1, 3), (7, 2, 5), (10, 3, 7)] {
            let cfg = LedgerConfig::with_validators(n);
            assert_eq!(cfg.max_faulty(), f, "n={n}");
            assert_eq!(cfg.quorum(), q, "n={n}");
            assert_eq!(cfg.validator_ids().len(), n);
        }
    }

    #[test]
    fn proposer_rotates() {
        let cfg = LedgerConfig::with_validators(4);
        assert_eq!(cfg.proposer(1, 0), ProcessId::server(1));
        assert_eq!(cfg.proposer(1, 1), ProcessId::server(2));
        assert_eq!(cfg.proposer(3, 1), ProcessId::server(0));
        assert_eq!(cfg.proposer(4, 0), ProcessId::server(0));
    }

    #[test]
    fn default_matches_paper_constants() {
        let cfg = LedgerConfig::default();
        assert_eq!(cfg.max_block_bytes, 500_000);
        assert_eq!(cfg.mempool_max_txs, 10_000_000);
        assert!((cfg.block_interval.as_secs_f64() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn tx_id_from_digest() {
        let d = setchain_crypto::sha256(b"tx");
        let id = TxId::from_digest(&d);
        assert_ne!(id.0, 0);
        assert_eq!(id, TxId::from_digest(&d));
    }
}
