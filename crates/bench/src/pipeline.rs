//! End-to-end add→epoch pipeline benchmark harness.
//!
//! Measures *wall-clock* adds/sec through a full simulated deployment: one
//! client per server injects elements, the servers run the configured
//! algorithm over the simulated ledger, and the metric is committed elements
//! divided by the host time the simulation took to execute. Unlike the
//! simulated throughput figures (which report simulated el/s and are
//! insensitive to host performance), this harness measures how fast the
//! *implementation* pushes elements through the hot path — broadcast fan-out,
//! signature verification, digest computation — and is the basis for the
//! `BENCH_pr2.json` perf baseline and the CI regression gate.

use std::time::{Duration, Instant};

use setchain::Algorithm;
use setchain_simnet::SimTime;
use setchain_workload::{Deployment, Scenario};

/// Parameters of one pipeline measurement.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Algorithm under test.
    pub algorithm: Algorithm,
    /// Collector batch size (ignored by Vanilla).
    pub batch: usize,
    /// Total injection rate over all clients, elements/second (simulated).
    pub rate: f64,
    /// Number of servers (and injection clients).
    pub servers: usize,
    /// Simulated run duration; injection stops two seconds before the end.
    pub sim_secs: u64,
    /// RNG seed.
    pub seed: u64,
}

impl PipelineConfig {
    /// Standard configuration for one algorithm/batch point: 4 servers,
    /// a rate high enough that the hot path dominates, 10 simulated seconds.
    pub fn standard(algorithm: Algorithm, batch: usize) -> Self {
        let rate = match algorithm {
            // Vanilla appends one ledger transaction per element and caps out
            // far below the batched algorithms; drive it at a rate it can
            // sustain so the measurement reflects pipeline cost, not backlog.
            Algorithm::Vanilla => 1_000.0,
            Algorithm::Compresschain | Algorithm::Hashchain => 5_000.0,
        };
        PipelineConfig {
            algorithm,
            batch,
            rate,
            servers: 4,
            sim_secs: 10,
            seed: 7,
        }
    }

    /// Quick variant for CI smoke runs: same shape, shorter simulated run.
    /// Compresschain is driven at a rate it can sustain without a mempool
    /// backlog — in the standard run its epoch commits only appear late in
    /// the window (proofs queue behind the batch backlog), which a short
    /// run would record as zero committed elements.
    pub fn quick(algorithm: Algorithm, batch: usize) -> Self {
        let mut config = PipelineConfig {
            sim_secs: 7,
            ..Self::standard(algorithm, batch)
        };
        if algorithm == Algorithm::Compresschain {
            config.rate = 1_000.0;
        }
        config
    }

    /// Label used in reports and JSON keys, e.g. `hashchain_b64`.
    pub fn label(&self) -> String {
        format!("{}_b{}", self.algorithm.name().to_lowercase(), self.batch)
    }
}

/// Outcome of one pipeline measurement.
#[derive(Clone, Copy, Debug)]
pub struct PipelineResult {
    /// Elements injected by the clients.
    pub added: u64,
    /// Elements committed (reached an epoch) by the end of the run.
    pub committed: u64,
    /// Host wall-clock time the simulation took to execute.
    pub wall: Duration,
    /// Committed elements per wall-clock second — the headline metric.
    pub adds_per_sec: f64,
}

/// Runs one deployment to completion and measures wall-clock adds/sec.
///
/// Deployment construction (PKI bootstrap, process allocation) is excluded
/// from the measured window; only the event loop — the add→epoch pipeline
/// itself — is timed.
pub fn run_pipeline(config: &PipelineConfig) -> PipelineResult {
    let scenario = Scenario::base(config.algorithm)
        .with_servers(config.servers)
        .with_rate(config.rate)
        .with_collector(config.batch)
        .with_injection_secs(config.sim_secs.saturating_sub(2).max(1))
        .with_max_run_secs(config.sim_secs)
        .with_seed(config.seed);
    let mut deployment = Deployment::build(&scenario);
    let start = Instant::now();
    deployment
        .sim
        .run_until(SimTime::from_secs(config.sim_secs));
    let wall = start.elapsed();
    let committed = deployment
        .trace
        .committed_count_by(SimTime::from_secs(config.sim_secs)) as u64;
    let added = deployment.trace.added_count() as u64;
    PipelineResult {
        added,
        committed,
        wall,
        adds_per_sec: committed as f64 / wall.as_secs_f64().max(1e-9),
    }
}

/// Runs `config` `repeats` times and keeps the best (highest adds/sec) run,
/// which is the standard way to suppress scheduler noise in wall-clock
/// benchmarks.
pub fn run_pipeline_best_of(config: &PipelineConfig, repeats: usize) -> PipelineResult {
    assert!(repeats >= 1, "at least one repeat required");
    let mut best = run_pipeline(config);
    for _ in 1..repeats {
        let r = run_pipeline(config);
        if r.adds_per_sec > best.adds_per_sec {
            best = r;
        }
    }
    best
}

/// The (algorithm, batch) grid recorded in `BENCH_pr2.json`: every algorithm
/// at the two collector sizes the acceptance criteria reference.
pub fn grid() -> Vec<(Algorithm, usize)> {
    vec![
        (Algorithm::Vanilla, 64),
        (Algorithm::Compresschain, 64),
        (Algorithm::Compresschain, 256),
        (Algorithm::Hashchain, 64),
        (Algorithm::Hashchain, 256),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_grid() {
        let cfg = PipelineConfig::standard(Algorithm::Hashchain, 64);
        assert_eq!(cfg.label(), "hashchain_b64");
        assert_eq!(cfg.servers, 4);
        let quick = PipelineConfig::quick(Algorithm::Vanilla, 64);
        assert!(quick.sim_secs < cfg.sim_secs);
        assert_eq!(grid().len(), 5);
    }

    #[test]
    fn quick_pipeline_commits_elements() {
        let mut cfg = PipelineConfig::quick(Algorithm::Hashchain, 64);
        cfg.rate = 500.0;
        let result = run_pipeline(&cfg);
        assert!(result.added > 0, "clients injected nothing");
        assert!(result.committed > 0, "nothing committed");
        assert!(result.adds_per_sec > 0.0);
    }
}
