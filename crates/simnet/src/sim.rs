//! The discrete-event scheduler.
//!
//! [`Simulation`] owns the processes, the network and the event queues. It is
//! single-threaded and deterministic: events are ordered by `(time, sequence
//! number)`, where the sequence number is assigned at insertion time from one
//! shared counter, so two runs with the same seed and the same inputs produce
//! identical schedules. Parallelism in the evaluation harness comes from
//! running many independent simulations on different OS threads, not from
//! inside one simulation.
//!
//! # Scheduler internals
//!
//! Three structural decisions keep the per-event cost flat:
//!
//! * **Slab process table.** Processes live in a dense `Vec<Slot>`; a
//!   [`ProcessId`] resolves to its slab position through two dense
//!   per-range index arrays (one for server ids, one for client ids), so an
//!   event dispatch is two array reads instead of a `BTreeMap` tree walk.
//! * **Split timer queue.** Timer events carry no message payload, so they
//!   live in their own heap of small `Copy` records instead of sharing the
//!   delivery heap's `Arc<M>`-carrying entries. The two heaps are merged at
//!   pop time by comparing `(time, seq)` — the shared sequence counter makes
//!   the merged order identical to a single queue's.
//! * **Coalesced delivery.** Consecutive deliveries to the same recipient at
//!   the same instant (a broadcast fan-in, a loopback burst) are drained into
//!   one [`Process::on_messages`] invocation, paying one handler dispatch
//!   and one action-application pass for the whole batch. The batch's
//!   [`Context::consume_cpu`] charges accumulate and defer *later* events;
//!   within the batch, messages are handled at the shared arrival instant
//!   (deferred deliveries are exempt from coalescing precisely so a CPU
//!   backlog still drains serialized).
//!
//! The per-handler action buffer and the delivery batch buffer are owned by
//! the simulation and reused across events, so steady-state event processing
//! allocates only what the handlers themselves allocate.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use setchain_crypto::{FxHashMap, ProcessId};

use crate::fault::{FaultEvent, FaultPlan};
use crate::network::{Network, NetworkConfig, Partition};
use crate::process::{Action, Context, Process, TimerToken, Wire};
use crate::time::{SimDuration, SimTime};

/// Top-level simulation parameters.
#[derive(Clone, Debug)]
pub struct SimulationConfig {
    /// Seed for the simulation RNG (network jitter, process randomness).
    pub seed: u64,
    /// Network model configuration.
    pub network: NetworkConfig,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            seed: 42,
            network: NetworkConfig::lan(),
        }
    }
}

/// Why a call to [`Simulation::run_until_quiescent`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely at the given time.
    Quiescent(SimTime),
    /// The time limit was reached with events still pending.
    TimeLimit(SimTime),
}

/// A message delivery in flight.
struct DeliverEvent<M> {
    at: SimTime,
    seq: u64,
    from: ProcessId,
    to: ProcessId,
    /// True once the delivery has been deferred past a busy CPU window.
    /// Deferred deliveries are re-serialized one at a time (they all land
    /// on the same release instant, and batching them would let one
    /// handler invocation swallow a backlog the CPU model is supposed to
    /// spread out), so they are excluded from delivery coalescing.
    deferred: bool,
    /// Shared payload: a broadcast enqueues one allocation for all
    /// recipients. Ownership is materialized at delivery time
    /// (`Arc::try_unwrap`), so the last — often the only — recipient
    /// takes the message without a copy.
    msg: Arc<M>,
}

impl<M> PartialEq for DeliverEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for DeliverEvent<M> {}
impl<M> PartialOrd for DeliverEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for DeliverEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering so the BinaryHeap (a max-heap) pops the earliest
        // event first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A pending timer: a small `Copy` record on the timer fast path — no
/// payload allocation travels with it.
#[derive(Clone, Copy, PartialEq, Eq)]
struct TimerEvent {
    at: SimTime,
    seq: u64,
    node: ProcessId,
    token: TimerToken,
}

impl PartialOrd for TimerEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Slot<M: Wire> {
    id: ProcessId,
    process: Box<dyn Process<M>>,
    /// Node CPU is busy until this time; deliveries are deferred past it.
    busy_until: SimTime,
    /// Crashed processes run no handlers; events addressed to them are
    /// dropped at dispatch time (the heaps are left untouched, preserving
    /// `(time, seq)` order for everyone else).
    crashed: bool,
    /// Timers with a sequence number below this barrier belong to a
    /// pre-crash incarnation and never fire. Set to the current sequence
    /// counter on restart, just before `on_start` re-arms fresh timers.
    timer_barrier: u64,
}

/// Sentinel for "no process registered at this index".
const NO_SLOT: u32 = u32::MAX;
/// Ids whose per-range index is below this resolve through the dense
/// tables; pathological indexes fall back to the overflow map so a stray
/// huge id cannot balloon the dense tables.
const DENSE_LIMIT: usize = 1 << 20;

/// A deterministic discrete-event simulation.
pub struct Simulation<M: Wire> {
    now: SimTime,
    seq: u64,
    deliveries: BinaryHeap<DeliverEvent<M>>,
    timers: BinaryHeap<TimerEvent>,
    /// Dense slab of processes, in registration order.
    slots: Vec<Slot<M>>,
    /// Dense index: server index → slab position (`NO_SLOT` if absent).
    server_slots: Vec<u32>,
    /// Dense index: client index → slab position (`NO_SLOT` if absent).
    client_slots: Vec<u32>,
    /// Fallback for ids whose index exceeds `DENSE_LIMIT`.
    overflow_slots: FxHashMap<ProcessId, u32>,
    /// Registered ids, kept sorted (start order and `process_ids` order).
    ids: Vec<ProcessId>,
    network: Network,
    rng: StdRng,
    started: bool,
    events_processed: u64,
    messages_deferred: u64,
    /// Deliveries dropped because the recipient was crashed at dispatch
    /// time (the crashed-recipient analogue of the network's loss and
    /// partition drop counters).
    dropped_crashed: u64,
    /// Installed fault schedule, sorted by time; `next_fault` indexes the
    /// first entry not yet applied.
    faults: Vec<(SimTime, FaultEvent)>,
    next_fault: usize,
    /// Reused per-handler action buffer (empty between events).
    actions_scratch: Vec<Action<M>>,
    /// Reused coalesced-delivery batch buffer (empty between events).
    batch_scratch: Vec<(ProcessId, M)>,
}

impl<M: Wire> Simulation<M> {
    /// Creates an empty simulation.
    pub fn new(config: SimulationConfig) -> Self {
        Simulation {
            now: SimTime::ZERO,
            seq: 0,
            deliveries: BinaryHeap::new(),
            timers: BinaryHeap::new(),
            slots: Vec::new(),
            server_slots: Vec::new(),
            client_slots: Vec::new(),
            overflow_slots: FxHashMap::default(),
            ids: Vec::new(),
            network: Network::new(config.network),
            rng: StdRng::seed_from_u64(config.seed),
            started: false,
            events_processed: 0,
            messages_deferred: 0,
            dropped_crashed: 0,
            faults: Vec::new(),
            next_fault: 0,
            actions_scratch: Vec::new(),
            batch_scratch: Vec::new(),
        }
    }

    /// Registers a process. Panics if the id is already taken or if the
    /// simulation has already started.
    pub fn add_process(&mut self, id: ProcessId, process: Box<dyn Process<M>>) {
        assert!(
            !self.started,
            "cannot add processes after the simulation started"
        );
        assert!(self.slot_index(id).is_none(), "duplicate process id {id}");
        let slot = self.slots.len() as u32;
        self.slots.push(Slot {
            id,
            process,
            busy_until: SimTime::ZERO,
            crashed: false,
            timer_barrier: 0,
        });
        let index = if id.is_server() {
            id.server_index()
        } else {
            id.client_index()
        };
        if index < DENSE_LIMIT {
            let table = if id.is_server() {
                &mut self.server_slots
            } else {
                &mut self.client_slots
            };
            if table.len() <= index {
                table.resize(index + 1, NO_SLOT);
            }
            table[index] = slot;
        } else {
            self.overflow_slots.insert(id, slot);
        }
        // Registration is cold; keep the id list sorted as we go.
        let pos = self.ids.partition_point(|existing| *existing < id);
        self.ids.insert(pos, id);
    }

    /// Resolves a process id to its slab position.
    #[inline]
    fn slot_index(&self, id: ProcessId) -> Option<usize> {
        let (table, index) = if id.is_server() {
            (&self.server_slots, id.server_index())
        } else {
            (&self.client_slots, id.client_index())
        };
        if index < DENSE_LIMIT {
            match table.get(index) {
                Some(&slot) if slot != NO_SLOT => Some(slot as usize),
                _ => None,
            }
        } else {
            self.overflow_slots.get(&id).map(|&s| s as usize)
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of deliveries deferred because the target node's CPU was busy.
    pub fn messages_deferred(&self) -> u64 {
        self.messages_deferred
    }

    /// Read access to the network (for drop/delivery counters).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Installs a network partition; returns its index.
    pub fn add_partition(&mut self, partition: Partition) -> usize {
        self.network.add_partition(partition)
    }

    /// Heals all network partitions.
    pub fn heal_all_partitions(&mut self) {
        self.network.heal_all_partitions()
    }

    /// Changes the network loss rate mid-run. Panics unless `rate` is in
    /// `[0, 1]`.
    pub fn set_loss_rate(&mut self, rate: f64) {
        self.network.set_loss_rate(rate)
    }

    /// Deliveries dropped because the recipient was crashed.
    pub fn dropped_crashed(&self) -> u64 {
        self.dropped_crashed
    }

    /// Crashes a process: until [`restart`](Simulation::restart), every
    /// delivery and timer addressed to it is dropped at dispatch time and
    /// it runs no handlers. The slab and the event heaps stay untouched —
    /// dropping happens at pop time, so `(time, seq)` ordering for live
    /// processes is unaffected. Panics if the id is unknown.
    pub fn crash(&mut self, pid: ProcessId) {
        let slot = self.slot_index(pid).expect("crash: unknown process id");
        self.slots[slot].crashed = true;
    }

    /// Restarts a crashed process. Its CPU backlog is cleared, timers armed
    /// by the pre-crash incarnation are invalidated, and `on_start` runs
    /// again (at the current simulated time) so periodic timers re-arm.
    /// No-op if the process is not crashed; panics if the id is unknown.
    pub fn restart(&mut self, pid: ProcessId) {
        let slot = self.slot_index(pid).expect("restart: unknown process id");
        if !self.slots[slot].crashed {
            return;
        }
        self.slots[slot].crashed = false;
        self.slots[slot].busy_until = self.now;
        // Everything scheduled so far carries a sequence number below the
        // current counter, so this fences off all pre-crash timers while
        // letting the on_start below arm fresh ones.
        self.slots[slot].timer_barrier = self.seq;
        if self.started {
            self.run_handler(slot, |process, ctx| process.on_start(ctx));
        }
    }

    /// True if `pid` is currently crashed. Panics if the id is unknown.
    pub fn is_crashed(&self, pid: ProcessId) -> bool {
        let slot = self
            .slot_index(pid)
            .expect("is_crashed: unknown process id");
        self.slots[slot].crashed
    }

    /// Installs a fault plan. Must be called before the simulation starts;
    /// entries are stably sorted by time and applied by the event loop as
    /// simulated time reaches them (before same-instant events dispatch).
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        assert!(
            !self.started,
            "fault plans must be installed before the simulation starts"
        );
        self.faults.extend(plan.into_sorted_entries());
        self.faults.sort_by_key(|(at, _)| *at);
    }

    /// Ids of all registered processes, in ascending order.
    ///
    /// Borrows the cached id list — no allocation per call. Callers that
    /// need ownership collect explicitly.
    pub fn process_ids(&self) -> impl ExactSizeIterator<Item = ProcessId> + '_ {
        self.ids.iter().copied()
    }

    /// Typed read access to a process, for post-run inspection.
    pub fn process<T: 'static>(&self, id: ProcessId) -> Option<&T> {
        self.slot_index(id)
            .and_then(|i| self.slots[i].process.as_any().downcast_ref::<T>())
    }

    /// Typed mutable access to a process.
    pub fn process_mut<T: 'static>(&mut self, id: ProcessId) -> Option<&mut T> {
        let i = self.slot_index(id)?;
        self.slots[i].process.as_any_mut().downcast_mut::<T>()
    }

    /// Schedules a message injection from outside the simulation (used by
    /// tests and by workload drivers that are not modelled as actors).
    pub fn schedule_message(&mut self, at: SimTime, from: ProcessId, to: ProcessId, msg: M) {
        assert!(at >= self.now, "cannot schedule in the past");
        self.push_delivery(at, from, to, Arc::new(msg));
    }

    /// Schedules a timer for `node` from outside the simulation.
    pub fn schedule_timer(&mut self, at: SimTime, node: ProcessId, token: TimerToken) {
        assert!(at >= self.now, "cannot schedule in the past");
        self.push_timer(at, node, token);
    }

    #[inline]
    fn next_seq(&mut self) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        seq
    }

    fn push_delivery(&mut self, at: SimTime, from: ProcessId, to: ProcessId, msg: Arc<M>) {
        let seq = self.next_seq();
        self.deliveries.push(DeliverEvent {
            at,
            seq,
            from,
            to,
            deferred: false,
            msg,
        });
    }

    fn push_deferred_delivery(&mut self, at: SimTime, from: ProcessId, to: ProcessId, msg: Arc<M>) {
        let seq = self.next_seq();
        self.deliveries.push(DeliverEvent {
            at,
            seq,
            from,
            to,
            deferred: true,
            msg,
        });
    }

    fn push_timer(&mut self, at: SimTime, node: ProcessId, token: TimerToken) {
        let seq = self.next_seq();
        self.timers.push(TimerEvent {
            at,
            seq,
            node,
            token,
        });
    }

    /// `(time, seq)` of the next event across both heaps, if any.
    fn next_event_key(&self) -> Option<(SimTime, u64)> {
        let d = self.deliveries.peek().map(|e| (e.at, e.seq));
        let t = self.timers.peek().map(|e| (e.at, e.seq));
        match (d, t) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Time of the next pending fault, if any.
    fn next_fault_time(&self) -> Option<SimTime> {
        self.faults.get(self.next_fault).map(|(at, _)| *at)
    }

    /// Time of the next scheduled activity — event or fault — if any.
    fn next_activity_time(&self) -> Option<SimTime> {
        let event = self.next_event_key().map(|(at, _)| at);
        match (event, self.next_fault_time()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Applies the pending faults of the earliest due fault instant, if that
    /// instant is before (or tied with) the next queued event. A fault at
    /// instant `T` therefore takes effect before any message or timer
    /// scheduled at `T` dispatches. One instant per call, so callers
    /// driving the clock toward a deadline never overshoot it. Returns
    /// `true` if at least one fault was applied.
    fn apply_due_faults(&mut self) -> bool {
        let Some(first) = self.next_fault_time() else {
            return false;
        };
        let event_sooner = self
            .next_event_key()
            .map(|(ev_at, _)| first > ev_at)
            .unwrap_or(false);
        if event_sooner {
            return false;
        }
        if first > self.now {
            self.now = first;
        }
        while self.next_fault_time() == Some(first) {
            let (_, event) = self.faults[self.next_fault].clone();
            self.next_fault += 1;
            match event {
                FaultEvent::Crash(pid) => self.crash(pid),
                FaultEvent::Restart(pid) => self.restart(pid),
                FaultEvent::InjectPartition(partition) => {
                    self.network.add_partition(partition);
                }
                FaultEvent::HealPartitions => self.network.heal_all_partitions(),
                FaultEvent::SetLossRate(rate) => self.network.set_loss_rate(rate),
            }
        }
        true
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        // Start processes in ascending id order (the order the old
        // `BTreeMap`-based table used), so existing seeds reproduce.
        let ids = self.ids.clone();
        for id in ids {
            if let Some(slot) = self.slot_index(id) {
                if self.slots[slot].crashed {
                    continue; // crashed before start: on_start runs at restart
                }
                self.run_handler(slot, |process, ctx| process.on_start(ctx));
            }
        }
    }

    /// Runs the handler `f` for the process in `slot`, then applies the
    /// actions it produced. The action buffer is reused across invocations.
    fn run_handler<F>(&mut self, slot: usize, f: F)
    where
        F: FnOnce(&mut dyn Process<M>, &mut Context<'_, M>),
    {
        let now = self.now;
        let mut actions = std::mem::take(&mut self.actions_scratch);
        debug_assert!(actions.is_empty());
        let cpu_consumed;
        let id;
        {
            let slot = &mut self.slots[slot];
            id = slot.id;
            let mut ctx = Context {
                self_id: id,
                now,
                actions: &mut actions,
                cpu_consumed: SimDuration::ZERO,
                rng: &mut self.rng,
            };
            f(slot.process.as_mut(), &mut ctx);
            cpu_consumed = ctx.cpu_consumed;
            if !cpu_consumed.is_zero() {
                let base = if slot.busy_until > now {
                    slot.busy_until
                } else {
                    now
                };
                slot.busy_until = base + cpu_consumed;
            }
        }
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg } => {
                    let size = msg.wire_size();
                    if let Some(at) = self.network.delivery_time(&mut self.rng, now, id, to, size) {
                        self.push_delivery(at, id, to, msg);
                    }
                }
                Action::SetTimer { delay, token } => {
                    self.push_timer(now + delay, id, token);
                }
            }
        }
        self.actions_scratch = actions;
    }

    /// Processes a single scheduling step (one timer, or one coalesced run
    /// of same-instant deliveries to one recipient). Returns `false` if the
    /// queues are empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        let applied_fault = self.apply_due_faults();
        let Some((at, seq)) = self.next_event_key() else {
            return applied_fault;
        };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        let timer_is_next = self
            .timers
            .peek()
            .map(|t| (t.at, t.seq) == (at, seq))
            .unwrap_or(false);
        if timer_is_next {
            let event = self.timers.pop().expect("peeked above");
            let Some(slot) = self.slot_index(event.node) else {
                return true; // timer for an unknown process: dropped
            };
            if self.slots[slot].crashed || event.seq < self.slots[slot].timer_barrier {
                // Timer for a crashed process, or armed by a pre-crash
                // incarnation: dropped.
                return true;
            }
            if self.slots[slot].busy_until > self.now {
                let deferred_at = self.slots[slot].busy_until;
                self.messages_deferred += 1;
                self.push_timer(deferred_at, event.node, event.token);
                return true;
            }
            self.events_processed += 1;
            self.run_handler(slot, |p, ctx| p.on_timer(event.token, ctx));
            return true;
        }

        let event = self.deliveries.pop().expect("peeked above");
        let Some(slot) = self.slot_index(event.to) else {
            return true; // message to an unknown process: dropped
        };
        if self.slots[slot].crashed {
            // Message to a crashed process: dropped at dispatch time.
            self.dropped_crashed += 1;
            return true;
        }
        if self.slots[slot].busy_until > self.now {
            let deferred_at = self.slots[slot].busy_until;
            self.messages_deferred += 1;
            self.push_deferred_delivery(deferred_at, event.from, event.to, event.msg);
            return true;
        }
        self.events_processed += 1;

        // Take ownership of the payload: free for the last holder of a
        // shared broadcast payload and for all point-to-point messages;
        // earlier broadcast recipients clone here, lazily, instead of at
        // send time.
        let msg = Arc::try_unwrap(event.msg).unwrap_or_else(|shared| (*shared).clone());

        // Coalesce the consecutive run of same-instant deliveries to the
        // same recipient — but only as long as no timer is interleaved in
        // the merged `(time, seq)` order, so the handler order is exactly
        // the order a single queue would have produced.
        let timer_fence = self
            .timers
            .peek()
            .filter(|t| t.at == self.now)
            .map(|t| t.seq)
            .unwrap_or(u64::MAX);
        let more = !event.deferred
            && self
                .deliveries
                .peek()
                .map(|d| d.at == self.now && d.to == event.to && !d.deferred && d.seq < timer_fence)
                .unwrap_or(false);
        if !more {
            // Overwhelmingly common case: a single delivery.
            self.run_handler(slot, |p, ctx| p.on_message(event.from, msg, ctx));
            return true;
        }

        let mut batch = std::mem::take(&mut self.batch_scratch);
        debug_assert!(batch.is_empty());
        batch.push((event.from, msg));
        while let Some(next) = self.deliveries.peek() {
            if next.at != self.now || next.to != event.to || next.deferred || next.seq > timer_fence
            {
                break;
            }
            let next = self.deliveries.pop().expect("peeked above");
            self.events_processed += 1;
            let msg = Arc::try_unwrap(next.msg).unwrap_or_else(|shared| (*shared).clone());
            batch.push((next.from, msg));
        }
        self.run_handler(slot, |p, ctx| p.on_messages(&mut batch, ctx));
        batch.clear();
        self.batch_scratch = batch;
        true
    }

    /// Runs every event (and fault) scheduled at or before `deadline`, then
    /// advances the clock to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.ensure_started();
        while let Some(at) = self.next_activity_time() {
            if at > deadline {
                break;
            }
            self.step();
        }
        if deadline > self.now {
            self.now = deadline;
        }
    }

    /// Runs until the event queue drains (no events or faults pending) or
    /// `limit` is reached.
    pub fn run_until_quiescent(&mut self, limit: SimTime) -> RunOutcome {
        self.ensure_started();
        loop {
            match self.next_activity_time() {
                None => return RunOutcome::Quiescent(self.now),
                Some(at) if at > limit => {
                    self.now = limit;
                    return RunOutcome::TimeLimit(limit);
                }
                Some(_) => {
                    self.step();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    #[derive(Clone, Debug)]
    enum Msg {
        Ping(u64),
        // The payload is never read; it mirrors Ping so both directions have
        // a realistic body.
        Pong(#[allow(dead_code)] u64),
        Big(usize),
    }

    impl Wire for Msg {
        fn wire_size(&self) -> usize {
            match self {
                Msg::Ping(_) | Msg::Pong(_) => 16,
                Msg::Big(n) => *n,
            }
        }
    }

    /// Sends a ping to its peer on start and counts pongs.
    struct Pinger {
        peer: ProcessId,
        pings_to_send: u64,
        pongs_received: u64,
        last_pong_at: SimTime,
    }

    impl Process<Msg> for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            for i in 0..self.pings_to_send {
                ctx.send(self.peer, Msg::Ping(i));
            }
        }
        fn on_message(&mut self, _from: ProcessId, msg: Msg, ctx: &mut Context<'_, Msg>) {
            if let Msg::Pong(_) = msg {
                self.pongs_received += 1;
                self.last_pong_at = ctx.now();
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Replies to pings, optionally consuming CPU per ping.
    struct Ponger {
        cpu_per_ping: SimDuration,
        pings_handled: u64,
    }

    impl Process<Msg> for Ponger {
        fn on_message(&mut self, from: ProcessId, msg: Msg, ctx: &mut Context<'_, Msg>) {
            if let Msg::Ping(i) = msg {
                self.pings_handled += 1;
                if !self.cpu_per_ping.is_zero() {
                    ctx.consume_cpu(self.cpu_per_ping);
                }
                ctx.send(from, Msg::Pong(i));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Fires a periodic timer `count` times.
    struct Ticker {
        period: SimDuration,
        remaining: u32,
        fired: Vec<SimTime>,
    }

    impl Process<Msg> for Ticker {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            if self.remaining > 0 {
                ctx.set_timer(self.period, 1);
            }
        }
        fn on_message(&mut self, _: ProcessId, _: Msg, _: &mut Context<'_, Msg>) {}
        fn on_timer(&mut self, _token: TimerToken, ctx: &mut Context<'_, Msg>) {
            self.fired.push(ctx.now());
            self.remaining -= 1;
            if self.remaining > 0 {
                ctx.set_timer(self.period, 1);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn ping_pong_sim(seed: u64, pings: u64, cpu: SimDuration) -> Simulation<Msg> {
        let mut sim = Simulation::new(SimulationConfig {
            seed,
            network: NetworkConfig::lan(),
        });
        sim.add_process(
            ProcessId::server(0),
            Box::new(Pinger {
                peer: ProcessId::server(1),
                pings_to_send: pings,
                pongs_received: 0,
                last_pong_at: SimTime::ZERO,
            }),
        );
        sim.add_process(
            ProcessId::server(1),
            Box::new(Ponger {
                cpu_per_ping: cpu,
                pings_handled: 0,
            }),
        );
        sim
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut sim = ping_pong_sim(1, 10, SimDuration::ZERO);
        let outcome = sim.run_until_quiescent(SimTime::from_secs(10));
        assert!(matches!(outcome, RunOutcome::Quiescent(_)));
        let pinger: &Pinger = sim.process(ProcessId::server(0)).unwrap();
        assert_eq!(pinger.pongs_received, 10);
        assert!(pinger.last_pong_at > SimTime::ZERO);
        let ponger: &Ponger = sim.process(ProcessId::server(1)).unwrap();
        assert_eq!(ponger.pings_handled, 10);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = |seed| {
            let mut sim = ping_pong_sim(seed, 50, SimDuration::from_micros(30));
            sim.run_until_quiescent(SimTime::from_secs(10));
            let pinger: &Pinger = sim.process(ProcessId::server(0)).unwrap();
            (
                pinger.pongs_received,
                pinger.last_pong_at,
                sim.events_processed(),
            )
        };
        assert_eq!(run(7), run(7));
        // Different seeds give different schedules (jitter differs).
        assert_ne!(run(7).1, run(8).1);
    }

    #[test]
    fn cpu_consumption_delays_completion() {
        let mut fast = ping_pong_sim(3, 100, SimDuration::ZERO);
        fast.run_until_quiescent(SimTime::from_secs(60));
        let fast_done: &Pinger = fast.process(ProcessId::server(0)).unwrap();

        let mut slow = ping_pong_sim(3, 100, SimDuration::from_millis(10));
        slow.run_until_quiescent(SimTime::from_secs(60));
        let slow_done: &Pinger = slow.process(ProcessId::server(0)).unwrap();

        assert_eq!(fast_done.pongs_received, 100);
        assert_eq!(slow_done.pongs_received, 100);
        // 100 pings × 10 ms CPU each ≈ 1 s of serialized processing.
        assert!(slow_done.last_pong_at.as_secs_f64() > 0.9);
        assert!(fast_done.last_pong_at.as_secs_f64() < 0.1);
        assert!(slow.messages_deferred() > 0);
    }

    #[test]
    fn timers_fire_periodically() {
        let mut sim: Simulation<Msg> = Simulation::new(SimulationConfig::default());
        sim.add_process(
            ProcessId::server(0),
            Box::new(Ticker {
                period: SimDuration::from_millis(100),
                remaining: 5,
                fired: Vec::new(),
            }),
        );
        let outcome = sim.run_until_quiescent(SimTime::from_secs(10));
        assert!(matches!(outcome, RunOutcome::Quiescent(_)));
        let ticker: &Ticker = sim.process(ProcessId::server(0)).unwrap();
        assert_eq!(ticker.fired.len(), 5);
        assert_eq!(ticker.fired[0], SimTime::from_millis(100));
        assert_eq!(ticker.fired[4], SimTime::from_millis(500));
    }

    #[test]
    fn run_until_advances_clock_and_stops() {
        let mut sim: Simulation<Msg> = Simulation::new(SimulationConfig::default());
        sim.add_process(
            ProcessId::server(0),
            Box::new(Ticker {
                period: SimDuration::from_secs(1),
                remaining: 100,
                fired: Vec::new(),
            }),
        );
        sim.run_until(SimTime::from_millis(3500));
        assert_eq!(sim.now(), SimTime::from_millis(3500));
        let ticker: &Ticker = sim.process(ProcessId::server(0)).unwrap();
        assert_eq!(ticker.fired.len(), 3);
    }

    #[test]
    fn time_limit_outcome_when_events_remain() {
        let mut sim: Simulation<Msg> = Simulation::new(SimulationConfig::default());
        sim.add_process(
            ProcessId::server(0),
            Box::new(Ticker {
                period: SimDuration::from_secs(1),
                remaining: u32::MAX,
                fired: Vec::new(),
            }),
        );
        let outcome = sim.run_until_quiescent(SimTime::from_secs(5));
        assert_eq!(outcome, RunOutcome::TimeLimit(SimTime::from_secs(5)));
    }

    #[test]
    fn external_message_injection() {
        let mut sim = ping_pong_sim(1, 0, SimDuration::ZERO);
        sim.schedule_message(
            SimTime::from_secs(1),
            ProcessId::server(0),
            ProcessId::server(1),
            Msg::Ping(99),
        );
        sim.run_until_quiescent(SimTime::from_secs(5));
        let ponger: &Ponger = sim.process(ProcessId::server(1)).unwrap();
        assert_eq!(ponger.pings_handled, 1);
        let pinger: &Pinger = sim.process(ProcessId::server(0)).unwrap();
        assert_eq!(pinger.pongs_received, 1);
    }

    #[test]
    fn message_to_unknown_process_is_dropped() {
        let mut sim = ping_pong_sim(1, 0, SimDuration::ZERO);
        sim.schedule_message(
            SimTime::from_secs(1),
            ProcessId::server(0),
            ProcessId::server(9),
            Msg::Ping(1),
        );
        let outcome = sim.run_until_quiescent(SimTime::from_secs(5));
        assert!(matches!(outcome, RunOutcome::Quiescent(_)));
    }

    #[test]
    fn partition_blocks_ping_pong() {
        let mut sim = ping_pong_sim(1, 5, SimDuration::ZERO);
        sim.add_partition(Partition::between(
            [ProcessId::server(0)],
            [ProcessId::server(1)],
        ));
        sim.run_until_quiescent(SimTime::from_secs(5));
        let pinger: &Pinger = sim.process(ProcessId::server(0)).unwrap();
        assert_eq!(pinger.pongs_received, 0);
        assert_eq!(sim.network().dropped(), 5);
    }

    #[test]
    fn bandwidth_model_orders_large_transfers() {
        // A large message sent before a small one from the same sender delays
        // the small one (link serialisation).
        struct Sender;
        impl Process<Msg> for Sender {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.send(ProcessId::server(1), Msg::Big(10_000_000)); // ~80 ms at 1 Gbps
                ctx.send(ProcessId::server(1), Msg::Ping(0));
            }
            fn on_message(&mut self, _: ProcessId, _: Msg, _: &mut Context<'_, Msg>) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        struct Receiver {
            arrivals: Vec<(SimTime, bool)>, // (time, is_big)
        }
        impl Process<Msg> for Receiver {
            fn on_message(&mut self, _: ProcessId, msg: Msg, ctx: &mut Context<'_, Msg>) {
                self.arrivals.push((ctx.now(), matches!(msg, Msg::Big(_))));
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim: Simulation<Msg> = Simulation::new(SimulationConfig::default());
        sim.add_process(ProcessId::server(0), Box::new(Sender));
        sim.add_process(
            ProcessId::server(1),
            Box::new(Receiver { arrivals: vec![] }),
        );
        sim.run_until_quiescent(SimTime::from_secs(5));
        let rx: &Receiver = sim.process(ProcessId::server(1)).unwrap();
        assert_eq!(rx.arrivals.len(), 2);
        // Both messages arrive after the big transfer completes (~80 ms).
        assert!(rx.arrivals.iter().all(|(t, _)| t.as_secs_f64() > 0.07));
    }

    #[test]
    #[should_panic(expected = "duplicate process id")]
    fn duplicate_process_id_panics() {
        let mut sim: Simulation<Msg> = Simulation::new(SimulationConfig::default());
        sim.add_process(ProcessId::server(0), Box::new(Sender0));
        sim.add_process(ProcessId::server(0), Box::new(Sender0));
    }

    struct Sender0;
    impl Process<Msg> for Sender0 {
        fn on_message(&mut self, _: ProcessId, _: Msg, _: &mut Context<'_, Msg>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Records how deliveries were grouped into handler invocations.
    struct BatchObserver {
        batches: Vec<Vec<(ProcessId, u64)>>,
        timer_fires: Vec<SimTime>,
    }

    impl Process<Msg> for BatchObserver {
        fn on_message(&mut self, from: ProcessId, msg: Msg, _: &mut Context<'_, Msg>) {
            if let Msg::Ping(i) = msg {
                self.batches.push(vec![(from, i)]);
            }
        }
        fn on_messages(&mut self, batch: &mut Vec<(ProcessId, Msg)>, _: &mut Context<'_, Msg>) {
            self.batches.push(
                batch
                    .drain(..)
                    .filter_map(|(from, m)| match m {
                        Msg::Ping(i) => Some((from, i)),
                        _ => None,
                    })
                    .collect(),
            );
        }
        fn on_timer(&mut self, _: TimerToken, ctx: &mut Context<'_, Msg>) {
            self.timer_fires.push(ctx.now());
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn same_instant_deliveries_coalesce_into_one_batch() {
        let mut sim: Simulation<Msg> = Simulation::new(SimulationConfig::default());
        sim.add_process(
            ProcessId::server(0),
            Box::new(BatchObserver {
                batches: Vec::new(),
                timer_fires: Vec::new(),
            }),
        );
        let at = SimTime::from_millis(5);
        for i in 0..4 {
            sim.schedule_message(at, ProcessId::client(0), ProcessId::server(0), Msg::Ping(i));
        }
        // A later, separate instant stays its own invocation.
        sim.schedule_message(
            SimTime::from_millis(6),
            ProcessId::client(0),
            ProcessId::server(0),
            Msg::Ping(9),
        );
        sim.run_until_quiescent(SimTime::from_secs(1));
        let obs: &BatchObserver = sim.process(ProcessId::server(0)).unwrap();
        assert_eq!(obs.batches.len(), 2);
        assert_eq!(
            obs.batches[0],
            (0..4)
                .map(|i| (ProcessId::client(0), i))
                .collect::<Vec<_>>(),
            "same-instant deliveries arrive as one in-order batch"
        );
        assert_eq!(obs.batches[1], vec![(ProcessId::client(0), 9)]);
        // Every delivery still counts as one processed event.
        assert_eq!(sim.events_processed(), 5);
    }

    #[test]
    fn interleaved_timer_fences_delivery_coalescing() {
        let mut sim: Simulation<Msg> = Simulation::new(SimulationConfig::default());
        sim.add_process(
            ProcessId::server(0),
            Box::new(BatchObserver {
                batches: Vec::new(),
                timer_fires: Vec::new(),
            }),
        );
        let at = SimTime::from_millis(5);
        // Interleave in seq order: ping 0, ping 1, timer, ping 2 — all at
        // the same instant. The timer must split the batch.
        sim.schedule_message(at, ProcessId::client(0), ProcessId::server(0), Msg::Ping(0));
        sim.schedule_message(at, ProcessId::client(0), ProcessId::server(0), Msg::Ping(1));
        sim.schedule_timer(at, ProcessId::server(0), 7);
        sim.schedule_message(at, ProcessId::client(0), ProcessId::server(0), Msg::Ping(2));
        sim.run_until_quiescent(SimTime::from_secs(1));
        let obs: &BatchObserver = sim.process(ProcessId::server(0)).unwrap();
        assert_eq!(obs.timer_fires, vec![at]);
        assert_eq!(
            obs.batches,
            vec![
                vec![(ProcessId::client(0), 0), (ProcessId::client(0), 1)],
                vec![(ProcessId::client(0), 2)],
            ],
            "the timer splits the same-instant run at its seq position"
        );
    }

    #[test]
    fn slab_lookup_covers_servers_clients_and_sparse_ids() {
        let mut sim: Simulation<Msg> = Simulation::new(SimulationConfig::default());
        // Sparse registration order and a gap in both ranges.
        sim.add_process(ProcessId::client(3), Box::new(Sender0));
        sim.add_process(ProcessId::server(5), Box::new(Sender0));
        sim.add_process(ProcessId::server(0), Box::new(Sender0));
        let ids: Vec<ProcessId> = sim.process_ids().collect();
        assert_eq!(
            ids,
            vec![
                ProcessId::server(0),
                ProcessId::server(5),
                ProcessId::client(3)
            ],
            "process_ids is sorted regardless of registration order"
        );
        assert_eq!(sim.process_ids().len(), 3);
        assert!(sim.process::<Sender0>(ProcessId::server(5)).is_some());
        assert!(sim.process::<Sender0>(ProcessId::server(1)).is_none());
        assert!(sim.process::<Sender0>(ProcessId::client(3)).is_some());
        assert!(sim.process::<Sender0>(ProcessId::client(0)).is_none());
        assert!(sim.process_mut::<Sender0>(ProcessId::client(3)).is_some());
    }

    /// Sends a ping to `peer` every 100 ms, `remaining` times, counting the
    /// pongs that come back.
    struct PeriodicPinger {
        peer: ProcessId,
        remaining: u32,
        pongs_received: u64,
    }

    impl Process<Msg> for PeriodicPinger {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            if self.remaining > 0 {
                ctx.set_timer(SimDuration::from_millis(100), 1);
            }
        }
        fn on_message(&mut self, _from: ProcessId, msg: Msg, _: &mut Context<'_, Msg>) {
            if let Msg::Pong(_) = msg {
                self.pongs_received += 1;
            }
        }
        fn on_timer(&mut self, _token: TimerToken, ctx: &mut Context<'_, Msg>) {
            ctx.send(self.peer, Msg::Ping(u64::from(self.remaining)));
            self.remaining -= 1;
            if self.remaining > 0 {
                ctx.set_timer(SimDuration::from_millis(100), 1);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn periodic_sim(seed: u64, pings: u32) -> Simulation<Msg> {
        let mut sim = Simulation::new(SimulationConfig {
            seed,
            network: NetworkConfig::lan(),
        });
        sim.add_process(
            ProcessId::server(0),
            Box::new(PeriodicPinger {
                peer: ProcessId::server(1),
                remaining: pings,
                pongs_received: 0,
            }),
        );
        sim.add_process(
            ProcessId::server(1),
            Box::new(Ponger {
                cpu_per_ping: SimDuration::ZERO,
                pings_handled: 0,
            }),
        );
        sim
    }

    #[test]
    fn crashed_process_drops_deliveries_until_restart() {
        let mut sim = periodic_sim(21, 10);
        // Pings fire at 100..=1000 ms. Crash the ponger over [250, 650) ms:
        // pings 3..6 (sent at 300..600 ms) are dropped at dispatch.
        sim.run_until(SimTime::from_millis(250));
        sim.crash(ProcessId::server(1));
        assert!(sim.is_crashed(ProcessId::server(1)));
        sim.run_until(SimTime::from_millis(650));
        sim.restart(ProcessId::server(1));
        assert!(!sim.is_crashed(ProcessId::server(1)));
        sim.run_until_quiescent(SimTime::from_secs(5));
        let pinger: &PeriodicPinger = sim.process(ProcessId::server(0)).unwrap();
        assert_eq!(pinger.pongs_received, 6);
        assert_eq!(sim.dropped_crashed(), 4);
        // The network itself dropped nothing: the messages reached the
        // crashed recipient's queue and died there.
        assert_eq!(sim.network().dropped(), 0);
    }

    #[test]
    fn restart_reruns_on_start_and_invalidates_pre_crash_timers() {
        let mut sim: Simulation<Msg> = Simulation::new(SimulationConfig::default());
        sim.add_process(
            ProcessId::server(0),
            Box::new(Ticker {
                period: SimDuration::from_millis(100),
                remaining: 8,
                fired: Vec::new(),
            }),
        );
        sim.install_fault_plan(
            FaultPlan::new()
                .at(
                    SimTime::from_millis(250),
                    FaultEvent::Crash(ProcessId::server(0)),
                )
                .at(
                    SimTime::from_millis(400),
                    FaultEvent::Restart(ProcessId::server(0)),
                ),
        );
        sim.run_until_quiescent(SimTime::from_secs(5));
        let ticker: &Ticker = sim.process(ProcessId::server(0)).unwrap();
        // Fires at 100, 200 (pre-crash); the 300 ms timer dies with the
        // crash; restart re-runs on_start at 400 ms, so the remaining six
        // fires land at 500..=1000 ms with no duplicated timer chain.
        assert_eq!(
            ticker.fired,
            vec![
                SimTime::from_millis(100),
                SimTime::from_millis(200),
                SimTime::from_millis(500),
                SimTime::from_millis(600),
                SimTime::from_millis(700),
                SimTime::from_millis(800),
                SimTime::from_millis(900),
                SimTime::from_millis(1000),
            ]
        );
    }

    #[test]
    fn fault_plan_injects_and_heals_partitions_and_loss() {
        // Partition window [250, 650) ms drops pings 3..6; the loss window
        // [750, 850) ms drops ping 8 (sent at 800 ms).
        let mut sim = periodic_sim(22, 10);
        sim.install_fault_plan(
            FaultPlan::new()
                .at(
                    SimTime::from_millis(250),
                    FaultEvent::InjectPartition(Partition::between(
                        [ProcessId::server(0)],
                        [ProcessId::server(1)],
                    )),
                )
                .at(SimTime::from_millis(650), FaultEvent::HealPartitions)
                .at(SimTime::from_millis(750), FaultEvent::SetLossRate(1.0))
                .at(SimTime::from_millis(850), FaultEvent::SetLossRate(0.0)),
        );
        sim.run_until_quiescent(SimTime::from_secs(5));
        let pinger: &PeriodicPinger = sim.process(ProcessId::server(0)).unwrap();
        assert_eq!(pinger.pongs_received, 5);
        assert_eq!(sim.network().dropped_partition(), 4);
        assert_eq!(sim.network().dropped_loss(), 1);
        assert_eq!(sim.network().dropped(), 5);
    }

    #[test]
    fn same_seed_chaos_runs_are_bit_identical() {
        let run = |seed: u64| {
            let mut sim = periodic_sim(seed, 10);
            sim.install_fault_plan(
                FaultPlan::new()
                    .at(
                        SimTime::from_millis(250),
                        FaultEvent::Crash(ProcessId::server(1)),
                    )
                    .at(
                        SimTime::from_millis(550),
                        FaultEvent::Restart(ProcessId::server(1)),
                    )
                    .at(SimTime::from_millis(700), FaultEvent::SetLossRate(0.5)),
            );
            sim.run_until_quiescent(SimTime::from_secs(5));
            let pinger: &PeriodicPinger = sim.process(ProcessId::server(0)).unwrap();
            (
                pinger.pongs_received,
                sim.events_processed(),
                sim.dropped_crashed(),
                sim.network().dropped(),
            )
        };
        assert_eq!(run(77), run(77));
    }

    #[test]
    #[should_panic(expected = "crash: unknown process id")]
    fn crashing_an_unknown_process_panics() {
        let mut sim: Simulation<Msg> = Simulation::new(SimulationConfig::default());
        sim.crash(ProcessId::server(9));
    }

    #[test]
    fn overflow_ids_beyond_the_dense_tables_still_resolve() {
        let mut sim: Simulation<Msg> = Simulation::new(SimulationConfig::default());
        let huge = ProcessId::client(DENSE_LIMIT + 17);
        sim.add_process(
            huge,
            Box::new(Ponger {
                cpu_per_ping: SimDuration::ZERO,
                pings_handled: 0,
            }),
        );
        sim.schedule_message(
            SimTime::from_millis(1),
            ProcessId::server(0),
            huge,
            Msg::Ping(1),
        );
        sim.run_until_quiescent(SimTime::from_secs(1));
        let p: &Ponger = sim.process(huge).unwrap();
        assert_eq!(p.pings_handled, 1);
    }
}
