//! Code shared by the three Setchain server implementations: client `add` /
//! `get` handling, epoch-proof bookkeeping and epoch creation.

use setchain_crypto::{KeyPair, KeyRegistry, ProcessId, Signature};
use setchain_ledger::AppCtx;
use setchain_simnet::SimTime;

use crate::byzantine::ServerByzMode;
use crate::config::SetchainConfig;
use crate::element::Element;
use crate::messages::SetchainMsg;
use crate::proofs::{make_epoch_proof, verify_epoch_proof, EpochProof};
use crate::state::SetchainState;
use crate::trace::SetchainTrace;
use crate::tx::SetchainTx;

/// Convenience alias for the application context all Setchain servers use.
pub type Ctx<'a, 'b, 'c> = AppCtx<'a, 'b, 'c, SetchainTx, SetchainMsg>;

/// Counters exposed by every Setchain server for tests and experiment
/// reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Client `add` requests accepted (valid, not previously seen).
    pub adds_accepted: u64,
    /// Client `add` requests rejected (invalid or duplicate).
    pub adds_rejected: u64,
    /// Epochs this server has created/consolidated.
    pub epochs_created: u64,
    /// Valid epoch-proofs received from the ledger.
    pub proofs_received: u64,
    /// Invalid epoch-proofs discarded.
    pub proofs_rejected: u64,
    /// Invalid elements discarded during block processing.
    pub elements_rejected: u64,
    /// Batches flushed from the collector (0 for Vanilla).
    pub batches_flushed: u64,
    /// Hashchain: `Request_batch` calls sent.
    pub batch_requests_sent: u64,
    /// Hashchain: `Request_batch` calls answered.
    pub batch_requests_served: u64,
    /// Hashchain: batch requests that timed out or failed verification.
    pub batch_requests_failed: u64,
    /// `get` / `get_epoch` requests answered.
    pub gets_served: u64,
}

/// State and helpers shared by `VanillaApp`, `CompresschainApp` and
/// `HashchainApp`.
pub struct ServerCore {
    /// This server's key pair.
    pub keys: KeyPair,
    /// The PKI.
    pub registry: KeyRegistry,
    /// Deployment configuration.
    pub config: SetchainConfig,
    /// The Setchain state (`the_set`, `epoch`, `history`, `proofs`).
    pub state: SetchainState,
    /// Experiment trace sink.
    pub trace: SetchainTrace,
    /// Application-level behaviour.
    pub byz: ServerByzMode,
    /// Counters.
    pub stats: ServerStats,
}

impl ServerCore {
    /// Creates the shared server state.
    pub fn new(
        keys: KeyPair,
        registry: KeyRegistry,
        config: SetchainConfig,
        trace: SetchainTrace,
        byz: ServerByzMode,
    ) -> Self {
        ServerCore {
            keys,
            registry,
            config,
            state: SetchainState::new(),
            trace,
            byz,
            stats: ServerStats::default(),
        }
    }

    /// This server's process id.
    pub fn id(&self) -> ProcessId {
        self.keys.id
    }

    /// The paper's `add(e)` precondition: `valid_element(e) ∧ e ∉ the_set`.
    /// On success the element is inserted into `the_set` and `true` is
    /// returned; the caller routes it (ledger append or collector).
    pub fn accept_add(&mut self, element: &Element, ctx: &mut Ctx<'_, '_, '_>) -> bool {
        if self.byz == ServerByzMode::DropClientAdds {
            self.stats.adds_rejected += 1;
            return false;
        }
        ctx.consume_cpu(self.config.costs.validate_element);
        if !element.is_valid(&self.registry) || self.state.contains(&element.id) {
            self.stats.adds_rejected += 1;
            return false;
        }
        self.state.insert(element.id);
        self.stats.adds_accepted += 1;
        true
    }

    /// Handles `get` and `get_epoch` requests from clients.
    pub fn handle_get(
        &mut self,
        from: ProcessId,
        msg: &SetchainMsg,
        ctx: &mut Ctx<'_, '_, '_>,
    ) -> bool {
        match msg {
            SetchainMsg::Get { request_id } => {
                self.stats.gets_served += 1;
                let snapshot = self.state.snapshot(self.config.proof_quorum());
                ctx.send_app(
                    from,
                    SetchainMsg::GetResponse {
                        request_id: *request_id,
                        snapshot,
                    },
                );
                true
            }
            SetchainMsg::GetEpoch { request_id, epoch } => {
                self.stats.gets_served += 1;
                let elements = self
                    .state
                    .epoch_elements(*epoch)
                    .map(|e| e.to_vec())
                    .unwrap_or_default();
                let proofs = self.state.proofs_for(*epoch);
                ctx.send_app(
                    from,
                    SetchainMsg::EpochResponse {
                        request_id: *request_id,
                        epoch: *epoch,
                        elements,
                        proofs,
                    },
                );
                true
            }
            _ => false,
        }
    }

    /// Validates and records an epoch-proof extracted from the ledger
    /// (the paper's `valid_proof(j, p, w, history[j])` filter). When the
    /// proof count for the epoch reaches `f + 1`, the commit is reported to
    /// the experiment trace.
    pub fn ingest_proof(&mut self, proof: EpochProof, now: SimTime, ctx: &mut Ctx<'_, '_, '_>) {
        ctx.consume_cpu(self.config.costs.verify_signature);
        let Some(elements) = self.state.epoch_elements(proof.epoch) else {
            self.stats.proofs_rejected += 1;
            return;
        };
        if !verify_epoch_proof(&self.registry, self.config.servers, &proof, elements) {
            self.stats.proofs_rejected += 1;
            return;
        }
        self.stats.proofs_received += 1;
        let count = self.state.add_proof(proof);
        if count == self.config.proof_quorum() {
            self.trace.record_epoch_commit(proof.epoch, now);
        }
    }

    /// Creates a new epoch from `elements` (which must already be filtered to
    /// valid, not-yet-stamped elements), records it in the trace, and returns
    /// the epoch number together with this server's epoch-proof for it.
    pub fn create_epoch(
        &mut self,
        elements: Vec<Element>,
        now: SimTime,
        ctx: &mut Ctx<'_, '_, '_>,
    ) -> (u64, EpochProof) {
        let epoch = self.state.record_epoch(elements);
        self.stats.epochs_created += 1;
        let stamped = self.state.epoch_elements(epoch).expect("just created");
        for e in stamped {
            self.trace.record_epoch_assignment(e.id, epoch, now);
        }
        // Hash + sign cost for the epoch-proof.
        let bytes: usize = stamped.iter().map(|e| e.wire_size()).sum();
        ctx.consume_cpu(self.config.costs.hash_cost(bytes));
        ctx.consume_cpu(self.config.costs.sign);
        let mut proof = make_epoch_proof(&self.keys, epoch, stamped);
        if self.byz == ServerByzMode::ForgeProofs {
            proof.signature = Signature::forged(self.keys.id);
        }
        (epoch, proof)
    }

    /// Filters the elements of a batch/block down to the set `G` that forms a
    /// new epoch: valid elements (unless `validate` is false, for the light
    /// ablations) that are not yet in `history`, de-duplicated.
    pub fn extract_epoch_candidates(
        &mut self,
        elements: &[Element],
        validate: bool,
        ctx: &mut Ctx<'_, '_, '_>,
    ) -> Vec<Element> {
        if validate {
            ctx.consume_cpu(self.config.costs.validate_cost(elements.len()));
        }
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for e in elements {
            if self.state.in_history(&e.id) || !seen.insert(e.id) {
                continue;
            }
            if validate && !e.is_valid(&self.registry) {
                self.stats.elements_rejected += 1;
                continue;
            }
            out.push(*e);
        }
        out
    }
}
