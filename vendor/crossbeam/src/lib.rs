//! Offline stand-in for `crossbeam` — just the `channel` module, just the
//! unbounded MPMC flavor the workload sweep uses.
//!
//! A `Mutex<VecDeque>` + `Condvar` queue is plenty for the sweep's work
//! distribution pattern (tens of scenario tasks, each worth milliseconds to
//! seconds of simulation); crossbeam's lock-free queue only matters at
//! message rates this codebase never pushes through an OS-thread channel.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by `send` when every `Receiver` is gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by `recv` when the channel is empty and every `Sender`
    /// is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake blocked receivers so they can observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            match state.queue.pop_front() {
                Some(value) => Ok(value),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking iterator: yields until the channel drains and disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }

    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::thread;

    #[test]
    fn fan_out_fan_in() {
        let (task_tx, task_rx) = channel::unbounded::<u64>();
        let (result_tx, result_rx) = channel::unbounded::<u64>();
        for i in 0..100 {
            task_tx.send(i).unwrap();
        }
        drop(task_tx);
        thread::scope(|scope| {
            for _ in 0..4 {
                let task_rx = task_rx.clone();
                let result_tx = result_tx.clone();
                scope.spawn(move || {
                    while let Ok(v) = task_rx.recv() {
                        result_tx.send(v * 2).unwrap();
                    }
                });
            }
            drop(result_tx);
            let mut results: Vec<u64> = result_rx.iter().collect();
            results.sort_unstable();
            assert_eq!(results, (0..100).map(|v| v * 2).collect::<Vec<_>>());
        });
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_after_senders_drop_drains_then_errors() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }
}
