//! Token blockchain: the Appendix G extension end to end.
//!
//! Runs a Hashchain Setchain deployment, then drives the `setchain-exec`
//! execution layer from the consolidated epochs of two different servers:
//! every element is decoded as a token transfer, each epoch is validated
//! optimistically in parallel and executed sequentially, invalid transfers
//! are marked void, and both replicas must end up with the identical state
//! root.
//!
//! ```sh
//! cargo run --release -p setchain-bench --example token_blockchain
//! ```

use setchain::Algorithm;
use setchain_exec::{ExecutedChain, ExecutionConfig};
use setchain_simnet::SimTime;
use setchain_workload::Deployment;

fn main() {
    // 1. A 4-server Hashchain deployment with a moderate injection rate. The
    //    injected elements are Arbitrum-like opaque payloads; the execution
    //    layer decodes each one into a transfer deterministically.
    let mut deployment = Deployment::builder(Algorithm::Hashchain)
        .label("token blockchain")
        .servers(4)
        .rate(400.0)
        .collector(50)
        .injection_secs(6)
        .max_run_secs(45)
        .seed(7_777)
        .build();
    let scenario = &deployment.scenario;
    println!(
        "Running {} servers, {} el/s for {} s ...",
        scenario.servers, scenario.sending_rate, scenario.injection_secs
    );
    deployment.sim.run_until(SimTime::from_secs(45));

    let added = deployment.trace.added_count();
    let committed = deployment.trace.committed_count_by(SimTime::from_secs(45));
    println!("Setchain layer: {added} elements added, {committed} committed\n");

    // 2. Execute the consolidated epochs on two independent replicas (one
    //    following server 0, one following server 1), with different thread
    //    counts for the optimistic validation phase — the results must agree.
    let genesis_balance = 5_000_000u128;
    let mut replica_a = ExecutedChain::for_clients(ExecutionConfig::default(), 64, genesis_balance);
    let mut replica_b =
        ExecutedChain::for_clients(ExecutionConfig::sequential(), 64, genesis_balance);

    let s0 = deployment.server(0);
    let s1 = deployment.server(1);
    let executed_a = replica_a.sync_from_setchain(s0.state());
    let executed_b = replica_b.sync_from_setchain(s1.state());

    println!("replica A executed {executed_a} epochs from server 0");
    println!("replica B executed {executed_b} epochs from server 1\n");

    println!(
        "{:>6} {:>8} {:>8} {:>6} {:>12} {:>8}   state root",
        "epoch", "txs", "applied", "void", "value moved", "fees"
    );
    for summary in replica_a.summaries().take(12) {
        println!(
            "{:>6} {:>8} {:>8} {:>6} {:>12} {:>8}   {}",
            summary.epoch,
            summary.txs,
            summary.applied,
            summary.void,
            summary.value_moved,
            summary.fees,
            &summary.state_root.to_hex()[..16],
        );
    }
    if replica_a.executed_epochs() > 12 {
        println!("   ... ({} epochs total)", replica_a.executed_epochs());
    }

    // 3. The replication guarantee of Appendix G: both replicas computed the
    //    same chain of state roots over the common prefix of epochs.
    let common = replica_a.executed_epochs().min(replica_b.executed_epochs());
    let agree = (1..=common).all(|e| {
        replica_a.summary(e).map(|s| s.state_root) == replica_b.summary(e).map(|s| s.state_root)
    });
    let (applied, void) = replica_a.totals();
    println!("\ncommon executed prefix: {common} epochs, state roots agree: {agree}");
    println!(
        "replica A totals: {applied} transfers applied, {void} void, fee sink balance = {}",
        replica_a.state().fees_collected()
    );
    println!(
        "total supply is conserved: {} (genesis {})",
        replica_a.state().total_supply(),
        64 * genesis_balance
    );
}
