//! Epoch-proofs: server signatures over the hash of an epoch.
//!
//! An epoch-proof for epoch `i` is `Sign_v(Hash(i, history[i]))`. Proofs are
//! disseminated through the ledger (directly in Vanilla, inside batches in
//! Compresschain and Hashchain) and a client that collects `f + 1` consistent
//! proofs for an epoch knows at least one correct server vouches for it
//! (Property 8, Valid-Epoch).

use serde::{Deserialize, Serialize};
use setchain_crypto::{
    sign, sign_with, verify, Digest512, HmacSha512Key, KeyPair, KeyRegistry, ProcessId, Sha512,
    Signature,
};

use crate::element::Element;

/// Wire length of an epoch-proof, as reported in the paper's evaluation
/// (139 bytes).
pub const EPOCH_PROOF_WIRE_LEN: usize = 139;

/// An epoch-proof `⟨i, p, v⟩`: epoch number, signature, signer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EpochProof {
    /// The epoch this proof vouches for.
    pub epoch: u64,
    /// The signing server.
    pub signer: ProcessId,
    /// Signature over `Hash(epoch, elements)`.
    pub signature: Signature,
}

/// Serializable summary of a proof (used in experiment reports).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EpochProofSummary {
    /// Epoch number.
    pub epoch: u64,
    /// Signer id.
    pub signer: u64,
}

impl EpochProof {
    /// Wire length (fixed, per the paper).
    pub fn wire_size(&self) -> usize {
        EPOCH_PROOF_WIRE_LEN
    }

    /// Summary for reports.
    pub fn summary(&self) -> EpochProofSummary {
        EpochProofSummary {
            epoch: self.epoch,
            signer: self.signer.0,
        }
    }
}

/// Canonical hash of an epoch: `Hash(i, history[i])`.
///
/// Elements are hashed in ascending id order so that the digest does not
/// depend on the incidental order a server stored them in. Identity, size and
/// content seed are bound, which (together with the client authenticator
/// checked by `valid_element`) binds the element contents.
pub fn epoch_hash(epoch: u64, elements: &[Element]) -> Digest512 {
    let mut ids: Vec<&Element> = elements.iter().collect();
    ids.sort_by_key(|e| e.id);
    let mut h = Sha512::new();
    h.update(b"setchain-epoch");
    h.update(&epoch.to_le_bytes());
    h.update(&(ids.len() as u64).to_le_bytes());
    // One packed update per element: the hasher's buffered-update
    // bookkeeping is not free, and epoch hashing runs once per epoch per
    // server on the commit path.
    let mut packed = [0u8; 36];
    for e in ids {
        packed[..8].copy_from_slice(&e.id.0.to_le_bytes());
        packed[8..16].copy_from_slice(&e.client.0.to_le_bytes());
        packed[16..20].copy_from_slice(&e.size.to_le_bytes());
        packed[20..28].copy_from_slice(&e.content_seed.to_le_bytes());
        packed[28..36].copy_from_slice(&e.auth.to_le_bytes());
        h.update(&packed);
    }
    h.finalize()
}

/// Creates the epoch-proof `p_v(i) = Sign_v(Hash(i, elements))`.
pub fn make_epoch_proof(keys: &KeyPair, epoch: u64, elements: &[Element]) -> EpochProof {
    make_epoch_proof_for_digest(keys, epoch, &epoch_hash(epoch, elements))
}

/// Creates an epoch-proof over an already-computed epoch digest.
///
/// Servers cache the digest of every epoch they record
/// ([`crate::SetchainState::epoch_digest`]), so signing and verifying proofs
/// does not re-hash the epoch's elements at every site.
pub fn make_epoch_proof_for_digest(keys: &KeyPair, epoch: u64, digest: &Digest512) -> EpochProof {
    EpochProof {
        epoch,
        signer: keys.id,
        signature: sign(keys, digest.as_bytes()),
    }
}

/// [`make_epoch_proof_for_digest`] through a precomputed HMAC key schedule
/// for `signer`: servers sign one proof per epoch, and the schedule spares
/// the per-signature key-pad absorptions.
pub fn make_epoch_proof_with_key(
    key: &HmacSha512Key,
    signer: ProcessId,
    epoch: u64,
    digest: &Digest512,
) -> EpochProof {
    EpochProof {
        epoch,
        signer,
        signature: sign_with(key, signer, digest.as_bytes()),
    }
}

/// The paper's `valid_proof(j, p, w, history[j])`: checks that `proof` is a
/// valid signature by its claimed signer over the hash of `elements` for its
/// claimed epoch, and that the signer is one of the `n` Setchain servers.
pub fn verify_epoch_proof(
    registry: &KeyRegistry,
    servers: usize,
    proof: &EpochProof,
    elements: &[Element],
) -> bool {
    verify_epoch_proof_digest(registry, servers, proof, &epoch_hash(proof.epoch, elements))
}

/// [`verify_epoch_proof`] against a cached epoch digest: same verdict, no
/// re-hash of the epoch elements.
pub fn verify_epoch_proof_digest(
    registry: &KeyRegistry,
    servers: usize,
    proof: &EpochProof,
    digest: &Digest512,
) -> bool {
    if proof.signature.signer != proof.signer {
        return false;
    }
    if !proof.signer.is_server() || proof.signer.server_index() >= servers {
        return false;
    }
    verify(registry, digest.as_bytes(), &proof.signature)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{Element, ElementId};
    use setchain_crypto::KeyRegistry;

    fn setup() -> (KeyRegistry, Vec<Element>) {
        let reg = KeyRegistry::bootstrap(3, 4, 2);
        let client = reg.lookup(ProcessId::client(0)).unwrap();
        let elements: Vec<Element> = (0..10)
            .map(|i| Element::new(&client, ElementId::new(0, i), 400 + i as u32, i))
            .collect();
        (reg, elements)
    }

    #[test]
    fn proof_roundtrip() {
        let (reg, elements) = setup();
        let server = reg.lookup(ProcessId::server(1)).unwrap();
        let proof = make_epoch_proof(&server, 3, &elements);
        assert_eq!(proof.epoch, 3);
        assert_eq!(proof.signer, ProcessId::server(1));
        assert_eq!(proof.wire_size(), 139);
        assert!(verify_epoch_proof(&reg, 4, &proof, &elements));
        assert_eq!(proof.summary().epoch, 3);
    }

    #[test]
    fn proof_rejects_wrong_epoch_or_elements() {
        let (reg, elements) = setup();
        let server = reg.lookup(ProcessId::server(1)).unwrap();
        let proof = make_epoch_proof(&server, 3, &elements);
        // Different epoch number.
        let mut wrong_epoch = proof;
        wrong_epoch.epoch = 4;
        assert!(!verify_epoch_proof(&reg, 4, &wrong_epoch, &elements));
        // Different element set.
        assert!(!verify_epoch_proof(&reg, 4, &proof, &elements[..9]));
    }

    #[test]
    fn proof_rejects_non_server_or_mismatched_signer() {
        let (reg, elements) = setup();
        let client = reg.lookup(ProcessId::client(0)).unwrap();
        let proof_by_client = make_epoch_proof(&client, 1, &elements);
        assert!(!verify_epoch_proof(&reg, 4, &proof_by_client, &elements));

        let server = reg.lookup(ProcessId::server(1)).unwrap();
        let mut mismatched = make_epoch_proof(&server, 1, &elements);
        mismatched.signer = ProcessId::server(2);
        assert!(!verify_epoch_proof(&reg, 4, &mismatched, &elements));

        // Signer outside the server set of this deployment.
        let outsider = reg.lookup(ProcessId::server(3)).unwrap();
        let proof = make_epoch_proof(&outsider, 1, &elements);
        assert!(!verify_epoch_proof(&reg, 3, &proof, &elements));
        assert!(verify_epoch_proof(&reg, 4, &proof, &elements));
    }

    #[test]
    fn epoch_hash_is_order_insensitive_but_content_sensitive() {
        let (_, elements) = setup();
        let mut reversed = elements.clone();
        reversed.reverse();
        assert_eq!(epoch_hash(1, &elements), epoch_hash(1, &reversed));
        assert_ne!(epoch_hash(1, &elements), epoch_hash(2, &elements));
        assert_ne!(epoch_hash(1, &elements), epoch_hash(1, &elements[..9]));
        let mut tampered = elements.clone();
        tampered[0].size += 1;
        assert_ne!(epoch_hash(1, &elements), epoch_hash(1, &tampered));
    }

    #[test]
    fn empty_epoch_hash_is_well_defined() {
        assert_eq!(epoch_hash(1, &[]), epoch_hash(1, &[]));
        assert_ne!(epoch_hash(1, &[]), epoch_hash(2, &[]));
    }
}
