//! Byzantine tolerance demo: a Hashchain deployment where one server refuses
//! to serve batch contents (the attack the `f + 1` consolidation rule defends
//! against), another forges epoch-proofs, and one ledger validator is silent.
//! The correct servers still agree, elements still commit, and a light client
//! still rejects the forged proofs.
//!
//! ```sh
//! cargo run --release -p setchain-bench --example byzantine_tolerance
//! ```

use setchain::{Algorithm, ServerByzMode};
use setchain_ledger::ByzMode;
use setchain_simnet::SimTime;
use setchain_workload::Deployment;

fn main() {
    // 7 servers: ledger tolerates f_ledger = 2, Setchain uses f = 3. The
    // builder takes the scenario knobs and the fault injection in one chain.
    println!("Fault injection:");
    println!("  server 4: refuses Request_batch (application-level fault)");
    println!("  server 5: forges its epoch-proof signatures");
    println!("  server 6: silent ledger validator (crash fault)");
    let mut deployment = Deployment::builder(Algorithm::Hashchain)
        .label("byzantine-tolerance")
        .servers(7)
        .rate(700.0)
        .collector(50)
        .injection_secs(8)
        .max_run_secs(60)
        .seed(31337)
        .server_fault(4, ServerByzMode::RefuseBatchService)
        .server_fault(5, ServerByzMode::ForgeProofs)
        .ledger_fault(6, ByzMode::Silent)
        .build();
    let f = deployment.scenario.setchain_f();

    // A light client audits epoch 1 through server 1 after the dust settles:
    // the verdict must come from the f + 1 proof quorum, not server trust.
    let mut auditor = deployment.client_session(100, 4242);
    auditor.get_epoch(SimTime::from_secs(45), 1, 1);
    auditor.install(&mut deployment);

    deployment.sim.run_until(SimTime::from_secs(50));

    let added = deployment.trace.added_count();
    let committed = deployment.trace.committed_count_by(SimTime::from_secs(50));
    println!(
        "\nElements added: {added}, committed with >= f+1 = {} proofs: {committed}",
        f + 1
    );

    // The correct servers (0-3) agree on every common epoch.
    let reference = deployment.server(0);
    for i in 1..4 {
        let other = deployment.server(i);
        println!(
            "server 0 vs server {i}: consistent epochs = {}, unique epochs = {}",
            reference.state().check_consistent_with(other.state()),
            other.state().check_unique_epoch()
        );
    }

    // The refusing server forced extra batch requests / retries.
    let stats0 = deployment.server(0).stats();
    println!(
        "server 0 hash-reversal: {} requests sent, {} failed/retried, {} served",
        stats0.batch_requests_sent, stats0.batch_requests_failed, stats0.batch_requests_served
    );

    // The forged proofs of server 5 are rejected: check that an epoch's proof
    // set never counts it, and that the light client's verdict agrees.
    let state = reference.state();
    let mut forged_counted = 0;
    for epoch in 1..=state.epoch() {
        if state
            .proofs_for(epoch)
            .iter()
            .any(|p| p.signer == setchain_crypto::ProcessId::server(5))
        {
            forged_counted += 1;
        }
    }
    println!("epochs where server 5's forged proof was accepted by server 0: {forged_counted}");

    for epoch in auditor.outcome(&deployment).epochs {
        println!(
            "light-client verification of epoch {} via server {}: {:?}",
            epoch.epoch, epoch.server, epoch.verification
        );
    }
}
