//! Prints Table 1 (the evaluated parameter space).
fn main() {
    let ctx = setchain_bench::ExperimentCtx::from_env();
    setchain_bench::figures::table1(&ctx);
}
