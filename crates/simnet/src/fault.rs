//! Deterministic, schedulable fault injection.
//!
//! A [`FaultPlan`] is a list of `(time, FaultEvent)` pairs installed on a
//! [`Simulation`](crate::Simulation) before it starts. The scheduler applies
//! each fault when simulated time reaches it — faults due at instant `T` are
//! applied *before* any message or timer scheduled at `T` dispatches — so a
//! chaos run is exactly as replayable as a fault-free one: same seed, same
//! plan, same schedule, bit for bit.
//!
//! Faults never consume a random draw or a sequence number; they only mutate
//! network state (partitions, loss rate) or process liveness (crash,
//! restart). Divergence between two runs of the same plan would therefore be
//! a scheduler bug, and `tests/determinism.rs` pins that down.

use std::fmt;

use setchain_crypto::ProcessId;

use crate::network::Partition;
use crate::time::SimTime;

/// One scheduled fault action.
///
/// The enum is `#[non_exhaustive]`: future fault kinds (e.g. clock skew or
/// threaded-runtime faults) can be added without breaking downstream
/// matches.
#[non_exhaustive]
#[derive(Clone, Debug)]
pub enum FaultEvent {
    /// Crash a process: from this instant until a matching [`Restart`],
    /// every delivery and timer addressed to it is dropped at dispatch time
    /// and it runs no handlers. In-memory state is retained (crash-recovery
    /// with state); what the process *missed* must be replayed by a
    /// protocol-level catch-up mechanism after restart.
    ///
    /// [`Restart`]: FaultEvent::Restart
    Crash(ProcessId),
    /// Restart a previously crashed process: it becomes schedulable again
    /// and its `on_start` hook runs once more (re-arming periodic timers).
    /// Timers armed by the pre-crash incarnation never fire.
    Restart(ProcessId),
    /// Install a network partition; messages crossing it are dropped.
    InjectPartition(Partition),
    /// Remove every active partition.
    HealPartitions,
    /// Set the network loss rate to `rate` (in `[0, 1]`). Use `0.0` to heal.
    SetLossRate(f64),
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEvent::Crash(pid) => write!(f, "crash({pid})"),
            FaultEvent::Restart(pid) => write!(f, "restart({pid})"),
            FaultEvent::InjectPartition(_) => write!(f, "inject-partition"),
            FaultEvent::HealPartitions => write!(f, "heal-partitions"),
            FaultEvent::SetLossRate(rate) => write!(f, "set-loss-rate({rate})"),
        }
    }
}

/// A deterministic schedule of fault injections.
///
/// Build one with [`FaultPlan::new`] and the fluent [`at`](FaultPlan::at)
/// method, then hand it to
/// [`Simulation::install_fault_plan`](crate::Simulation::install_fault_plan)
/// before the run starts. Entries may be added in any order; they are
/// stably sorted by time at installation, so same-instant faults apply in
/// insertion order.
#[non_exhaustive]
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    entries: Vec<(SimTime, FaultEvent)>,
}

impl FaultPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Fluent builder: schedules `event` at simulated time `at`.
    #[must_use]
    pub fn at(mut self, at: SimTime, event: FaultEvent) -> Self {
        self.push(at, event);
        self
    }

    /// Schedules `event` at simulated time `at`.
    pub fn push(&mut self, at: SimTime, event: FaultEvent) {
        if let FaultEvent::SetLossRate(rate) = &event {
            assert!(
                (0.0..=1.0).contains(rate),
                "loss rate must be in [0,1], got {rate}"
            );
        }
        self.entries.push((at, event));
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The scheduled faults, in insertion order.
    pub fn entries(&self) -> &[(SimTime, FaultEvent)] {
        &self.entries
    }

    /// Consumes the plan into a time-sorted event list (stable, so
    /// same-instant entries keep insertion order).
    pub(crate) fn into_sorted_entries(self) -> Vec<(SimTime, FaultEvent)> {
        let mut entries = self.entries;
        entries.sort_by_key(|(at, _)| *at);
        entries
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FaultPlan[")?;
        for (i, (at, event)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{event}@{at}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builds_and_displays() {
        let plan = FaultPlan::new()
            .at(
                SimTime::from_secs(2),
                FaultEvent::Crash(ProcessId::server(1)),
            )
            .at(
                SimTime::from_secs(5),
                FaultEvent::Restart(ProcessId::server(1)),
            )
            .at(SimTime::from_secs(1), FaultEvent::SetLossRate(0.01));
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        let shown = format!("{plan}");
        assert!(shown.contains("crash"), "{shown}");
        assert!(shown.contains("set-loss-rate(0.01)"), "{shown}");
        // Sorting is by time, stable.
        let sorted = plan.into_sorted_entries();
        assert_eq!(sorted[0].0, SimTime::from_secs(1));
        assert_eq!(sorted[2].0, SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "loss rate")]
    fn invalid_loss_rate_rejected_at_plan_time() {
        let _ = FaultPlan::new().at(SimTime::ZERO, FaultEvent::SetLossRate(2.0));
    }
}
