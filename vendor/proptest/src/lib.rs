//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use:
//!
//! - `proptest! { #[test] fn name(x in strategy, ...) { body } }`, with an
//!   optional leading `#![proptest_config(ProptestConfig::with_cases(n))]`
//! - integer-range strategies (`0u64..8`), tuple strategies, `any::<T>()`,
//!   and `proptest::collection::vec(strategy, size_range)` (nestable)
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`
//!
//! Each test runs `cases` deterministic random cases (seeded per case index,
//! so failures reproduce without a persistence file). Unlike real proptest
//! there is **no shrinking**: a failure reports the case index and re-running
//! the test deterministically replays it.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;
pub mod prelude;

/// How a `proptest!` block runs; only `cases` is configurable.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of random values of one type. Real proptest separates
/// strategies from value trees to support shrinking; without shrinking a
/// strategy is just a seeded generation function.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_int_range!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_strategy_for_tuple {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_strategy_for_tuple!(A / 0);
impl_strategy_for_tuple!(A / 0, B / 1);
impl_strategy_for_tuple!(A / 0, B / 1, C / 2);
impl_strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3);
impl_strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

/// Uniform "any value of T" strategy, via the shim rand's `Standard` trait.
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// `any::<T>()`: arbitrary value of a primitive type.
pub fn any<T: rand::Standard>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

/// Drives the deterministic case loop for one property. Used by the
/// `proptest!` macro expansion; not part of real proptest's public API.
pub fn run_cases<F: FnMut(&mut StdRng)>(config: &ProptestConfig, mut f: F) {
    for case in 0..config.cases {
        // Distinct, deterministic seed per case index.
        let mut rng = StdRng::seed_from_u64(
            0x5e7c_4a11_0000_0000 ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!(
                "proptest shim: case {case} of {} failed (seeding is deterministic; \
                 re-running the test reproduces it)",
                config.cases
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// `proptest! { ... }`: defines `#[test]` functions whose arguments are drawn
/// from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                $crate::run_cases(&__config, |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), __rng);)+
                    $body
                });
            }
        )+
    };
}

/// `prop_assert!`: like `assert!` (the shim's case loop catches the panic to
/// report the failing case index).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!`: like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!`: like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_are_honored(x in 3u64..10, y in 0u8..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn tuples_and_vecs_compose(
            pairs in proptest::collection::vec((0u32..5, 10u32..20), 0..50),
            flag in any::<bool>(),
        ) {
            prop_assert!(pairs.len() < 50);
            for (a, b) in &pairs {
                prop_assert!(*a < 5 && (10..20).contains(b));
            }
            let _ = flag;
        }

        #[test]
        fn nested_vecs(rows in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..8), 1..6)) {
            prop_assert!(!rows.is_empty() && rows.len() < 6);
            prop_assert!(rows.iter().all(|r| r.len() < 8));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first: Vec<u64> = Vec::new();
        crate::run_cases(&crate::ProptestConfig::with_cases(5), |rng| {
            first.push(crate::Strategy::generate(&(0u64..1000), rng));
        });
        let mut second: Vec<u64> = Vec::new();
        crate::run_cases(&crate::ProptestConfig::with_cases(5), |rng| {
            second.push(crate::Strategy::generate(&(0u64..1000), rng));
        });
        assert_eq!(first, second);
        // Different cases draw different values.
        assert!(first.windows(2).any(|w| w[0] != w[1]));
    }
}
