//! The actor abstraction: processes, their execution context, and the
//! [`Wire`] trait that gives every message a wire size for the bandwidth
//! model.

use std::any::Any;
use std::fmt::Debug;
use std::sync::Arc;

use rand::rngs::StdRng;
use setchain_crypto::ProcessId;

use crate::time::{SimDuration, SimTime};

/// Token identifying a timer set by a process. The meaning of the token is
/// private to the process that set it.
pub type TimerToken = u64;

/// Messages exchanged through the simulated network.
///
/// `wire_size` is the number of bytes the message occupies on the wire; the
/// network uses it for the bandwidth/transmission-time model, and experiment
/// reports use it to account for communication volume.
pub trait Wire: Clone + Debug + Send + 'static {
    /// Serialized size of this message in bytes.
    fn wire_size(&self) -> usize;
}

/// Actions a process can ask the simulation to perform. Collected during a
/// handler invocation and applied by the scheduler afterwards.
///
/// Messages are carried as `Arc<M>` so that fan-out sends (broadcasts to all
/// peers) enqueue one shared payload with a refcount bump per recipient
/// instead of deep-cloning the message per peer. The scheduler hands each
/// recipient an owned `M` at delivery time: the last reference is unwrapped
/// without a copy, so point-to-point messages are never cloned at all.
#[derive(Debug)]
pub(crate) enum Action<M> {
    Send {
        to: ProcessId,
        msg: Arc<M>,
    },
    SetTimer {
        delay: SimDuration,
        token: TimerToken,
    },
}

/// Execution context handed to a process while it handles an event.
///
/// All interaction with the outside world goes through the context: sending
/// messages, arming timers, consuming simulated CPU time and drawing random
/// numbers (from the simulation's seeded RNG, so runs stay deterministic).
///
/// The action buffer is borrowed from the scheduler and reused across
/// handler invocations, so a handler that sends a few messages performs no
/// allocation beyond the messages themselves.
pub struct Context<'a, M> {
    pub(crate) self_id: ProcessId,
    pub(crate) now: SimTime,
    pub(crate) actions: &'a mut Vec<Action<M>>,
    pub(crate) cpu_consumed: SimDuration,
    pub(crate) rng: &'a mut StdRng,
}

impl<'a, M> Context<'a, M> {
    /// The id of the process currently executing.
    pub fn self_id(&self) -> ProcessId {
        self.self_id
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends `msg` to `to`. Delivery time is decided by the network model;
    /// the message may be lost if loss or partitions are configured.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.send_shared(to, Arc::new(msg));
    }

    /// Sends an already-`Arc`-wrapped message: the send itself is a refcount
    /// bump, and the queue holds one shared payload for all recipients.
    /// Ownership is materialized lazily at delivery, so the final recipient
    /// (and every point-to-point or lost message) never clones; earlier
    /// recipients of a broadcast clone then. This is the fan-out primitive —
    /// wrap the message once, then `send_shared` a clone of the `Arc` to
    /// every recipient.
    pub fn send_shared(&mut self, to: ProcessId, msg: Arc<M>) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Sends `msg` to every process in `peers` (excluding no one; include or
    /// exclude self in the iterator as desired). The payload is wrapped in
    /// an `Arc` once and shared across the queue (see
    /// [`send_shared`](Self::send_shared) for when clones still happen).
    pub fn send_to_all<I>(&mut self, peers: I, msg: M)
    where
        I: IntoIterator<Item = ProcessId>,
    {
        let msg = Arc::new(msg);
        for peer in peers {
            self.send_shared(peer, Arc::clone(&msg));
        }
    }

    /// Arms a timer that will fire `delay` from now with the given token.
    pub fn set_timer(&mut self, delay: SimDuration, token: TimerToken) {
        self.actions.push(Action::SetTimer { delay, token });
    }

    /// Models `amount` of CPU work on this node: subsequent message and timer
    /// deliveries to this node are deferred until the work is done.
    pub fn consume_cpu(&mut self, amount: SimDuration) {
        self.cpu_consumed += amount;
    }

    /// Access to the simulation's deterministic RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

/// A simulated process (server, client, validator…).
///
/// Implementations must also provide `as_any`/`as_any_mut` so the experiment
/// harness can inspect actor state after a run; the one-line bodies are
/// always `self`.
pub trait Process<M: Wire>: Any + Send {
    /// Called once when the simulation starts, before any event is delivered.
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}

    /// Called when a message addressed to this process arrives.
    fn on_message(&mut self, from: ProcessId, msg: M, ctx: &mut Context<'_, M>);

    /// Called when several messages addressed to this process arrive at the
    /// same simulated instant (a broadcast fan-in, a loopback burst): the
    /// scheduler coalesces them into one invocation instead of paying one
    /// queue pop and one handler dispatch per message.
    ///
    /// The default implementation drains the batch through
    /// [`on_message`](Self::on_message) one entry at a time, in delivery
    /// order, so implementing it is optional. Overriders must consume every
    /// entry (the scheduler clears the buffer afterwards either way) and
    /// must preserve the per-message semantics of `on_message` — the batch
    /// boundary carries no protocol meaning, it is purely a scheduling
    /// artifact.
    fn on_messages(&mut self, batch: &mut Vec<(ProcessId, M)>, ctx: &mut Context<'_, M>) {
        for (from, msg) in batch.drain(..) {
            self.on_message(from, msg, ctx);
        }
    }

    /// Called when a timer set by this process fires.
    fn on_timer(&mut self, _token: TimerToken, _ctx: &mut Context<'_, M>) {}

    /// Upcast for post-run inspection.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for post-run inspection.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    // The payload is never read; it exists so the test message has a body
    // like a real wire message.
    #[derive(Clone, Debug)]
    struct Ping(#[allow(dead_code)] u32);

    impl Wire for Ping {
        fn wire_size(&self) -> usize {
            4
        }
    }

    #[test]
    fn context_collects_actions() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut actions = Vec::new();
        let mut ctx: Context<'_, Ping> = Context {
            self_id: ProcessId::server(0),
            now: SimTime::from_secs(1),
            actions: &mut actions,
            cpu_consumed: SimDuration::ZERO,
            rng: &mut rng,
        };
        assert_eq!(ctx.self_id(), ProcessId::server(0));
        assert_eq!(ctx.now(), SimTime::from_secs(1));
        ctx.send(ProcessId::server(1), Ping(1));
        ctx.send_to_all([ProcessId::server(2), ProcessId::server(3)], Ping(2));
        ctx.set_timer(SimDuration::from_millis(5), 7);
        ctx.consume_cpu(SimDuration::from_micros(100));
        ctx.consume_cpu(SimDuration::from_micros(50));
        assert_eq!(ctx.actions.len(), 4);
        assert_eq!(ctx.cpu_consumed, SimDuration::from_micros(150));
        let _ = ctx.rng().gen_range(0..10u32);
    }

    use rand::Rng;
}
