//! Voting system: ballots in a Setchain, verified from a single server.
//!
//! The paper motivates Setchain with applications like digital registries and
//! voting systems (e.g. Chirotonia), where elements need no order *within* an
//! epoch. This example runs an election on top of Compresschain: voters are
//! typed client sessions that each cast one signed ballot through their
//! nearest server, an auditor session later fetches epochs from a *single*
//! server and accepts them only with `f + 1` valid epoch-proofs, and the
//! tally is computed from the verified epochs alone.
//!
//! ```sh
//! cargo run --release -p setchain-bench --example voting_system
//! ```

use std::collections::HashSet;

use setchain::{Algorithm, Element, ElementId};
use setchain_simnet::SimTime;
use setchain_workload::Deployment;

const CANDIDATES: [&str; 3] = ["Ada", "Barbara", "Grace"];
const VOTERS: u64 = 40;

/// The candidate a ballot element encodes (derived from its content seed, the
/// way a real deployment would parse the ballot payload).
fn candidate_of(e: &Element) -> usize {
    (e.content_seed % CANDIDATES.len() as u64) as usize
}

fn main() {
    // 1. Four Setchain servers run the election registry, with a light
    //    background load of ordinary registry traffic; the ballots below are
    //    added by dedicated voter sessions on top of it.
    let mut deployment = Deployment::builder(Algorithm::Compresschain)
        .label("voting")
        .servers(4)
        .rate(40.0)
        .collector(10)
        .injection_secs(2)
        .max_run_secs(40)
        .seed(1_848)
        .build();
    let n = deployment.scenario.servers;

    // 2. One session per voter: each casts one ballot (candidate choice
    //    encoded in the content seed), spread over the first few seconds and
    //    across all four servers.
    let mut cast: HashSet<ElementId> = HashSet::new();
    for voter in 0..VOTERS {
        let mut session = deployment.client_session(1_000 + voter as usize, 9_000 + voter);
        let choice = (voter * 7 + 3) % CANDIDATES.len() as u64;
        let receipt = session.add(
            SimTime::from_millis(200 + voter * 150),
            (voter % n as u64) as usize,
            256,
            choice,
        );
        cast.insert(receipt.id);
        session.install(&mut deployment);
    }

    // 3. The auditor talks to one server only (server 3) and asks for the
    //    state summary plus every epoch, late enough that proofs are in.
    //    Compresschain turns every flushed batch into an epoch, so 30 seconds
    //    of running produces a few hundred (mostly small) epochs.
    let mut auditor = deployment.client_session(99, 31_337);
    auditor.get(SimTime::from_secs(30), 3);
    auditor.get_epochs(SimTime::from_secs(30), 3, 1..=600);
    auditor.install(&mut deployment);

    // 4. Run the election.
    deployment.sim.run_until(SimTime::from_secs(35));

    // 5. Tally only what the auditor could verify with f + 1 proofs from its
    //    single server — unverified epochs are skipped, not trusted.
    let outcome = auditor.outcome(&deployment);
    let mut tally = [0usize; CANDIDATES.len()];
    let mut counted = 0;
    for epoch in &outcome.epochs {
        if epoch.elements.is_empty() && epoch.proof_count == 0 {
            continue;
        }
        if !epoch.is_verified() {
            println!(
                "epoch {}: NOT verified ({:?}) — skipped from the tally",
                epoch.epoch, epoch.verification
            );
            continue;
        }
        for ballot in &epoch.elements {
            // Only count ballots cast by registered voters, once each.
            if cast.contains(&ballot.id) {
                tally[candidate_of(ballot)] += 1;
                counted += 1;
            }
        }
    }

    println!(
        "ballots cast: {VOTERS}, epochs verified with f+1 proofs: {}",
        outcome.verified_count()
    );
    println!("ballots counted from verified epochs: {counted}\n");
    for (name, votes) in CANDIDATES.iter().zip(tally) {
        println!("  {name:<10} {votes:>3} votes  {}", "#".repeat(votes));
    }

    // 6. Cross-check against the servers' own state: Unique-Epoch guarantees
    //    no ballot is ever counted twice.
    let s0 = deployment.server(0);
    println!(
        "\nserver 0: epoch = {}, unique-epoch holds: {}, consistent with server 2: {}",
        s0.state().epoch(),
        s0.state().check_unique_epoch(),
        s0.state()
            .check_consistent_with(deployment.server(2).state()),
    );
}
