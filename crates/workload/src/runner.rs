//! Runs a scenario to completion and collects the results.

use std::time::Instant;

use setchain_ledger::LedgerTrace;
use setchain_simnet::{SimDuration, SimTime};

use crate::deploy::Deployment;
use crate::scenario::Scenario;
use setchain::SetchainTrace;

/// The outcome of running one scenario.
pub struct RunResult {
    /// The scenario that was run.
    pub scenario: Scenario,
    /// Elements added by the clients.
    pub added: u64,
    /// Elements whose epoch reached `f + 1` proofs by the end of the run.
    pub committed: u64,
    /// Simulated time at which the run stopped.
    pub finished_at: SimTime,
    /// Simulated time at which the last element committed (if all did).
    pub all_committed_at: Option<SimTime>,
    /// The Setchain-level trace (per-element add/epoch/commit times).
    pub trace: SetchainTrace,
    /// The ledger-level trace (mempool/block stages; empty unless the
    /// scenario enabled the detailed trace).
    pub ledger_trace: LedgerTrace,
    /// Messages dropped by random loss during the run.
    pub dropped_loss: u64,
    /// Messages dropped by an active network partition.
    pub dropped_partition: u64,
    /// Messages dropped because the recipient was crashed at delivery time.
    pub dropped_crashed: u64,
    /// Wall-clock time the simulation took.
    pub wall: std::time::Duration,
}

impl RunResult {
    /// Fraction of added elements committed by the end of the run.
    pub fn final_efficiency(&self) -> f64 {
        if self.added == 0 {
            return 1.0;
        }
        self.committed as f64 / self.added as f64
    }

    /// Total messages dropped for any reason (loss, partition, crashed
    /// recipient).
    pub fn dropped(&self) -> u64 {
        self.dropped_loss + self.dropped_partition + self.dropped_crashed
    }

    /// Average committed throughput over the first `secs` seconds of the run
    /// (the paper's Table 2 reports this for the first 50 s).
    pub fn average_throughput(&self, secs: u64) -> f64 {
        let committed = self.trace.committed_count_by(SimTime::from_secs(secs));
        committed as f64 / secs as f64
    }
}

/// Runs `scenario` until every added element has committed (checked after the
/// injection period) or `max_run_secs` elapses.
pub fn run_scenario(scenario: &Scenario) -> RunResult {
    run_deployment(Deployment::build(scenario))
}

/// Runs an already-built deployment (used by tests that inject faults).
pub fn run_deployment(mut deployment: Deployment) -> RunResult {
    let scenario = deployment.scenario.clone();
    let start = Instant::now();
    let check_interval = SimDuration::from_secs(5);
    let injection_end = SimTime::from_secs(scenario.injection_secs);
    let limit = SimTime::from_secs(scenario.max_run_secs);

    let mut now = SimTime::ZERO;
    let mut all_committed_at: Option<SimTime> = None;
    while now < limit {
        let next = (now + check_interval).min(limit);
        deployment.sim.run_until(next);
        now = next;
        if now > injection_end {
            let added = deployment.trace.added_count();
            let committed = deployment.trace.committed_count_by(now);
            if added > 0 && committed >= added {
                all_committed_at = Some(now);
                break;
            }
        }
    }

    let added = deployment.trace.added_count() as u64;
    let committed = deployment.trace.committed_count_by(now) as u64;
    RunResult {
        scenario,
        added,
        committed,
        finished_at: now,
        all_committed_at,
        dropped_loss: deployment.sim.network().dropped_loss(),
        dropped_partition: deployment.sim.network().dropped_partition(),
        dropped_crashed: deployment.sim.dropped_crashed(),
        trace: deployment.trace,
        ledger_trace: deployment.ledger_trace,
        wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setchain::Algorithm;

    #[test]
    fn small_hashchain_run_completes_and_reports() {
        let scenario = Scenario::base(Algorithm::Hashchain)
            .with_servers(4)
            .with_rate(300.0)
            .with_collector(50)
            .with_injection_secs(5)
            .with_max_run_secs(60)
            .with_seed(11);
        let result = run_scenario(&scenario);
        assert!(result.added > 1_000, "added={}", result.added);
        assert!(
            result.final_efficiency() > 0.95,
            "efficiency={}",
            result.final_efficiency()
        );
        assert!(result.all_committed_at.is_some());
        assert!(result.average_throughput(20) > 0.0);
        assert!(result.finished_at <= SimTime::from_secs(60));
    }

    #[test]
    fn small_vanilla_run_completes() {
        let scenario = Scenario::base(Algorithm::Vanilla)
            .with_servers(4)
            .with_rate(100.0)
            .with_injection_secs(5)
            .with_max_run_secs(90)
            .with_seed(12);
        let result = run_scenario(&scenario);
        assert!(result.added > 400);
        assert!(
            result.final_efficiency() > 0.95,
            "efficiency={}",
            result.final_efficiency()
        );
    }

    #[test]
    fn small_compresschain_run_completes() {
        let scenario = Scenario::base(Algorithm::Compresschain)
            .with_servers(4)
            .with_rate(300.0)
            .with_collector(50)
            .with_injection_secs(5)
            .with_max_run_secs(90)
            .with_seed(13);
        let result = run_scenario(&scenario);
        assert!(result.added > 1_000);
        assert!(
            result.final_efficiency() > 0.95,
            "efficiency={}",
            result.final_efficiency()
        );
    }

    #[test]
    fn overloaded_vanilla_does_not_commit_everything_in_time() {
        // Vanilla's analytical limit is under 1 000 el/s; at 4 000 el/s with a
        // short run it must fall behind (this is the stress the paper shows in
        // Fig. 1 left).
        let scenario = Scenario::base(Algorithm::Vanilla)
            .with_servers(4)
            .with_rate(4_000.0)
            .with_injection_secs(5)
            .with_max_run_secs(20)
            .with_seed(14);
        let result = run_scenario(&scenario);
        assert!(
            result.final_efficiency() < 0.9,
            "vanilla should be stressed"
        );
    }
}
