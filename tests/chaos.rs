//! End-to-end fault-injection ("chaos") tests: deterministic crash,
//! partition and loss schedules driven through full deployments.
//!
//! These pin down the recovery story across all four layers:
//!
//! * **simnet** applies [`FaultPlan`] events at their scheduled instants,
//!   before any same-instant message or timer — so a chaos run replays
//!   bit-for-bit under the same seed.
//! * **ledger** round timeouts skip a crashed proposer and block sync
//!   replays missed heights after a restart.
//! * **setchain** servers detect they are behind (restart probe or an
//!   epoch-proof referencing a future epoch) and catch up through the
//!   quorum-verified epoch replay protocol.
//! * **workload** client sessions ride out faults with deadline-driven
//!   retry and failover to an alternate server.

use std::collections::BTreeSet;

use setchain::{Algorithm, ElementId};
use setchain_crypto::ProcessId;
use setchain_simnet::{FaultEvent, FaultPlan, Partition, SimTime};
use setchain_workload::{Deployment, RetryPolicy};

/// A small deployment used by every chaos scenario: 4 servers, low rate,
/// a short injection burst and plenty of quiet time to recover in.
fn chaos_deployment(algorithm: Algorithm, seed: u64, plan: FaultPlan) -> Deployment {
    Deployment::builder(algorithm)
        .servers(4)
        .rate(300.0)
        .collector(32)
        .injection_secs(4)
        .max_run_secs(40)
        .seed(seed)
        .fault_plan(plan)
        .build()
}

#[test]
fn partition_heals_and_servers_reconverge() {
    // Server 3 is cut off from its peers between t=1s and t=5s; its clients
    // keep reaching it. After the heal, ledger block sync and the epoch
    // catch-up protocol must bring it back to the common prefix.
    let plan = FaultPlan::new()
        .at(
            SimTime::from_secs(1),
            FaultEvent::InjectPartition(Partition::between(
                [ProcessId::server(3)],
                [
                    ProcessId::server(0),
                    ProcessId::server(1),
                    ProcessId::server(2),
                ],
            )),
        )
        .at(SimTime::from_secs(5), FaultEvent::HealPartitions);
    let mut deployment = chaos_deployment(Algorithm::Hashchain, 4021, plan);
    deployment.sim.run_until(SimTime::from_secs(40));

    assert!(
        deployment.sim.network().dropped_partition() > 0,
        "the partition dropped traffic while active"
    );
    let s0 = deployment.server(0);
    let s3 = deployment.server(3);
    assert!(s0.state().epoch() > 0, "epochs advanced despite the fault");
    for i in 1..4 {
        assert!(
            s0.state()
                .check_consistent_with(deployment.server(i).state()),
            "server {i} diverged from server 0 after the heal"
        );
    }
    assert!(
        s3.state().epoch() + 1 >= s0.state().epoch(),
        "server 3 caught back up after the heal: {} vs {}",
        s3.state().epoch(),
        s0.state().epoch()
    );
    // Most injected elements still commit: the fault window only delays
    // server 3's contribution.
    let added = deployment.trace.added_count();
    let committed = deployment.trace.committed_count_by(SimTime::from_secs(40));
    assert!(
        committed as f64 >= 0.9 * added as f64,
        "run degraded too far: {committed}/{added}"
    );
}

#[test]
fn crashed_server_restarts_and_catches_up_for_every_variant() {
    for algorithm in Algorithm::ALL {
        // Server 2 is down from t=3s to t=10s — long enough for its peers to
        // commit epochs it never saw. On restart it must rejoin, fetch the
        // missing committed prefix (ledger block sync plus the f+1-verified
        // epoch catch-up), and end bit-consistent with the others.
        let plan = FaultPlan::new()
            .at(
                SimTime::from_secs(3),
                FaultEvent::Crash(ProcessId::server(2)),
            )
            .at(
                SimTime::from_secs(10),
                FaultEvent::Restart(ProcessId::server(2)),
            );
        let mut deployment = chaos_deployment(algorithm, 4022, plan);
        deployment.sim.run_until(SimTime::from_secs(40));

        assert!(
            deployment.sim.dropped_crashed() > 0,
            "{algorithm:?}: deliveries to the crashed server were dropped"
        );
        let s0 = deployment.server(0);
        let s2 = deployment.server(2);
        assert!(
            s0.state().epoch() > 0,
            "{algorithm:?}: the healthy majority kept committing epochs"
        );
        assert!(
            s0.state().check_consistent_with(s2.state()),
            "{algorithm:?}: restarted server diverged from the committed prefix"
        );
        assert!(
            s2.state().epoch() + 1 >= s0.state().epoch(),
            "{algorithm:?}: server 2 stayed behind after restart: {} vs {}",
            s2.state().epoch(),
            s0.state().epoch()
        );
        assert!(
            s2.stats().catchup_requests >= 1,
            "{algorithm:?}: the restarted server never asked peers for missed epochs"
        );
    }
}

#[test]
fn crashed_server_catches_up_under_sharded_admission() {
    // The PR 8 sharded-admission variant of the crash/restart scenario:
    // with each server's admission pipeline and `the_set` split across 4
    // shards, the restart probe, ledger block sync and epoch catch-up must
    // still rebuild the *full* committed set — catch-up replays epochs
    // through the same `record_epoch` path, which routes every element onto
    // its ring shard.
    let plan = FaultPlan::new()
        .at(
            SimTime::from_secs(3),
            FaultEvent::Crash(ProcessId::server(2)),
        )
        .at(
            SimTime::from_secs(10),
            FaultEvent::Restart(ProcessId::server(2)),
        );
    let mut deployment = Deployment::builder(Algorithm::Hashchain)
        .servers(4)
        .rate(300.0)
        .collector(32)
        .injection_secs(4)
        .max_run_secs(40)
        .seed(4022)
        .shards(4)
        .fault_plan(plan)
        .build();
    deployment.sim.run_until(SimTime::from_secs(40));

    assert!(deployment.sim.dropped_crashed() > 0);
    let s0 = deployment.server(0);
    let s2 = deployment.server(2);
    assert!(s0.state().epoch() > 0);
    assert!(
        s0.state().check_consistent_with(s2.state()),
        "restarted sharded server diverged from the committed prefix"
    );
    assert!(
        s2.state().epoch() + 1 >= s0.state().epoch(),
        "server 2 stayed behind after restart: {} vs {}",
        s2.state().epoch(),
        s0.state().epoch()
    );
    assert!(s2.stats().catchup_requests >= 1);
    // The caught-up server holds the full committed set, partitioned across
    // its 4 shards: the per-shard spans together cover every committed
    // element (`the_set` may additionally hold admitted elements a future
    // epoch will stamp, so it is a superset).
    let committed: BTreeSet<ElementId> = (1..=s2.state().epoch())
        .flat_map(|e| {
            s2.state()
                .epoch_elements(e)
                .expect("epoch in range")
                .iter()
                .map(|el| el.id)
                .collect::<Vec<_>>()
        })
        .collect();
    let stats = s2.shard_stats();
    assert_eq!(stats.len(), 4);
    assert!(
        stats.iter().map(|s| s.set_len).sum::<u64>() >= committed.len() as u64,
        "sharded the_set partition lost committed elements"
    );
    assert!(s2.state().check_consistent_sets());
}

#[test]
fn lost_catchup_request_does_not_wedge_the_restarted_server() {
    // Regression test for the catch-up rate limiter (PR 7): the
    // `catchup_pending` entry suppresses duplicate requests while one is
    // outstanding, but must *expire* after `CATCHUP_RETRY` — otherwise a
    // request lost to the network could wedge the server behind the tip
    // forever. Server 2 restarts into a window of 100% message loss, so
    // its restart probe's `CatchupRequest` is guaranteed lost; the loss
    // only heals after more than `CATCHUP_RETRY` of simulated time, so
    // the expired entry leaves every recovery path free to re-request.
    // (End to end, ledger block sync replays the missed heights in order
    // once traffic flows again, so the limiter is never the only path
    // back to the tip — its expiry semantics are pinned directly by
    // `catchup_limiter_expires_after_retry_window` in the setchain crate.
    // What must hold here is the outcome: the server fully heals.)
    let plan = FaultPlan::new()
        .at(
            SimTime::from_secs(3),
            FaultEvent::Crash(ProcessId::server(2)),
        )
        .at(SimTime::from_secs(9), FaultEvent::SetLossRate(1.0))
        .at(
            SimTime::from_secs(10),
            FaultEvent::Restart(ProcessId::server(2)),
        )
        // 4 s of total loss spans the restart — double the 2 s
        // `CATCHUP_RETRY` window, so the pending entry is expired by the
        // time traffic flows again.
        .at(SimTime::from_secs(13), FaultEvent::SetLossRate(0.0));
    let mut deployment = chaos_deployment(Algorithm::Hashchain, 4026, plan);
    deployment.sim.run_until(SimTime::from_secs(40));

    assert!(
        deployment.sim.network().dropped_loss() > 0,
        "the loss window dropped traffic"
    );
    let s0 = deployment.server(0);
    let s2 = deployment.server(2);
    assert!(s0.state().epoch() > 0, "the healthy majority kept going");
    assert!(
        s2.stats().catchup_requests >= 1,
        "the restarted server never probed for catch-up"
    );
    assert!(
        s0.state().check_consistent_with(s2.state()),
        "server 2 diverged from the committed prefix after recovery"
    );
    assert!(
        s2.state().epoch() + 1 >= s0.state().epoch(),
        "server 2 stayed wedged behind the tip: {} vs {}",
        s2.state().epoch(),
        s0.state().epoch()
    );
}

#[test]
fn client_add_during_crash_confirms_via_retry_and_failover() {
    // The client's target server is down when the add is issued. The retry
    // machine must fail over to an alternate server and confirm the element
    // through a verified epoch — no manual intervention.
    let plan = FaultPlan::new()
        .at(
            SimTime::from_millis(500),
            FaultEvent::Crash(ProcessId::server(0)),
        )
        .at(
            SimTime::from_secs(12),
            FaultEvent::Restart(ProcessId::server(0)),
        );
    let mut deployment = chaos_deployment(Algorithm::Hashchain, 4023, plan);
    let mut session = deployment.client_session(80, 808);
    let receipt = session.add_with_retry(
        SimTime::from_secs(1),
        0, // crashed at send time
        438,
        9001,
        RetryPolicy::default(),
    );
    session.install(&mut deployment);

    deployment.sim.run_until(SimTime::from_secs(35));
    let outcome = session.outcome(&deployment);
    assert!(
        outcome.all_retries_confirmed(),
        "the add never confirmed despite retry/failover"
    );
    let resolved = outcome.retried[0];
    assert_eq!(resolved.id, receipt.id);
    assert!(
        resolved.attempts >= 2,
        "the first attempt hit the crashed server, so a failover re-send was \
         needed (attempts={})",
        resolved.attempts
    );
    assert!(resolved.confirmed_at.is_some());
    assert!(!resolved.gave_up);
}

#[test]
fn lossy_network_degrades_gracefully() {
    // 1% uniform loss from the start: consensus round timeouts and gossip
    // redundancy absorb most of it; the run completes with bounded damage
    // and the per-cause drop counters surface what was lost.
    let result = Deployment::builder(Algorithm::Hashchain)
        .servers(4)
        .rate(300.0)
        .collector(32)
        .injection_secs(4)
        .max_run_secs(60)
        .seed(4024)
        .loss_rate(0.01)
        .run();
    assert!(result.dropped_loss > 0, "loss never triggered");
    assert_eq!(result.dropped_partition, 0);
    assert_eq!(result.dropped_crashed, 0);
    assert_eq!(result.dropped(), result.dropped_loss);
    assert!(
        result.added > 400,
        "clients injected (added={})",
        result.added
    );
    assert!(
        result.final_efficiency() > 0.8,
        "1% loss should not collapse the run: efficiency={}",
        result.final_efficiency()
    );
}

/// Fingerprint of a chaos run: scheduler counters, drop counters, and every
/// server's full epoch history.
#[derive(Debug, PartialEq, Eq)]
struct ChaosFingerprint {
    events_processed: u64,
    messages_deferred: u64,
    dropped_loss: u64,
    dropped_partition: u64,
    dropped_crashed: u64,
    committed: usize,
    epochs: Vec<Vec<BTreeSet<ElementId>>>,
}

fn chaos_run_fingerprint(seed: u64) -> ChaosFingerprint {
    // A full chaos mix: background loss, a mid-run partition, and a
    // crash/restart — all from one deterministic plan.
    let plan = FaultPlan::new()
        .at(SimTime::from_secs(1), FaultEvent::SetLossRate(0.005))
        .at(
            SimTime::from_secs(2),
            FaultEvent::InjectPartition(Partition::between(
                [ProcessId::server(1)],
                [ProcessId::server(2), ProcessId::server(3)],
            )),
        )
        .at(
            SimTime::from_secs(3),
            FaultEvent::Crash(ProcessId::server(3)),
        )
        .at(SimTime::from_secs(6), FaultEvent::HealPartitions)
        .at(SimTime::from_secs(6), FaultEvent::SetLossRate(0.0))
        .at(
            SimTime::from_secs(8),
            FaultEvent::Restart(ProcessId::server(3)),
        );
    let mut deployment = chaos_deployment(Algorithm::Hashchain, seed, plan);
    deployment.sim.run_until(SimTime::from_secs(30));
    let epochs = (0..4)
        .map(|i| {
            let state = deployment.server(i).state();
            (1..=state.epoch())
                .map(|e| {
                    state
                        .epoch_elements(e)
                        .expect("epoch in range")
                        .iter()
                        .map(|el| el.id)
                        .collect()
                })
                .collect()
        })
        .collect();
    ChaosFingerprint {
        events_processed: deployment.sim.events_processed(),
        messages_deferred: deployment.sim.messages_deferred(),
        dropped_loss: deployment.sim.network().dropped_loss(),
        dropped_partition: deployment.sim.network().dropped_partition(),
        dropped_crashed: deployment.sim.dropped_crashed(),
        committed: deployment.trace.committed_count_by(SimTime::from_secs(30)),
        epochs,
    }
}

#[test]
fn chaos_runs_are_bit_identical_under_the_same_seed() {
    let first = chaos_run_fingerprint(4025);
    let second = chaos_run_fingerprint(4025);
    assert_eq!(
        first, second,
        "a chaos schedule must replay bit-for-bit under the same seed"
    );
    assert!(first.dropped_loss > 0, "loss phase never dropped anything");
    assert!(
        first.dropped_partition > 0,
        "partition phase never dropped anything"
    );
    assert!(
        first.dropped_crashed > 0,
        "crash phase never dropped anything"
    );
    assert!(first.committed > 0, "nothing committed under chaos");
}
