//! Byzantine behaviours for Setchain servers (application level).
//!
//! These are distinct from the ledger-level [`setchain_ledger::ByzMode`]
//! faults: a Setchain server can follow the consensus protocol perfectly and
//! still misbehave at the application layer — refusing to serve batch
//! contents (the attack Hashchain's `f + 1` consolidation rule defends
//! against), injecting invalid elements into the ledger, or signing bogus
//! epoch-proofs.

use serde::{Deserialize, Serialize};

/// Application-level behaviour of a Setchain server.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServerByzMode {
    /// Follows the algorithm.
    #[default]
    Correct,
    /// Hashchain only: appends hash-batches but never answers
    /// `Request_batch`, so other servers cannot recover its batches.
    RefuseBatchService,
    /// Appends invalid (unauthenticated) elements to the ledger alongside
    /// valid behaviour; correct servers must filter them out.
    InjectInvalidElements,
    /// Produces epoch-proofs with invalid signatures; correct servers and
    /// clients must reject them.
    ForgeProofs,
    /// Ignores client `add` requests entirely (but keeps participating in the
    /// protocol). Clients talking only to this server never see their
    /// elements; the paper's answer is to retry with another server.
    DropClientAdds,
}

impl ServerByzMode {
    /// True for any behaviour other than [`ServerByzMode::Correct`].
    pub fn is_faulty(&self) -> bool {
        !matches!(self, ServerByzMode::Correct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(!ServerByzMode::Correct.is_faulty());
        assert!(ServerByzMode::RefuseBatchService.is_faulty());
        assert!(ServerByzMode::InjectInvalidElements.is_faulty());
        assert!(ServerByzMode::ForgeProofs.is_faulty());
        assert!(ServerByzMode::DropClientAdds.is_faulty());
        assert_eq!(ServerByzMode::default(), ServerByzMode::Correct);
    }
}
