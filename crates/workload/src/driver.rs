//! The injection client: one per server, adding elements to its local
//! Setchain server at a configured rate (the paper's
//! `sending_rate / server_count` per client).

use std::any::Any;

use setchain::{AuthMode, SetchainMsg, SetchainTrace, SetchainTx};
use setchain_crypto::ProcessId;
use setchain_ledger::NetMsg;
use setchain_simnet::{Context, Process, SimDuration, SimTime, TimerToken};

use crate::generator::ArbitrumWorkload;

/// Message type of Setchain deployments.
pub type Msg = NetMsg<SetchainTx, SetchainMsg>;

const INJECT_TICK: TimerToken = 1;

/// An injection client actor.
pub struct ClientDriver {
    server: ProcessId,
    workload: ArbitrumWorkload,
    /// Elements per second this client adds.
    rate: f64,
    /// Injection stops at this time.
    injection_end: SimTime,
    tick: SimDuration,
    carry: f64,
    trace: SetchainTrace,
    sent: u64,
    auth: AuthMode,
}

impl ClientDriver {
    /// Creates a driver that adds to `server` at `rate` el/s until
    /// `injection_end`.
    pub fn new(
        server: ProcessId,
        workload: ArbitrumWorkload,
        rate: f64,
        injection_end: SimTime,
        trace: SetchainTrace,
    ) -> Self {
        assert!(rate > 0.0, "sending rate must be positive");
        ClientDriver {
            server,
            workload,
            rate,
            injection_end,
            tick: SimDuration::from_millis(20),
            carry: 0.0,
            trace,
            sent: 0,
            auth: AuthMode::default(),
        }
    }

    /// Builder: sets how submissions are authenticated. Under
    /// [`AuthMode::BatchRoot`] each injection tick is sealed into one
    /// [`setchain::AuthedBatch`] (one MAC over the Merkle root) instead of a
    /// plain `AddBatch` of per-element-authenticated elements.
    pub fn with_auth_mode(mut self, mode: AuthMode) -> Self {
        self.auth = mode;
        self
    }

    /// Number of elements sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }
}

impl Process<Msg> for ClientDriver {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        ctx.set_timer(self.tick, INJECT_TICK);
    }

    fn on_message(&mut self, _from: ProcessId, _msg: Msg, _ctx: &mut Context<'_, Msg>) {
        // Responses to get() requests are handled by example binaries; the
        // throughput driver ignores them.
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<'_, Msg>) {
        if token != INJECT_TICK {
            return;
        }
        let now = ctx.now();
        if now > self.injection_end {
            return; // stop injecting; do not re-arm
        }
        let due = self.rate * self.tick.as_secs_f64() + self.carry;
        let count = due.floor() as usize;
        self.carry = due - count as f64;
        if count > 0 {
            let elements = self.workload.take(count);
            self.trace.record_adds(elements.iter().map(|e| e.id), now);
            self.sent += count as u64;
            let msg = match self.auth {
                AuthMode::BatchRoot => SetchainMsg::BatchedAdd(self.workload.seal(elements)),
                _ => SetchainMsg::AddBatch(elements),
            };
            ctx.send(self.server, NetMsg::App(msg));
        }
        ctx.set_timer(self.tick, INJECT_TICK);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A scripted client actor: sends pre-programmed requests (adds, `get`,
/// `get_epoch`) to servers at given times and records every application-level
/// response it receives. Used by the examples and the light-client
/// integration tests to exercise the client-facing API over the simulated
/// network instead of peeking into server state.
pub struct RequestClient {
    script: Vec<(SimTime, ProcessId, SetchainMsg)>,
    responses: Vec<(SimTime, ProcessId, SetchainMsg)>,
}

impl RequestClient {
    /// Creates a client that will send each `(time, server, message)` entry.
    pub fn new(mut script: Vec<(SimTime, ProcessId, SetchainMsg)>) -> Self {
        script.sort_by_key(|(t, _, _)| *t);
        RequestClient {
            script,
            responses: Vec::new(),
        }
    }

    /// Responses received so far, with arrival time and responding server.
    pub fn responses(&self) -> &[(SimTime, ProcessId, SetchainMsg)] {
        &self.responses
    }
}

impl Process<Msg> for RequestClient {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        // One timer per scripted entry; the token indexes into the script.
        for (i, (at, _, _)) in self.script.iter().enumerate() {
            ctx.set_timer(at.since(SimTime::ZERO), i as TimerToken);
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        if let NetMsg::App(m) = msg {
            self.responses.push((ctx.now(), from, m));
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<'_, Msg>) {
        if let Some((_, server, msg)) = self.script.get(token as usize) {
            ctx.send(*server, NetMsg::App(msg.clone()));
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setchain_crypto::KeyRegistry;

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let registry = KeyRegistry::bootstrap(1, 1, 1);
        let workload = ArbitrumWorkload::for_client(&registry, ProcessId::client(0), 1);
        let _ = ClientDriver::new(
            ProcessId::server(0),
            workload,
            0.0,
            SimTime::from_secs(1),
            SetchainTrace::new(),
        );
    }
}
