//! Regenerates Fig. 5 (commit-time milestones). Runs the Fig. 3 scenario
//! grid and reports commit times for each run.
fn main() {
    let ctx = setchain_bench::ExperimentCtx::from_env();
    println!("scale = {} (SETCHAIN_SCALE)", ctx.scale);
    let results = setchain_bench::figures::fig3_efficiency(&ctx);
    setchain_bench::figures::fig5_commit_times(&ctx, &results);
}
