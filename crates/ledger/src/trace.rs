//! Shared instrumentation: records when transactions reach mempools and
//! blocks, which is what the paper's latency breakdown (Fig. 4: first
//! mempool, f+1 mempools, all mempools, ledger) is computed from.
//!
//! A [`LedgerTrace`] is an `Arc`-shared sink handed to every ledger node of a
//! run. It is written from the single simulation thread, so the mutex is
//! uncontended; `parking_lot` keeps the overhead negligible.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use setchain_crypto::ProcessId;
use setchain_simnet::SimTime;

use crate::types::TxId;

/// Summary of one committed block.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockSummary {
    /// Block height.
    pub height: u64,
    /// Time the block was first committed by any correct node.
    pub committed_at: SimTime,
    /// Number of transactions.
    pub txs: usize,
    /// Total transaction payload bytes.
    pub bytes: usize,
    /// Proposer of the block.
    pub proposer: ProcessId,
}

#[derive(Default)]
struct TraceInner {
    /// For each tx: times at which it entered each validator's mempool.
    mempool_arrivals: HashMap<TxId, Vec<(ProcessId, SimTime)>>,
    /// For each tx: (height, time) of the first commit observed.
    committed: HashMap<TxId, (u64, SimTime)>,
    /// One summary per height (first commit observed wins).
    blocks: HashMap<u64, BlockSummary>,
}

/// Shared, thread-safe ledger instrumentation sink.
#[derive(Clone, Default)]
pub struct LedgerTrace {
    inner: Arc<Mutex<TraceInner>>,
    enabled: bool,
}

impl LedgerTrace {
    /// Creates an enabled trace.
    pub fn new() -> Self {
        LedgerTrace {
            inner: Arc::new(Mutex::new(TraceInner::default())),
            enabled: true,
        }
    }

    /// Creates a disabled trace: all recording calls are no-ops. Used by
    /// large throughput runs that do not need per-transaction latency data.
    pub fn disabled() -> Self {
        LedgerTrace {
            inner: Arc::new(Mutex::new(TraceInner::default())),
            enabled: false,
        }
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records that `tx` entered the mempool of `validator` at `at`.
    pub fn record_mempool_arrival(&self, tx: TxId, validator: ProcessId, at: SimTime) {
        if !self.enabled {
            return;
        }
        self.inner
            .lock()
            .mempool_arrivals
            .entry(tx)
            .or_default()
            .push((validator, at));
    }

    /// Records that `tx` was committed in the block at `height` at time `at`
    /// (only the first observation is kept).
    pub fn record_commit(&self, tx: TxId, height: u64, at: SimTime) {
        if !self.enabled {
            return;
        }
        self.inner
            .lock()
            .committed
            .entry(tx)
            .or_insert((height, at));
    }

    /// Records a committed block summary (first observation per height wins).
    pub fn record_block(&self, summary: BlockSummary) {
        if !self.enabled {
            return;
        }
        self.inner
            .lock()
            .blocks
            .entry(summary.height)
            .or_insert(summary);
    }

    /// Time the transaction first reached any mempool.
    pub fn first_mempool(&self, tx: &TxId) -> Option<SimTime> {
        self.inner
            .lock()
            .mempool_arrivals
            .get(tx)
            .and_then(|v| v.iter().map(|&(_, t)| t).min())
    }

    /// Time the transaction had reached at least `k` distinct mempools.
    pub fn kth_mempool(&self, tx: &TxId, k: usize) -> Option<SimTime> {
        let inner = self.inner.lock();
        let arrivals = inner.mempool_arrivals.get(tx)?;
        let mut times: Vec<SimTime> = {
            // Deduplicate per validator, keeping the earliest arrival.
            let mut per_validator: HashMap<ProcessId, SimTime> = HashMap::new();
            for &(v, t) in arrivals {
                per_validator
                    .entry(v)
                    .and_modify(|e| {
                        if t < *e {
                            *e = t;
                        }
                    })
                    .or_insert(t);
            }
            per_validator.values().copied().collect()
        };
        if times.len() < k {
            return None;
        }
        times.sort();
        Some(times[k - 1])
    }

    /// Time the transaction was included in a committed block.
    pub fn ledger_time(&self, tx: &TxId) -> Option<SimTime> {
        self.inner.lock().committed.get(tx).map(|&(_, t)| t)
    }

    /// Height of the block containing the transaction.
    pub fn ledger_height(&self, tx: &TxId) -> Option<u64> {
        self.inner.lock().committed.get(tx).map(|&(h, _)| h)
    }

    /// Number of committed blocks observed.
    pub fn block_count(&self) -> usize {
        self.inner.lock().blocks.len()
    }

    /// All block summaries in height order.
    pub fn blocks(&self) -> Vec<BlockSummary> {
        let inner = self.inner.lock();
        let mut out: Vec<BlockSummary> = inner.blocks.values().copied().collect();
        out.sort_by_key(|b| b.height);
        out
    }

    /// Observed block rate in blocks per second over the recorded window.
    pub fn block_rate(&self) -> f64 {
        let blocks = self.blocks();
        if blocks.len() < 2 {
            return 0.0;
        }
        let first = blocks.first().expect("non-empty").committed_at;
        let last = blocks.last().expect("non-empty").committed_at;
        let span = (last - first).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        (blocks.len() - 1) as f64 / span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn mempool_stage_queries() {
        let trace = LedgerTrace::new();
        let tx = TxId(1);
        trace.record_mempool_arrival(tx, ProcessId::server(0), t(10));
        trace.record_mempool_arrival(tx, ProcessId::server(1), t(30));
        trace.record_mempool_arrival(tx, ProcessId::server(2), t(20));
        // Duplicate arrival at a later time must not change the per-validator
        // earliest.
        trace.record_mempool_arrival(tx, ProcessId::server(0), t(50));
        assert_eq!(trace.first_mempool(&tx), Some(t(10)));
        assert_eq!(trace.kth_mempool(&tx, 2), Some(t(20)));
        assert_eq!(trace.kth_mempool(&tx, 3), Some(t(30)));
        assert_eq!(trace.kth_mempool(&tx, 4), None);
        assert_eq!(trace.first_mempool(&TxId(99)), None);
    }

    #[test]
    fn commit_and_block_queries() {
        let trace = LedgerTrace::new();
        let tx = TxId(7);
        trace.record_commit(tx, 3, t(100));
        trace.record_commit(tx, 4, t(200)); // later observation ignored
        assert_eq!(trace.ledger_time(&tx), Some(t(100)));
        assert_eq!(trace.ledger_height(&tx), Some(3));
        trace.record_block(BlockSummary {
            height: 1,
            committed_at: t(1000),
            txs: 5,
            bytes: 100,
            proposer: ProcessId::server(1),
        });
        trace.record_block(BlockSummary {
            height: 2,
            committed_at: t(2250),
            txs: 3,
            bytes: 60,
            proposer: ProcessId::server(2),
        });
        assert_eq!(trace.block_count(), 2);
        assert_eq!(trace.blocks()[0].height, 1);
        let rate = trace.block_rate();
        assert!((rate - 0.8).abs() < 1e-9, "rate={rate}");
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let trace = LedgerTrace::disabled();
        assert!(!trace.is_enabled());
        trace.record_mempool_arrival(TxId(1), ProcessId::server(0), t(1));
        trace.record_commit(TxId(1), 1, t(1));
        trace.record_block(BlockSummary {
            height: 1,
            committed_at: t(1),
            txs: 0,
            bytes: 0,
            proposer: ProcessId::server(0),
        });
        assert_eq!(trace.first_mempool(&TxId(1)), None);
        assert_eq!(trace.ledger_time(&TxId(1)), None);
        assert_eq!(trace.block_count(), 0);
    }

    #[test]
    fn block_rate_degenerate_cases() {
        let trace = LedgerTrace::new();
        assert_eq!(trace.block_rate(), 0.0);
        trace.record_block(BlockSummary {
            height: 1,
            committed_at: t(1),
            txs: 0,
            bytes: 0,
            proposer: ProcessId::server(0),
        });
        assert_eq!(trace.block_rate(), 0.0);
    }
}
