//! Batch compression substrate ("brotlite").
//!
//! The paper's Compresschain algorithm compresses element batches with
//! Brotli before appending them to the ledger, reporting compression ratios
//! between 2.5 and 3.5 for Arbitrum-like transaction batches. Pulling in a
//! Brotli implementation is outside the dependency policy, so this crate
//! implements a self-contained LZ77 + varint codec whose ratio on the
//! synthetic workload falls in the same range (the workload crate has a test
//! asserting this). Only the *ratio* matters to the reproduction — it is what
//! determines how many elements fit in a ledger block.
//!
//! # Wire formats
//!
//! Two formats share one token alphabet:
//!
//! * **Single stream** ([`lz77`]) — `original_len` varint followed by
//!   literal-run / back-reference tokens. Sequential by construction:
//!   every back-reference may point into any earlier output.
//! * **Chunked frame** ([`chunked`]) — a magic varint, the total length, a
//!   chunk count, and then each chunk as an independent single stream with
//!   its own length prefix. Chunks share no match window, so both
//!   compression and decompression fan out across cores via
//!   [`setchain_crypto::parallel_map_min`].
//!
//! The chunked magic is larger than the maximum length the single-stream
//! decoder accepts, so the formats are unambiguous from the first varint and
//! [`decompress_any`] handles either. Compression state lives in a reusable
//! [`Compressor`] (hash-chain tables allocated once, not per batch); the
//! convenience free functions keep one per thread.
//!
//! The public API mirrors what the algorithm pseudocode needs:
//! [`compress`] / [`decompress`] / [`compress_chunked`] /
//! [`decompress_chunked`] plus a [`Codec`] trait so experiments can swap in
//! the identity codec ("Compresschain light", Fig. 2 left ablation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunked;
pub mod lz77;
pub mod varint;

pub use chunked::{
    compress_chunked, compress_chunked_into, compress_chunked_with, decompress_any,
    decompress_chunked, decompress_chunked_into, is_chunked, CHUNKED_MAGIC, DEFAULT_CHUNK_LEN,
};
pub use lz77::{
    compress, decompress, decompress_into, CompressionStats, Compressor, DecompressError,
    MAX_DECLARED,
};

/// A reversible byte-level codec.
///
/// `Lz77Codec` is the default used by Compresschain; `IdentityCodec` is used
/// by the "light" ablations and by Vanilla (which never compresses).
pub trait Codec: Send + Sync {
    /// Compresses `data`.
    fn encode(&self, data: &[u8]) -> Vec<u8>;
    /// Decompresses `data`, returning `None` on malformed input.
    fn decode(&self, data: &[u8]) -> Option<Vec<u8>>;
    /// Human-readable codec name (used in experiment output).
    fn name(&self) -> &'static str;
}

/// LZ77-based codec producing single streams (the Brotli stand-in). Decoding
/// sniffs the format, so it also accepts chunked frames.
#[derive(Clone, Copy, Debug, Default)]
pub struct Lz77Codec;

impl Codec for Lz77Codec {
    fn encode(&self, data: &[u8]) -> Vec<u8> {
        compress(data)
    }

    fn decode(&self, data: &[u8]) -> Option<Vec<u8>> {
        decompress_any(data).ok()
    }

    fn name(&self) -> &'static str {
        "lz77"
    }
}

/// LZ77 codec producing chunked frames ([`DEFAULT_CHUNK_LEN`] chunks,
/// compressed and decompressed in parallel). Decoding sniffs the format, so
/// it also accepts single streams.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChunkedLz77Codec;

impl Codec for ChunkedLz77Codec {
    fn encode(&self, data: &[u8]) -> Vec<u8> {
        compress_chunked(data)
    }

    fn decode(&self, data: &[u8]) -> Option<Vec<u8>> {
        decompress_any(data).ok()
    }

    fn name(&self) -> &'static str {
        "lz77-chunked"
    }
}

/// Identity (no-op) codec, used for ablations.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdentityCodec;

impl Codec for IdentityCodec {
    fn encode(&self, data: &[u8]) -> Vec<u8> {
        data.to_vec()
    }

    fn decode(&self, data: &[u8]) -> Option<Vec<u8>> {
        Some(data.to_vec())
    }

    fn name(&self) -> &'static str {
        "identity"
    }
}

/// Measures the compression ratio (`original / compressed`) achieved by a
/// codec on `data`. Returns 1.0 for empty input.
pub fn compression_ratio<C: Codec>(codec: &C, data: &[u8]) -> f64 {
    if data.is_empty() {
        return 1.0;
    }
    let compressed = codec.encode(data);
    data.len() as f64 / compressed.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let c = IdentityCodec;
        let data = b"hello world".to_vec();
        assert_eq!(c.decode(&c.encode(&data)).unwrap(), data);
        assert_eq!(c.name(), "identity");
        assert!((compression_ratio(&c, &data) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lz77_codec_roundtrip() {
        let c = Lz77Codec;
        let data: Vec<u8> = b"abcabcabcabcabcabcabcabc".to_vec();
        let enc = c.encode(&data);
        assert_eq!(c.decode(&enc).unwrap(), data);
        assert!(enc.len() < data.len());
        assert_eq!(c.name(), "lz77");
    }

    #[test]
    fn chunked_codec_roundtrip_and_cross_decode() {
        let chunked = ChunkedLz77Codec;
        let single = Lz77Codec;
        let data: Vec<u8> = b"setchain epoch "
            .iter()
            .copied()
            .cycle()
            .take(150_000)
            .collect();
        let frame = chunked.encode(&data);
        assert_eq!(chunked.decode(&frame).unwrap(), data);
        // Either codec decodes either format.
        assert_eq!(single.decode(&frame).unwrap(), data);
        assert_eq!(chunked.decode(&single.encode(&data)).unwrap(), data);
        assert_eq!(chunked.name(), "lz77-chunked");
        assert!(compression_ratio(&chunked, &data) > 2.0);
    }

    #[test]
    fn ratio_of_empty_is_one() {
        assert_eq!(compression_ratio(&Lz77Codec, b""), 1.0);
    }

    #[test]
    fn repetitive_data_compresses_well() {
        let data = vec![b'a'; 10_000];
        assert!(compression_ratio(&Lz77Codec, &data) > 20.0);
        assert!(compression_ratio(&ChunkedLz77Codec, &data) > 20.0);
    }

    #[test]
    fn decode_rejects_garbage() {
        // A length header promising far more data than present must not panic.
        let garbage = vec![0xFF; 3];
        assert!(Lz77Codec.decode(&garbage).is_none() || Lz77Codec.decode(&garbage).is_some());
    }
}
