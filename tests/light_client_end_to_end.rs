//! Light-client integration tests: a client adds elements through one server
//! and later verifies their inclusion by querying a *different* (single)
//! server, relying only on `f + 1` epoch-proofs — driven through the typed
//! [`ClientSession`](setchain_workload::ClientSession) facade.

use setchain::{verify_epoch, Algorithm, Element, ElementId, EpochProof};
use setchain_crypto::{KeyPair, ProcessId, Signature};
use setchain_simnet::SimTime;
use setchain_workload::{Deployment, DeploymentBuilder};

fn builder(algorithm: Algorithm, seed: u64) -> DeploymentBuilder {
    Deployment::builder(algorithm)
        .label(format!("light client {algorithm}"))
        .servers(4)
        .rate(200.0)
        .collector(25)
        .injection_secs(4)
        .max_run_secs(40)
        .seed(seed)
}

/// Adds three client-owned elements through server 0, then queries server 2
/// for every epoch and checks that a quorum-verified epoch contains them.
/// The body is identical for every algorithm: the session and the deployment
/// facade are variant-agnostic.
fn end_to_end(algorithm: Algorithm, seed: u64) {
    let mut deployment = builder(algorithm, seed).build();

    let mut session = deployment.client_session(300, seed ^ 0xC11E47);
    let receipts: Vec<_> = (0..3)
        .map(|i| session.add(SimTime::from_millis(600), 0, 438, seed + i))
        .collect();
    // Query a different server for a summary and for the first 20 epochs.
    session.get(SimTime::from_secs(25), 2);
    session.get_epochs(SimTime::from_secs(26), 2, 1..=20);
    session.install(&mut deployment);
    deployment.sim.run_until(SimTime::from_secs(32));

    let outcome = session.outcome(&deployment);
    assert_eq!(
        outcome.snapshots.len(),
        1,
        "{algorithm}: get() summary received"
    );
    let snapshot = outcome.snapshots[0].snapshot;
    assert_eq!(outcome.snapshots[0].server, ProcessId::server(2));
    assert!(snapshot.epoch > 0);
    assert!(snapshot.epochs_with_quorum > 0);
    assert!(snapshot.the_set_len >= snapshot.history_elements);

    assert!(
        outcome
            .epochs
            .iter()
            .all(|e| e.server == ProcessId::server(2)),
        "{algorithm}: responses come from the queried server"
    );
    assert!(
        outcome.verified_count() > 0,
        "{algorithm}: at least one epoch verified with f+1 proofs"
    );
    let confirmed = outcome.confirmed_ids();
    assert_eq!(
        confirmed.len(),
        3,
        "{algorithm}: all three client elements confirmed through a single server"
    );
    assert!(receipts.iter().all(|r| confirmed.contains(&r.id)));

    // Element→epoch membership without the epoch's element set: the
    // inclusion proof carries only the Merkle path plus the epoch's
    // (number, count, root) triple, and verifies against the PKI and the
    // shipped f+1 epoch-proofs alone.
    let registry = deployment.registry.clone();
    let n = deployment.scenario.servers;
    let f = deployment.scenario.setchain_f();
    let mut proven = 0;
    for epoch in outcome.verified() {
        for (i, receipt) in receipts.iter().enumerate() {
            let Some(proof) = epoch.inclusion_proof(receipt.id) else {
                continue;
            };
            assert!(
                proof.verify(&registry, n, f, &receipt.element, &epoch.proofs),
                "{algorithm}: inclusion proof for {:?} failed",
                receipt.id
            );
            // The proof is bound to its element: substituting a different
            // one fails the Merkle membership check.
            let other = &receipts[(i + 1) % receipts.len()].element;
            assert!(
                !proof.verify(&registry, n, f, other, &epoch.proofs),
                "{algorithm}: inclusion proof accepted a substituted element"
            );
            proven += 1;
        }
    }
    assert_eq!(
        proven, 3,
        "{algorithm}: every client element proven in exactly one verified epoch"
    );
}

#[test]
fn light_client_verifies_inclusion_on_vanilla() {
    end_to_end(Algorithm::Vanilla, 11);
}

#[test]
fn light_client_verifies_inclusion_on_compresschain() {
    end_to_end(Algorithm::Compresschain, 22);
}

#[test]
fn light_client_verifies_inclusion_on_hashchain() {
    end_to_end(Algorithm::Hashchain, 33);
}

#[test]
fn fabricated_epoch_response_from_a_byzantine_server_is_rejected() {
    // A Byzantine server cannot convince a light client of a fabricated
    // epoch: it controls at most f signatures, and forged ones do not verify.
    let deployment = builder(Algorithm::Hashchain, 44).build();
    let n = deployment.scenario.servers;
    let f = deployment.scenario.setchain_f();

    let attacker_keys = deployment
        .registry
        .lookup(ProcessId::server(3))
        .expect("server key");
    let victim_client = KeyPair::derive(ProcessId::client(301), 99);
    deployment.registry.register(victim_client);
    let fabricated: Vec<Element> = (0..5)
        .map(|i| Element::new(&victim_client, ElementId::new(301, i), 438, i))
        .collect();

    // One genuine signature from the attacker plus forged ones in other
    // servers' names.
    let mut proofs: Vec<EpochProof> =
        vec![setchain::make_epoch_proof(&attacker_keys, 1, &fabricated)];
    for i in 0..2 {
        let mut forged = proofs[0];
        forged.signer = ProcessId::server(i);
        forged.signature = Signature::forged(ProcessId::server(i));
        proofs.push(forged);
    }
    let verdict = verify_epoch(&deployment.registry, n, f, 1, &fabricated, &proofs);
    assert!(
        !verdict.is_verified(),
        "fabricated epoch must not verify: {verdict:?}"
    );
}
